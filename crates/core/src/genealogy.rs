//! The LPM's local genealogy: the slice of the user's computation tree on
//! one host.
//!
//! "A computation is considered to be a group of processes that have a
//! common logical ancestor. Under the PPM the processes form a (logical)
//! tree that may span a number of machines." Each LPM tracks its local
//! processes; cross-host edges are recorded as *logical parent* links on
//! remotely-created processes. "We chose to retain exit information while
//! there are children alive, and for the display of a genealogical
//! distributed computation snapshot we mark the process as exited."
//!
//! # Storage
//!
//! Nodes live in a **slab arena**: one flat `Vec` of records recycled
//! through a free list, plus a pid → slot index. Tree edges are
//! *intrusive* — each node carries `parent` / `first_child` /
//! `next_sibling` / `prev_sibling` slot links instead of a per-node
//! `Vec<u32>` of children — so tracking a process allocates nothing
//! beyond its command string (and a recycled slot reuses even that
//! buffer), unlinking a child on prune is O(1) pointer surgery, and the
//! scans that seed a cascade prune or build a snapshot walk one dense
//! array instead of chasing a hash map's buckets. At multi-tenant scale
//! (one arena per user per host) this is what keeps millions of tracked
//! processes cache-resident.

use ppm_proto::types::{Gpid, ProcRecord, WireProcState};
use ppm_runtime::hashx::FastMap;

/// Sentinel for "no slot" in the intrusive links.
const NIL: u32 = u32::MAX;

/// One tracked process.
///
/// The genealogical links (`parent`, siblings, children) are private slab
/// slots; read the tree through [`Genealogy::children`] and
/// [`Genealogy::descendants`].
#[derive(Debug, Clone)]
pub struct Node {
    /// Local pid.
    pub pid: u32,
    /// Local parent pid (1 = no managed local parent).
    pub ppid: u32,
    /// Logical parent on another host, when created remotely.
    pub logical_parent: Option<Gpid>,
    /// Command name.
    pub command: String,
    /// Last known state.
    pub state: WireProcState,
    /// Creation time (µs).
    pub started_us: u64,
    /// CPU consumed (µs), as of the last kernel report.
    pub cpu_us: u64,
    /// Whether the LPM adopted it (vs. merely observed).
    pub adopted: bool,
    /// When the process died (µs), if it has.
    pub dead_at: Option<u64>,
    /// Slab occupancy: false for free-listed slots awaiting reuse.
    in_use: bool,
    /// Slot of the tracked local parent, or [`NIL`].
    parent: u32,
    /// Head of the intrusive child list, or [`NIL`].
    first_child: u32,
    /// Next sibling in the parent's child list, or [`NIL`].
    next_sibling: u32,
    /// Previous sibling in the parent's child list, or [`NIL`].
    prev_sibling: u32,
}

/// The per-host genealogy store.
///
/// Lookup structure: a slab arena of [`Node`]s with a pid → slot
/// [`FastMap`] index, plus a maintained count of live
/// (non-[`Dead`](WireProcState::Dead)) nodes, adjusted on every state
/// transition so [`Genealogy::live_count`] is O(1) — it is polled on the
/// snapshot and status paths for every request.
#[derive(Debug, Clone, Default)]
pub struct Genealogy {
    host: String,
    /// The arena. Free slots stay in place (with cleared buffers) so the
    /// whole store is one allocation churned in place.
    slab: Vec<Node>,
    /// Retired slots available for reuse, LIFO for cache warmth.
    free: Vec<u32>,
    /// pid → slab slot, live and retained-dead nodes only.
    index: FastMap<u32, u32>,
    /// Count of nodes whose `state != Dead`; kept in lockstep with every
    /// mutation below.
    live: usize,
    /// Slots that transitioned to dead, with the pid each held at the
    /// time: the seed set for [`Genealogy::prune_older_than`], so a
    /// sweep touches only candidates instead of scanning the slab.
    /// Entries go stale when a slot is pruned, recycled or revived; the
    /// sweep drops them by checking occupancy, pid and state.
    dead_queue: Vec<(u32, u32)>,
}

impl Genealogy {
    /// Creates an empty genealogy for `host`.
    pub fn new(host: impl Into<String>) -> Self {
        Genealogy {
            host: host.into(),
            slab: Vec::new(),
            free: Vec::new(),
            index: FastMap::default(),
            live: 0,
            dead_queue: Vec::new(),
        }
    }

    /// Number of tracked processes (live and retained-dead).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of live tracked processes. O(1): maintained on every
    /// state transition rather than scanned.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Begins tracking a process.
    pub fn track(
        &mut self,
        pid: u32,
        ppid: u32,
        logical_parent: Option<Gpid>,
        command: impl AsRef<str>,
        started_us: u64,
        adopted: bool,
    ) {
        let slot = match self.index.get(&pid) {
            // A recycled pid overwrites a retained-dead node in place:
            // only the replaced node's liveness (if any) leaves the
            // count, its children are detached (they keep their own
            // records but the replacement starts childless, exactly as
            // the fresh-map insert used to behave), and its buffers are
            // reused.
            Some(&slot) => {
                if self.slab[slot as usize].state != WireProcState::Dead {
                    self.live -= 1;
                }
                self.unlink(slot);
                self.detach_children(slot);
                slot
            }
            None => {
                let slot = self.alloc();
                self.index.insert(pid, slot);
                slot
            }
        };
        {
            let n = &mut self.slab[slot as usize];
            n.pid = pid;
            n.ppid = ppid;
            n.logical_parent = logical_parent;
            n.command.clear();
            n.command.push_str(command.as_ref());
            n.state = WireProcState::Embryo;
            n.started_us = started_us;
            n.cpu_us = 0;
            n.adopted = adopted;
            n.dead_at = None;
            n.in_use = true;
        }
        self.live += 1;
        // Never self-link: a pid can equal its recorded ppid when a pid
        // value is recycled after pruning; linking it to itself would put
        // a cycle in the tree.
        if ppid != pid {
            if let Some(&parent) = self.index.get(&ppid) {
                self.link(slot, parent);
            }
        }
    }

    /// Whether `pid` is tracked.
    pub fn contains(&self, pid: u32) -> bool {
        self.index.contains_key(&pid)
    }

    /// Immutable access to a node.
    pub fn get(&self, pid: u32) -> Option<&Node> {
        self.index.get(&pid).map(|&s| &self.slab[s as usize])
    }

    /// Tracked local children of `pid`, sorted by pid.
    pub fn children(&self, pid: u32) -> Vec<u32> {
        let Some(&slot) = self.index.get(&pid) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut c = self.slab[slot as usize].first_child;
        while c != NIL {
            out.push(self.slab[c as usize].pid);
            c = self.slab[c as usize].next_sibling;
        }
        out.sort_unstable();
        out
    }

    /// Updates a node's state; no-op for untracked pids.
    pub fn set_state(&mut self, pid: u32, state: WireProcState) {
        if let Some(&slot) = self.index.get(&pid) {
            let was_dead = self.slab[slot as usize].state == WireProcState::Dead;
            let is_dead = state == WireProcState::Dead;
            if !was_dead && is_dead {
                self.live -= 1;
                self.dead_queue.push((slot, pid));
            } else if was_dead && !is_dead {
                self.live += 1;
            }
            self.slab[slot as usize].state = state;
        }
    }

    /// Updates a node's command (on exec) and marks it running.
    pub fn set_exec(&mut self, pid: u32, command: impl AsRef<str>) {
        if let Some(&slot) = self.index.get(&pid) {
            let n = &mut self.slab[slot as usize];
            n.command.clear();
            n.command.push_str(command.as_ref());
            if n.state == WireProcState::Dead {
                self.live += 1;
            }
            n.state = WireProcState::Running;
        }
    }

    /// Restores a node's logical-parent edge (sibling gossip after a
    /// manager respawn); no-op for untracked pids.
    pub fn set_logical_parent(&mut self, pid: u32, parent: Gpid) {
        if let Some(&slot) = self.index.get(&pid) {
            self.slab[slot as usize].logical_parent = Some(parent);
        }
    }

    /// Updates CPU usage.
    pub fn set_cpu(&mut self, pid: u32, cpu_us: u64) {
        if let Some(&slot) = self.index.get(&pid) {
            self.slab[slot as usize].cpu_us = cpu_us;
        }
    }

    /// Marks a node dead at `now_us` (retained while relatives need it;
    /// see [`Genealogy::prune`]).
    pub fn mark_dead_at(&mut self, pid: u32, cpu_us: u64, now_us: u64) {
        if let Some(&slot) = self.index.get(&pid) {
            if self.slab[slot as usize].state != WireProcState::Dead {
                self.live -= 1;
                self.dead_queue.push((slot, pid));
            }
            let n = &mut self.slab[slot as usize];
            n.state = WireProcState::Dead;
            n.cpu_us = cpu_us;
            n.dead_at = Some(now_us);
        }
    }

    /// Marks a node dead with no timestamp bookkeeping (tests).
    pub fn mark_dead(&mut self, pid: u32, cpu_us: u64) {
        self.mark_dead_at(pid, cpu_us, 0);
    }

    /// True when the node at `slot` is dead, past retention, and has no
    /// tracked children — the inverse of Section 2's "retain exit
    /// information while there are children alive". A dead node with
    /// living children is retained regardless of age, so snapshots can
    /// mark it exited.
    fn prunable(&self, slot: u32, now_us: u64, retention_us: u64) -> bool {
        let n = &self.slab[slot as usize];
        n.state == WireProcState::Dead
            && n.dead_at
                .is_some_and(|d| now_us.saturating_sub(d) >= retention_us)
            && n.first_child == NIL
    }

    /// Drops dead nodes that have no live local descendants *and* have
    /// been dead longer than `retention_us`. Returns how many nodes were
    /// pruned.
    pub fn prune_older_than(&mut self, now_us: u64, retention_us: u64) -> usize {
        // Cascade worklist, seeded from the dead queue rather than a
        // dense slab scan so a sweep costs O(retained-dead), not
        // O(everything ever tracked). Stale queue entries (slot pruned
        // by an earlier cascade, recycled to a new pid, or revived) are
        // dropped; dead-but-not-yet-prunable entries stay queued for the
        // next sweep. Each time a node is removed it is unlinked from
        // its parent's child list — O(1) on the intrusive links — and
        // the parent is re-tested, since removing a dead leaf may make
        // its dead parent prunable.
        let mut pruned = 0;
        let mut work: Vec<u32> = Vec::new();
        let mut i = 0;
        while i < self.dead_queue.len() {
            let (slot, pid) = self.dead_queue[i];
            let n = &self.slab[slot as usize];
            if !n.in_use || n.pid != pid || n.state != WireProcState::Dead {
                self.dead_queue.swap_remove(i);
                continue;
            }
            if self.prunable(slot, now_us, retention_us) {
                self.dead_queue.swap_remove(i);
                work.push(slot);
                continue;
            }
            i += 1;
        }
        while let Some(slot) = work.pop() {
            // Defensive: a slot could in principle be queued twice; the
            // first removal wins and later pops find it free.
            if !self.slab[slot as usize].in_use || self.slab[slot as usize].first_child != NIL {
                continue;
            }
            let parent = self.slab[slot as usize].parent;
            self.unlink(slot);
            let pid = self.slab[slot as usize].pid;
            self.index.remove(&pid);
            self.release(slot);
            pruned += 1;
            if parent != NIL && self.prunable(parent, now_us, retention_us) {
                work.push(parent);
            }
        }
        pruned
    }

    /// Immediate prune (no retention) — used by tests.
    pub fn prune(&mut self) -> usize {
        self.prune_older_than(u64::MAX / 2, 0)
    }

    /// The snapshot slice this LPM reports: every tracked process as a
    /// [`ProcRecord`], in pid order. One dense pass over the slab.
    pub fn snapshot(&self) -> Vec<ProcRecord> {
        let mut entries: Vec<&Node> = self.slab.iter().filter(|n| n.in_use).collect();
        entries.sort_unstable_by_key(|n| n.pid);
        entries
            .into_iter()
            .map(|n| ProcRecord {
                gpid: Gpid::new(self.host.clone(), n.pid),
                ppid: n.ppid,
                logical_parent: n.logical_parent.clone(),
                command: n.command.clone(),
                state: n.state,
                started_us: n.started_us,
                cpu_us: n.cpu_us,
                adopted: n.adopted,
            })
            .collect()
    }

    /// Local descendants of `pid` (not including `pid`), pid order. The
    /// walk follows the intrusive child links, which by construction form
    /// a forest (re-tracking a pid detaches its old subtree), so no
    /// visited set is needed.
    pub fn descendants(&self, pid: u32) -> Vec<u32> {
        let Some(&root) = self.index.get(&pid) else {
            return Vec::new();
        };
        let mut out: Vec<u32> = Vec::new();
        let mut stack = vec![root];
        while let Some(s) = stack.pop() {
            let mut c = self.slab[s as usize].first_child;
            while c != NIL {
                out.push(self.slab[c as usize].pid);
                stack.push(c);
                c = self.slab[c as usize].next_sibling;
            }
        }
        out.sort_unstable();
        out
    }

    /// Takes a slot from the free list or grows the slab.
    fn alloc(&mut self) -> u32 {
        match self.free.pop() {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.slab.len()).expect("more than 2^32 tracked processes");
                self.slab.push(Node {
                    pid: 0,
                    ppid: 0,
                    logical_parent: None,
                    command: String::new(),
                    state: WireProcState::Embryo,
                    started_us: 0,
                    cpu_us: 0,
                    adopted: false,
                    dead_at: None,
                    in_use: false,
                    parent: NIL,
                    first_child: NIL,
                    next_sibling: NIL,
                    prev_sibling: NIL,
                });
                s
            }
        }
    }

    /// Returns `slot` to the free list, keeping its command buffer for
    /// the next occupant and dropping the (allocating) logical parent.
    fn release(&mut self, slot: u32) {
        let n = &mut self.slab[slot as usize];
        debug_assert!(n.first_child == NIL, "released node still has children");
        n.in_use = false;
        n.logical_parent = None;
        n.command.clear();
        self.free.push(slot);
    }

    /// Splices `slot` in at the head of `parent`'s child list.
    fn link(&mut self, slot: u32, parent: u32) {
        let head = self.slab[parent as usize].first_child;
        {
            let n = &mut self.slab[slot as usize];
            n.parent = parent;
            n.prev_sibling = NIL;
            n.next_sibling = head;
        }
        if head != NIL {
            self.slab[head as usize].prev_sibling = slot;
        }
        self.slab[parent as usize].first_child = slot;
    }

    /// Splices `slot` out of its parent's child list (no-op for roots).
    fn unlink(&mut self, slot: u32) {
        let (parent, prev, next) = {
            let n = &self.slab[slot as usize];
            (n.parent, n.prev_sibling, n.next_sibling)
        };
        if prev != NIL {
            self.slab[prev as usize].next_sibling = next;
        } else if parent != NIL {
            self.slab[parent as usize].first_child = next;
        }
        if next != NIL {
            self.slab[next as usize].prev_sibling = prev;
        }
        let n = &mut self.slab[slot as usize];
        n.parent = NIL;
        n.prev_sibling = NIL;
        n.next_sibling = NIL;
    }

    /// Detaches every child of `slot`, leaving them as roots. Used when a
    /// recycled pid overwrites a retained node: the replacement starts
    /// childless while the orphans keep their own records.
    fn detach_children(&mut self, slot: u32) {
        let mut c = self.slab[slot as usize].first_child;
        while c != NIL {
            let next = self.slab[c as usize].next_sibling;
            let n = &mut self.slab[c as usize];
            n.parent = NIL;
            n.prev_sibling = NIL;
            n.next_sibling = NIL;
            c = next;
        }
        self.slab[slot as usize].first_child = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Genealogy {
        Genealogy::new("a")
    }

    #[test]
    fn track_links_parents() {
        let mut t = g();
        t.track(10, 1, None, "sh", 0, true);
        t.track(11, 10, None, "cc", 0, true);
        t.track(12, 10, None, "as", 0, true);
        assert_eq!(t.children(10), vec![11, 12]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.descendants(10), vec![11, 12]);
    }

    #[test]
    fn exec_and_state_updates() {
        let mut t = g();
        t.track(10, 1, None, "sh", 5, true);
        assert_eq!(t.get(10).unwrap().state, WireProcState::Embryo);
        t.set_exec(10, "make");
        assert_eq!(t.get(10).unwrap().state, WireProcState::Running);
        assert_eq!(t.get(10).unwrap().command, "make");
        t.set_state(10, WireProcState::Stopped);
        assert_eq!(t.get(10).unwrap().state, WireProcState::Stopped);
        t.set_cpu(10, 1234);
        assert_eq!(t.get(10).unwrap().cpu_us, 1234);
    }

    #[test]
    fn dead_parent_retained_while_children_alive() {
        let mut t = g();
        t.track(10, 1, None, "sh", 0, true);
        t.track(11, 10, None, "cc", 0, true);
        t.mark_dead(10, 99);
        assert_eq!(t.prune(), 0, "dead parent with live child is retained");
        assert_eq!(t.get(10).unwrap().state, WireProcState::Dead);
        // Child dies too: both prunable (child first, then parent).
        t.mark_dead(11, 5);
        assert_eq!(t.prune(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn prune_unlinks_children_lists() {
        let mut t = g();
        t.track(10, 1, None, "sh", 0, true);
        t.track(11, 10, None, "cc", 0, true);
        t.mark_dead(11, 0);
        assert_eq!(t.prune(), 1);
        assert!(t.children(10).is_empty());
        assert_eq!(t.live_count(), 1);
    }

    #[test]
    fn snapshot_is_pid_ordered_with_gpids() {
        let mut t = g();
        t.track(12, 1, None, "b", 0, true);
        t.track(10, 1, Some(Gpid::new("other", 7)), "a", 0, false);
        let s = t.snapshot();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].gpid, Gpid::new("a", 10));
        assert_eq!(s[0].logical_parent, Some(Gpid::new("other", 7)));
        assert!(!s[0].adopted);
        assert_eq!(s[1].gpid, Gpid::new("a", 12));
    }

    #[test]
    fn live_count_tracks_every_transition() {
        let mut t = g();
        let scan = |t: &Genealogy| {
            (10..14)
                .filter_map(|p| t.get(p))
                .filter(|n| n.state != WireProcState::Dead)
                .count()
        };
        t.track(10, 1, None, "sh", 0, true);
        t.track(11, 10, None, "cc", 0, true);
        t.track(12, 10, None, "as", 0, true);
        assert_eq!(t.live_count(), 3);
        t.mark_dead(11, 1);
        assert_eq!(t.live_count(), scan(&t));
        // Dead -> Running via set_state and set_exec both revive.
        t.set_state(11, WireProcState::Running);
        assert_eq!(t.live_count(), 3);
        t.mark_dead(11, 1);
        t.set_exec(11, "ld");
        assert_eq!(t.live_count(), 3);
        // Non-Dead transitions leave the count alone.
        t.set_state(12, WireProcState::Stopped);
        assert_eq!(t.live_count(), 3);
        // Recycling a pid over a retained-dead node counts once.
        t.mark_dead(12, 2);
        t.track(12, 1, None, "new", 9, true);
        assert_eq!(t.live_count(), 3);
        assert_eq!(t.live_count(), scan(&t));
    }

    #[test]
    fn prune_cascades_up_a_dead_chain() {
        let mut t = g();
        // 10 -> 11 -> ... -> 29, all dead: one prune drops the whole chain.
        for i in 0..20u32 {
            let pid = 10 + i;
            let ppid = if i == 0 { 1 } else { 9 + i };
            t.track(pid, ppid, None, "p", 0, true);
        }
        for pid in 10..30 {
            t.mark_dead(pid, 0);
        }
        assert_eq!(t.prune(), 20);
        assert!(t.is_empty());
        assert_eq!(t.live_count(), 0);
    }

    #[test]
    fn retention_window_keeps_recent_dead() {
        let mut t = g();
        t.track(10, 1, None, "sh", 0, true);
        t.mark_dead_at(10, 7, 1_000);
        // Dead only 500µs at now=1500 with 1000µs retention: kept.
        assert_eq!(t.prune_older_than(1_500, 1_000), 0);
        assert!(t.contains(10));
        assert_eq!(t.prune_older_than(2_000, 1_000), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn descendants_of_leaf_is_empty() {
        let mut t = g();
        t.track(10, 1, None, "sh", 0, true);
        assert!(t.descendants(10).is_empty());
        assert!(t.descendants(999).is_empty());
    }

    #[test]
    fn slots_are_recycled_through_the_free_list() {
        let mut t = g();
        for pid in 10..20 {
            t.track(pid, 1, None, "burst", 0, true);
        }
        for pid in 10..20 {
            t.mark_dead(pid, 0);
        }
        assert_eq!(t.prune(), 10);
        let arena = t.slab.len();
        // A second wave of the same size reuses the retired slots.
        for pid in 30..40 {
            t.track(pid, 1, None, "again", 0, true);
        }
        assert_eq!(t.slab.len(), arena, "no arena growth on reuse");
        assert_eq!(t.len(), 10);
        assert_eq!(t.live_count(), 10);
    }

    #[test]
    fn retrack_detaches_the_old_subtree() {
        let mut t = g();
        t.track(10, 1, None, "sh", 0, true);
        t.track(11, 10, None, "cc", 0, true);
        t.mark_dead(10, 0);
        // Pid 10 is recycled by the kernel: the replacement starts
        // childless; 11 keeps its record but is no longer 10's child.
        t.track(10, 1, None, "fresh", 5, true);
        assert!(t.children(10).is_empty());
        assert!(t.contains(11));
        assert_eq!(t.descendants(10), Vec::<u32>::new());
    }
}
