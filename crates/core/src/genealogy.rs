//! The LPM's local genealogy: the slice of the user's computation tree on
//! one host.
//!
//! "A computation is considered to be a group of processes that have a
//! common logical ancestor. Under the PPM the processes form a (logical)
//! tree that may span a number of machines." Each LPM tracks its local
//! processes; cross-host edges are recorded as *logical parent* links on
//! remotely-created processes. "We chose to retain exit information while
//! there are children alive, and for the display of a genealogical
//! distributed computation snapshot we mark the process as exited."

use ppm_proto::types::{Gpid, ProcRecord, WireProcState};
use ppm_simnet::hashx::{FastMap, FastSet};

/// One tracked process.
#[derive(Debug, Clone)]
pub struct Node {
    /// Local pid.
    pub pid: u32,
    /// Local parent pid (1 = no managed local parent).
    pub ppid: u32,
    /// Logical parent on another host, when created remotely.
    pub logical_parent: Option<Gpid>,
    /// Command name.
    pub command: String,
    /// Last known state.
    pub state: WireProcState,
    /// Creation time (µs).
    pub started_us: u64,
    /// CPU consumed (µs), as of the last kernel report.
    pub cpu_us: u64,
    /// Whether the LPM adopted it (vs. merely observed).
    pub adopted: bool,
    /// Local children pids.
    pub children: Vec<u32>,
    /// When the process died (µs), if it has.
    pub dead_at: Option<u64>,
}

/// The per-host genealogy store.
///
/// Lookup structure: a [`FastMap`] of nodes plus a maintained count of
/// live (non-[`Dead`](WireProcState::Dead)) nodes, adjusted on every
/// state transition so [`Genealogy::live_count`] is O(1) — it is polled
/// on the snapshot and status paths for every request.
#[derive(Debug, Clone, Default)]
pub struct Genealogy {
    host: String,
    nodes: FastMap<u32, Node>,
    /// Count of nodes whose `state != Dead`; kept in lockstep with every
    /// mutation below.
    live: usize,
}

impl Genealogy {
    /// Creates an empty genealogy for `host`.
    pub fn new(host: impl Into<String>) -> Self {
        Genealogy {
            host: host.into(),
            nodes: FastMap::default(),
            live: 0,
        }
    }

    /// Number of tracked processes (live and retained-dead).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of live tracked processes. O(1): maintained on every
    /// state transition rather than scanned.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Begins tracking a process.
    pub fn track(
        &mut self,
        pid: u32,
        ppid: u32,
        logical_parent: Option<Gpid>,
        command: impl Into<String>,
        started_us: u64,
        adopted: bool,
    ) {
        let node = Node {
            pid,
            ppid,
            logical_parent,
            command: command.into(),
            state: WireProcState::Embryo,
            started_us,
            cpu_us: 0,
            adopted,
            children: Vec::new(),
            dead_at: None,
        };
        // A recycled pid may overwrite a retained-dead node; only the
        // replaced node's liveness (if any) leaves the count.
        if let Some(old) = self.nodes.insert(pid, node) {
            if old.state != WireProcState::Dead {
                self.live -= 1;
            }
        }
        self.live += 1;
        // Never self-link: a pid can equal its recorded ppid when a pid
        // value is recycled after pruning; linking it to itself would put
        // a cycle in the tree.
        if ppid != pid {
            if let Some(parent) = self.nodes.get_mut(&ppid) {
                if !parent.children.contains(&pid) {
                    parent.children.push(pid);
                }
            }
        }
    }

    /// Whether `pid` is tracked.
    pub fn contains(&self, pid: u32) -> bool {
        self.nodes.contains_key(&pid)
    }

    /// Immutable access to a node.
    pub fn get(&self, pid: u32) -> Option<&Node> {
        self.nodes.get(&pid)
    }

    /// Updates a node's state; no-op for untracked pids.
    pub fn set_state(&mut self, pid: u32, state: WireProcState) {
        if let Some(n) = self.nodes.get_mut(&pid) {
            match (n.state == WireProcState::Dead, state == WireProcState::Dead) {
                (false, true) => self.live -= 1,
                (true, false) => self.live += 1,
                _ => {}
            }
            n.state = state;
        }
    }

    /// Updates a node's command (on exec) and marks it running.
    pub fn set_exec(&mut self, pid: u32, command: impl Into<String>) {
        if let Some(n) = self.nodes.get_mut(&pid) {
            n.command = command.into();
            if n.state == WireProcState::Dead {
                self.live += 1;
            }
            n.state = WireProcState::Running;
        }
    }

    /// Restores a node's logical-parent edge (sibling gossip after a
    /// manager respawn); no-op for untracked pids.
    pub fn set_logical_parent(&mut self, pid: u32, parent: Gpid) {
        if let Some(n) = self.nodes.get_mut(&pid) {
            n.logical_parent = Some(parent);
        }
    }

    /// Updates CPU usage.
    pub fn set_cpu(&mut self, pid: u32, cpu_us: u64) {
        if let Some(n) = self.nodes.get_mut(&pid) {
            n.cpu_us = cpu_us;
        }
    }

    /// Marks a node dead at `now_us` (retained while relatives need it;
    /// see [`Genealogy::prune`]).
    pub fn mark_dead_at(&mut self, pid: u32, cpu_us: u64, now_us: u64) {
        if let Some(n) = self.nodes.get_mut(&pid) {
            if n.state != WireProcState::Dead {
                self.live -= 1;
            }
            n.state = WireProcState::Dead;
            n.cpu_us = cpu_us;
            n.dead_at = Some(now_us);
        }
    }

    /// Marks a node dead with no timestamp bookkeeping (tests).
    pub fn mark_dead(&mut self, pid: u32, cpu_us: u64) {
        self.mark_dead_at(pid, cpu_us, 0);
    }

    /// Drops dead nodes that have no live local descendants *and* have
    /// been dead longer than `retention_us` — the inverse of Section 2's
    /// "retain exit information while there are children alive". A dead
    /// node with living children is retained regardless of age, so
    /// snapshots can mark it exited.
    ///
    /// True when `n` is dead, past retention, and has no tracked children.
    fn prunable(&self, n: &Node, now_us: u64, retention_us: u64) -> bool {
        n.state == WireProcState::Dead
            && n.dead_at
                .is_some_and(|d| now_us.saturating_sub(d) >= retention_us)
            && n.children.iter().all(|c| !self.nodes.contains_key(c))
    }

    /// Returns how many nodes were pruned.
    pub fn prune_older_than(&mut self, now_us: u64, retention_us: u64) -> usize {
        // Cascade worklist: seed with every currently-prunable leaf, and
        // each time a node is removed, unlink it from its parent's
        // children list and re-test the parent — removing a dead leaf may
        // make its dead parent prunable. One pass over the map plus
        // O(log-ish) per removal, versus re-scanning every node (and
        // rebuilding every children list) per fixed-point round.
        let mut pruned = 0;
        let mut work: Vec<u32> = self
            .nodes
            .values()
            .filter(|n| self.prunable(n, now_us, retention_us))
            .map(|n| n.pid)
            .collect();
        while let Some(pid) = work.pop() {
            // A parent can be queued once per pruned child; the first
            // removal wins and later pops find nothing.
            let Some(node) = self.nodes.remove(&pid) else {
                continue;
            };
            pruned += 1;
            if node.ppid != pid {
                if let Some(parent) = self.nodes.get_mut(&node.ppid) {
                    parent.children.retain(|c| *c != pid);
                    let parent = &self.nodes[&node.ppid];
                    if self.prunable(parent, now_us, retention_us) {
                        work.push(node.ppid);
                    }
                }
            }
        }
        pruned
    }

    /// Immediate prune (no retention) — used by tests.
    pub fn prune(&mut self) -> usize {
        self.prune_older_than(u64::MAX / 2, 0)
    }

    /// The snapshot slice this LPM reports: every tracked process as a
    /// [`ProcRecord`], in pid order.
    pub fn snapshot(&self) -> Vec<ProcRecord> {
        let mut entries: Vec<&Node> = self.nodes.values().collect();
        entries.sort_unstable_by_key(|n| n.pid);
        entries
            .into_iter()
            .map(|n| ProcRecord {
                gpid: Gpid::new(self.host.clone(), n.pid),
                ppid: n.ppid,
                logical_parent: n.logical_parent.clone(),
                command: n.command.clone(),
                state: n.state,
                started_us: n.started_us,
                cpu_us: n.cpu_us,
                adopted: n.adopted,
            })
            .collect()
    }

    /// Local descendants of `pid` (not including `pid`), pid order.
    pub fn descendants(&self, pid: u32) -> Vec<u32> {
        let mut seen: FastSet<u32> = FastSet::default();
        let mut out: Vec<u32> = Vec::new();
        let mut stack = vec![pid];
        while let Some(p) = stack.pop() {
            if let Some(n) = self.nodes.get(&p) {
                for &c in &n.children {
                    // `seen` guards against pid-recycling cycles.
                    if self.nodes.contains_key(&c) && c != pid && seen.insert(c) {
                        out.push(c);
                        stack.push(c);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> Genealogy {
        Genealogy::new("a")
    }

    #[test]
    fn track_links_parents() {
        let mut t = g();
        t.track(10, 1, None, "sh", 0, true);
        t.track(11, 10, None, "cc", 0, true);
        t.track(12, 10, None, "as", 0, true);
        assert_eq!(t.get(10).unwrap().children, vec![11, 12]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.descendants(10), vec![11, 12]);
    }

    #[test]
    fn exec_and_state_updates() {
        let mut t = g();
        t.track(10, 1, None, "sh", 5, true);
        assert_eq!(t.get(10).unwrap().state, WireProcState::Embryo);
        t.set_exec(10, "make");
        assert_eq!(t.get(10).unwrap().state, WireProcState::Running);
        assert_eq!(t.get(10).unwrap().command, "make");
        t.set_state(10, WireProcState::Stopped);
        assert_eq!(t.get(10).unwrap().state, WireProcState::Stopped);
        t.set_cpu(10, 1234);
        assert_eq!(t.get(10).unwrap().cpu_us, 1234);
    }

    #[test]
    fn dead_parent_retained_while_children_alive() {
        let mut t = g();
        t.track(10, 1, None, "sh", 0, true);
        t.track(11, 10, None, "cc", 0, true);
        t.mark_dead(10, 99);
        assert_eq!(t.prune(), 0, "dead parent with live child is retained");
        assert_eq!(t.get(10).unwrap().state, WireProcState::Dead);
        // Child dies too: both prunable (child first, then parent).
        t.mark_dead(11, 5);
        assert_eq!(t.prune(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn prune_unlinks_children_lists() {
        let mut t = g();
        t.track(10, 1, None, "sh", 0, true);
        t.track(11, 10, None, "cc", 0, true);
        t.mark_dead(11, 0);
        assert_eq!(t.prune(), 1);
        assert!(t.get(10).unwrap().children.is_empty());
        assert_eq!(t.live_count(), 1);
    }

    #[test]
    fn snapshot_is_pid_ordered_with_gpids() {
        let mut t = g();
        t.track(12, 1, None, "b", 0, true);
        t.track(10, 1, Some(Gpid::new("other", 7)), "a", 0, false);
        let s = t.snapshot();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].gpid, Gpid::new("a", 10));
        assert_eq!(s[0].logical_parent, Some(Gpid::new("other", 7)));
        assert!(!s[0].adopted);
        assert_eq!(s[1].gpid, Gpid::new("a", 12));
    }

    #[test]
    fn live_count_tracks_every_transition() {
        let mut t = g();
        let scan = |t: &Genealogy| {
            (10..14)
                .filter_map(|p| t.get(p))
                .filter(|n| n.state != WireProcState::Dead)
                .count()
        };
        t.track(10, 1, None, "sh", 0, true);
        t.track(11, 10, None, "cc", 0, true);
        t.track(12, 10, None, "as", 0, true);
        assert_eq!(t.live_count(), 3);
        t.mark_dead(11, 1);
        assert_eq!(t.live_count(), scan(&t));
        // Dead -> Running via set_state and set_exec both revive.
        t.set_state(11, WireProcState::Running);
        assert_eq!(t.live_count(), 3);
        t.mark_dead(11, 1);
        t.set_exec(11, "ld");
        assert_eq!(t.live_count(), 3);
        // Non-Dead transitions leave the count alone.
        t.set_state(12, WireProcState::Stopped);
        assert_eq!(t.live_count(), 3);
        // Recycling a pid over a retained-dead node counts once.
        t.mark_dead(12, 2);
        t.track(12, 1, None, "new", 9, true);
        assert_eq!(t.live_count(), 3);
        assert_eq!(t.live_count(), scan(&t));
    }

    #[test]
    fn prune_cascades_up_a_dead_chain() {
        let mut t = g();
        // 10 -> 11 -> ... -> 29, all dead: one prune drops the whole chain.
        for i in 0..20u32 {
            let pid = 10 + i;
            let ppid = if i == 0 { 1 } else { 9 + i };
            t.track(pid, ppid, None, "p", 0, true);
        }
        for pid in 10..30 {
            t.mark_dead(pid, 0);
        }
        assert_eq!(t.prune(), 20);
        assert!(t.is_empty());
        assert_eq!(t.live_count(), 0);
    }

    #[test]
    fn retention_window_keeps_recent_dead() {
        let mut t = g();
        t.track(10, 1, None, "sh", 0, true);
        t.mark_dead_at(10, 7, 1_000);
        // Dead only 500µs at now=1500 with 1000µs retention: kept.
        assert_eq!(t.prune_older_than(1_500, 1_000), 0);
        assert!(t.contains(10));
        assert_eq!(t.prune_older_than(2_000, 1_000), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn descendants_of_leaf_is_empty() {
        let mut t = g();
        t.track(10, 1, None, "sh", 0, true);
        assert!(t.descendants(10).is_empty());
        assert!(t.descendants(999).is_empty());
    }
}
