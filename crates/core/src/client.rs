//! The tool-side client library.
//!
//! "A library of subroutines handles most interactions with the PPM, so
//! that user-written programs may easily make use of PPM's capabilities."
//! [`Tool`] is that library wrapped in a runnable program: it locates (or
//! creates) the user's local LPM through the Figure-2 chain, authenticates,
//! plays a script of requests, records every reply with its timing into a
//! shared [`ToolOutcome`], and exits.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use bytes::Bytes;
use ppm_proto::codec::Wire;
use ppm_proto::msg::{Msg, Op, Reply};
use ppm_runtime::ids::ConnId;
use ppm_runtime::program::{ConnEvent, Program};
use ppm_runtime::sys::Sys;
use ppm_runtime::time::{SimDuration, SimTime};

use crate::auth::UserCred;
use crate::config::PpmConfig;
use crate::locator::{ChanProgress, HelloIdentity, LpmChannel};

/// One scripted request: destination host (or `"*"`) and operation.
#[derive(Debug, Clone)]
pub struct ToolStep {
    /// Destination host name, or `"*"` for a broadcast.
    pub dest: String,
    /// The operation.
    pub op: Op,
}

impl ToolStep {
    /// Convenience constructor.
    pub fn new(dest: impl Into<String>, op: Op) -> Self {
        ToolStep {
            dest: dest.into(),
            op,
        }
    }
}

/// What the tool observed, shared with the test/benchmark driver.
#[derive(Debug, Clone, Default)]
pub struct ToolOutcome {
    /// Replies in script order, with the time each arrived.
    pub replies: Vec<(Reply, SimTime)>,
    /// When each request was sent.
    pub sent_at: Vec<SimTime>,
    /// Fatal error, if the tool could not complete.
    pub error: Option<String>,
    /// The tool finished its script (successfully or not).
    pub done: bool,
    /// When the tool started running.
    pub started_at: Option<SimTime>,
    /// When the channel to the LPM was ready.
    pub connected_at: Option<SimTime>,
    /// Whether this request created the LPM.
    pub created_lpm: bool,
}

impl ToolOutcome {
    /// Elapsed time from request send to reply for step `i`.
    pub fn elapsed(&self, i: usize) -> Option<SimDuration> {
        let (_, at) = self.replies.get(i)?;
        let sent = *self.sent_at.get(i)?;
        Some(at.saturating_since(sent))
    }

    /// The reply of step `i`, if it arrived.
    pub fn reply(&self, i: usize) -> Option<&Reply> {
        self.replies.get(i).map(|(r, _)| r)
    }
}

/// Shared handle to a tool's outcome.
pub type ToolHandle = Arc<Mutex<ToolOutcome>>;

/// A scripted PPM tool process.
pub struct Tool {
    cred: UserCred,
    cfg: PpmConfig,
    script: Vec<ToolStep>,
    outcome: ToolHandle,
    chan: Option<LpmChannel>,
    conn: Option<ConnId>,
    step: usize,
    next_id: u64,
    deadline: SimDuration,
    /// How many requests may be in flight at once (1 = lock-step).
    pipeline: usize,
    /// Per-request deadline stamped on the wire; `None` lets the LPM
    /// apply its configured default.
    step_deadline: Option<SimDuration>,
    /// Wire id → script index of requests awaiting a reply.
    inflight: HashMap<u64, usize>,
    /// Replies that arrived ahead of an earlier outstanding step.
    reordered: BTreeMap<usize, (Reply, SimTime)>,
    /// Next script index to flush into `outcome.replies`.
    flushed: usize,
}

impl std::fmt::Debug for Tool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tool")
            .field("user", &self.cred.uid)
            .field("steps", &self.script.len())
            .field("step", &self.step)
            .finish()
    }
}

const RETRY_TOKEN: u64 = 1;
const DEADLINE_TOKEN: u64 = 2;

impl Tool {
    /// Creates a tool with a script; results land in the returned handle.
    pub fn new(cred: UserCred, cfg: PpmConfig, script: Vec<ToolStep>) -> (Self, ToolHandle) {
        let outcome: ToolHandle = Arc::new(Mutex::new(ToolOutcome::default()));
        let tool = Tool {
            cred,
            cfg,
            script,
            outcome: Arc::clone(&outcome),
            chan: None,
            conn: None,
            step: 0,
            next_id: 1,
            deadline: SimDuration::from_secs(120),
            pipeline: 1,
            step_deadline: None,
            inflight: HashMap::new(),
            reordered: BTreeMap::new(),
            flushed: 0,
        };
        (tool, outcome)
    }

    /// Overrides the give-up deadline.
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Allows up to `window` requests in flight at once on the LPM
    /// connection. Replies are matched by wire id, so they may arrive out
    /// of script order; the outcome still records them in script order.
    pub fn with_pipeline(mut self, window: usize) -> Self {
        self.pipeline = window.max(1);
        self
    }

    /// Stamps each request with an absolute deadline `d` from its send
    /// time, propagated (and decayed) through relays.
    pub fn with_step_deadline(mut self, d: SimDuration) -> Self {
        self.step_deadline = Some(d);
        self
    }

    fn fail(&mut self, sys: &mut dyn Sys, why: String) {
        {
            let mut o = self.outcome.lock().unwrap();
            o.error = Some(why);
            o.done = true;
        }
        sys.exit(1);
    }

    /// Sends script steps until the pipeline window is full, and exits
    /// once every step has been sent and answered.
    fn pump(&mut self, sys: &mut dyn Sys) {
        let Some(conn) = self.conn else { return };
        while self.step < self.script.len() && self.inflight.len() < self.pipeline {
            let ToolStep { dest, op } = self.script[self.step].clone();
            let id = self.next_id;
            self.next_id += 1;
            let deadline_us = self
                .step_deadline
                .map_or(0, |d| (sys.now() + d).as_micros());
            let msg = Msg::Req {
                id,
                user: self.cred.uid.0,
                dest,
                op,
                route: ppm_proto::types::Route::default(),
                hops_left: self.cfg.max_hops,
                deadline_us,
                attempt: 0,
                boot: 0,
            };
            self.inflight.insert(id, self.step);
            self.outcome.lock().unwrap().sent_at.push(sys.now());
            self.step += 1;
            if sys.send(conn, msg.to_bytes()).is_err() {
                self.fail(sys, "send to LPM failed".to_string());
                return;
            }
        }
        if self.step >= self.script.len() && self.inflight.is_empty() {
            {
                let mut o = self.outcome.lock().unwrap();
                o.done = true;
            }
            let _ = sys.close(conn);
            sys.exit(0);
        }
    }

    /// Records a reply for script index `idx`, flushing any contiguous run
    /// into the outcome so `replies` stays in script order.
    fn record_reply(&mut self, idx: usize, reply: Reply, at: SimTime) {
        self.reordered.insert(idx, (reply, at));
        let mut o = self.outcome.lock().unwrap();
        while let Some(entry) = self.reordered.remove(&self.flushed) {
            o.replies.push(entry);
            self.flushed += 1;
        }
    }

    fn apply_progress(&mut self, sys: &mut dyn Sys, progress: ChanProgress) {
        match progress {
            ChanProgress::Pending => {}
            ChanProgress::RetryAfter(d) => {
                sys.set_timer(d, RETRY_TOKEN);
            }
            ChanProgress::Ready { conn, created, .. } => {
                self.conn = Some(conn);
                {
                    let mut o = self.outcome.lock().unwrap();
                    o.connected_at = Some(sys.now());
                    o.created_lpm = created;
                }
                self.pump(sys);
            }
            ChanProgress::Failed(e) => {
                self.fail(sys, format!("cannot reach LPM: {e}"));
            }
        }
    }
}

impl Program for Tool {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        self.outcome.lock().unwrap().started_at = Some(sys.now());
        let deadline = self.deadline;
        sys.set_timer(deadline, DEADLINE_TOKEN);
        let identity = HelloIdentity {
            user: self.cred.uid.0,
            host: sys.host_name().to_string(),
            is_tool: true,
            ccs: String::new(),
            epoch: 0,
            proof: self.cred.proof(),
        };
        let target = sys.host();
        let retry = self.cfg.connect_retry;
        let attempts = self.cfg.connect_attempts;
        self.chan = Some(LpmChannel::start(sys, target, identity, retry, attempts));
    }

    fn on_conn_event(&mut self, sys: &mut dyn Sys, conn: ConnId, event: ConnEvent) {
        if self.conn == Some(conn) {
            if matches!(event, ConnEvent::Closed) && !self.outcome.lock().unwrap().done {
                self.fail(sys, "LPM closed the connection".to_string());
            }
            return;
        }
        if let Some(chan) = &mut self.chan {
            if chan.owns(conn) {
                let progress = chan.on_conn_event(sys, event);
                self.apply_progress(sys, progress);
            }
        }
    }

    fn on_message(&mut self, sys: &mut dyn Sys, conn: ConnId, data: Bytes) {
        if self.conn == Some(conn) {
            match Msg::from_bytes(&data) {
                Ok(Msg::Resp { id, reply, .. }) => {
                    // Match the reply to its request by wire id; stale or
                    // duplicate ids are ignored.
                    if let Some(idx) = self.inflight.remove(&id) {
                        self.record_reply(idx, reply, sys.now());
                        self.pump(sys);
                    }
                }
                Ok(Msg::MetricsSnapshot {
                    id,
                    host,
                    at_us,
                    rows,
                    ..
                }) => {
                    // A registry pull's dedicated frame; fold it back into
                    // the reply stream under its wire id.
                    if let Some(idx) = self.inflight.remove(&id) {
                        let reply = Reply::Metrics { host, at_us, rows };
                        self.record_reply(idx, reply, sys.now());
                        self.pump(sys);
                    }
                }
                Ok(other) => {
                    // Announcements etc. are not replies; ignore.
                    let _ = other;
                }
                Err(_) => self.fail(sys, "undecodable reply".to_string()),
            }
            return;
        }
        if let Some(chan) = &mut self.chan {
            if chan.owns(conn) {
                let progress = chan.on_message(sys, data);
                self.apply_progress(sys, progress);
            }
        }
    }

    fn on_timer(&mut self, sys: &mut dyn Sys, token: u64) {
        match token {
            RETRY_TOKEN => {
                if let Some(chan) = &mut self.chan {
                    if !chan.is_terminal() {
                        let progress = chan.retry(sys);
                        self.apply_progress(sys, progress);
                    }
                }
            }
            DEADLINE_TOKEN if !self.outcome.lock().unwrap().done => {
                self.fail(sys, "tool deadline exceeded".to_string());
            }
            _ => {}
        }
    }

    fn name(&self) -> &str {
        "ppm-tool"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_runtime::ids::Uid;

    #[test]
    fn outcome_elapsed_math() {
        let mut o = ToolOutcome::default();
        o.sent_at.push(SimTime::from_millis(10));
        o.replies.push((Reply::Ok, SimTime::from_millis(40)));
        assert_eq!(o.elapsed(0), Some(SimDuration::from_millis(30)));
        assert_eq!(o.elapsed(1), None);
        assert!(matches!(o.reply(0), Some(Reply::Ok)));
    }

    #[test]
    fn tool_construction_shares_outcome() {
        let (tool, handle) = Tool::new(
            UserCred::new(Uid(1), 2),
            PpmConfig::default(),
            vec![ToolStep::new("a", Op::Ping)],
        );
        assert!(!handle.lock().unwrap().done);
        assert_eq!(tool.script.len(), 1);
        assert_eq!(tool.pipeline, 1);
    }

    #[test]
    fn out_of_order_replies_flush_in_script_order() {
        let (tool, handle) = Tool::new(
            UserCred::new(Uid(1), 2),
            PpmConfig::default(),
            vec![ToolStep::new("a", Op::Ping), ToolStep::new("b", Op::Ping)],
        );
        let mut tool = tool.with_pipeline(4);
        assert_eq!(tool.pipeline, 4);
        // Step 1's reply lands first: nothing flushes until step 0 arrives.
        tool.record_reply(1, Reply::Ok, SimTime::from_millis(5));
        assert!(handle.lock().unwrap().replies.is_empty());
        tool.record_reply(0, Reply::Pong, SimTime::from_millis(9));
        let o = handle.lock().unwrap();
        assert!(matches!(o.replies[0].0, Reply::Pong));
        assert!(matches!(o.replies[1].0, Reply::Ok));
    }
}
