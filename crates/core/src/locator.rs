//! The LPM-creation chain of Figure 2, as a reusable client state machine.
//!
//! Both tools and sibling LPMs need an authenticated channel to a user's
//! LPM on some host. Getting one takes the paper's four steps plus the
//! handshake:
//!
//! 1. connect to the target's **inetd** and request the `pmd` service;
//! 2. inetd starts **pmd** if necessary and returns its port;
//! 3. connect to pmd and send [`Msg::CreateLpm`]; pmd creates the LPM if
//!    necessary "after verifying that there is no LPM for that user in
//!    that host";
//! 4. pmd returns the **accept address**; connect to it and exchange
//!    [`Msg::Hello`]/[`Msg::HelloAck`] to authenticate the channel.
//!
//! Daemons may still be booting when we connect, so refused connections
//! are retried — the owner of the machine schedules the retry timer.

use bytes::Bytes;
use ppm_proto::codec::Wire;
use ppm_proto::msg::Msg;
use ppm_proto::types::Route;
use ppm_runtime::hashx::FastMap;
use ppm_runtime::ids::HostId;
use ppm_runtime::ids::{ConnId, Port};
use ppm_runtime::inetd;
use ppm_runtime::program::{ConnEvent, SysError};
use ppm_runtime::sys::Sys;
use ppm_runtime::time::SimDuration;
use ppm_runtime::trace::TraceCategory;

use crate::config::PMD_SERVICE;

/// A bounded next-hop cache learned from reply routes.
///
/// Establishing a direct sibling channel costs the full Figure 2 chain
/// (inetd → pmd → LPM handshake); relaying through an already-connected
/// sibling costs one message. The cache maps a destination host to the
/// first hop of a route that reached it, keyed with the hot-path hasher —
/// it is consulted on every remote send. First-learned routes win, and
/// the cache stops learning at `cap` entries so a pathological topology
/// cannot grow it without bound. Entries are only dropped wholesale via
/// [`RouteCache::clear`], never evicted one by one, which keeps lookups
/// deterministic.
/// One learned route: the next hop to relay through, plus the full hop
/// path (`[me, next, ..., dest]`) it was learned from, kept so the cache
/// can revalidate every leg when the world's reachability epoch moves.
#[derive(Debug, Clone)]
struct RouteEntry {
    next: String,
    path: Vec<String>,
}

#[derive(Debug, Clone)]
pub struct RouteCache {
    map: FastMap<String, RouteEntry>,
    cap: usize,
    hits: u64,
    misses: u64,
}

impl Default for RouteCache {
    fn default() -> Self {
        RouteCache::new(1024)
    }
}

impl RouteCache {
    /// Creates a cache that learns at most `cap` destinations.
    pub fn new(cap: usize) -> Self {
        RouteCache {
            map: FastMap::default(),
            cap,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up the next hop toward `dest`, counting the hit or miss.
    pub fn lookup(&mut self, dest: &str) -> Option<&str> {
        match self.map.get(dest) {
            Some(e) => {
                self.hits += 1;
                Some(e.next.as_str())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peeks at the next hop toward `dest` without touching the counters.
    pub fn get(&self, dest: &str) -> Option<&str> {
        self.map.get(dest).map(|e| e.next.as_str())
    }

    /// Whether a next hop is known for `dest`.
    pub fn contains_key(&self, dest: &str) -> bool {
        self.map.contains_key(dest)
    }

    /// Number of cached destinations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been learned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// (hits, misses) recorded by [`RouteCache::lookup`].
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Learns next hops from a reply's route, which must originate at
    /// `self_host` (routes we did not source teach us nothing about our
    /// own next hop). `route = [me, hop1, hop2, ..., responder]`; every
    /// host past `hop1` becomes reachable via `hop1`. Direct neighbours
    /// (`len < 3`) are never cached. First route wins.
    pub fn learn(&mut self, route: &Route, self_host: &str) {
        if route.origin() != Some(self_host) {
            return;
        }
        let hops = &route.0;
        if hops.len() < 3 {
            return;
        }
        let next = &hops[1];
        for (i, dest) in hops.iter().enumerate().skip(2) {
            if self.map.len() >= self.cap && !self.map.contains_key(dest) {
                return;
            }
            self.map.entry(dest.clone()).or_insert_with(|| RouteEntry {
                next: next.clone(),
                path: hops[..=i].to_vec(),
            });
        }
    }

    /// Forgets everything (counters included).
    pub fn clear(&mut self) {
        self.map.clear();
        self.hits = 0;
        self.misses = 0;
    }

    /// Evicts `host` as a destination and every entry routed *via* it.
    /// Returns how many entries went.
    ///
    /// Called on an observed transport error (a crashed host or cut
    /// link): without eviction, stale next-hops only age out wholesale,
    /// so post-heal traffic would keep relaying into the dead hop
    /// instead of re-learning a live route.
    pub fn evict_via(&mut self, host: &str) -> usize {
        let before = self.map.len();
        self.map.retain(|dest, e| dest != host && e.next != host);
        before - self.map.len()
    }

    /// Revalidates every cached route against current reachability:
    /// each leg of an entry's learned path is checked with `edge_up`,
    /// and entries with any dead leg are evicted. Returns how many went.
    ///
    /// Called when the world's reachability epoch moves (link cut/heal,
    /// named net-link cut, crash, restart). `evict_via` only fires on an
    /// *observed* transport error, so before this check a fault-plan cut
    /// that changed reachability mid-run left stale entries relaying into
    /// the severed link until each one burned a retry cycle; healed links
    /// re-learn naturally from the next reply route.
    pub fn validate(&mut self, mut edge_up: impl FnMut(&str, &str) -> bool) -> usize {
        let before = self.map.len();
        self.map
            .retain(|_, e| e.path.windows(2).all(|leg| edge_up(&leg[0], &leg[1])));
        before - self.map.len()
    }
}

/// Identity material the channel presents in its `Hello`.
#[derive(Debug, Clone)]
pub struct HelloIdentity {
    /// Acting user.
    pub user: u32,
    /// Caller's host name.
    pub host: String,
    /// True for tools, false for sibling LPMs.
    pub is_tool: bool,
    /// Caller's CCS view.
    pub ccs: String,
    /// Caller's CCS epoch.
    pub epoch: u64,
    /// Authentication proof.
    pub proof: u64,
}

/// Progress report returned by every event fed to the channel.
#[derive(Debug, Clone, PartialEq)]
pub enum ChanProgress {
    /// Still working; nothing for the owner to do.
    Pending,
    /// Transient failure (daemon booting); call
    /// [`LpmChannel::retry`] after this delay.
    RetryAfter(SimDuration),
    /// Channel established and authenticated.
    Ready {
        /// The authenticated connection to the LPM.
        conn: ConnId,
        /// Whether this request created the LPM.
        created: bool,
        /// The LPM's CCS view from its `HelloAck`.
        peer_ccs: String,
        /// The LPM's CCS epoch.
        peer_epoch: u64,
    },
    /// Permanent failure.
    Failed(SysError),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Step {
    ToInetd,
    AwaitPmdPort,
    ToPmd,
    AwaitLpmAddr,
    ToLpm,
    AwaitAck,
    Done,
    Dead,
}

/// The state machine. The owner routes events for connections the channel
/// [`owns`](LpmChannel::owns) into [`on_conn_event`](Self::on_conn_event) /
/// [`on_message`](Self::on_message), and calls [`retry`](Self::retry) when
/// a `RetryAfter` delay elapses.
#[derive(Debug)]
pub struct LpmChannel {
    target: HostId,
    identity: HelloIdentity,
    step: Step,
    conn: Option<ConnId>,
    pmd_port: Option<Port>,
    lpm_port: Option<Port>,
    created: bool,
    attempts_left: u32,
    retry_delay: SimDuration,
}

impl LpmChannel {
    /// Starts the chain toward `target`.
    pub fn start(
        sys: &mut dyn Sys,
        target: HostId,
        identity: HelloIdentity,
        retry_delay: SimDuration,
        attempts: u32,
    ) -> Self {
        let mut chan = LpmChannel {
            target,
            identity,
            step: Step::ToInetd,
            conn: None,
            pmd_port: None,
            lpm_port: None,
            created: false,
            attempts_left: attempts.max(1),
            retry_delay,
        };
        chan.connect_current(sys);
        chan
    }

    /// The host this channel targets.
    pub fn target(&self) -> HostId {
        self.target
    }

    /// Whether `conn` belongs to this channel.
    pub fn owns(&self, conn: ConnId) -> bool {
        self.conn == Some(conn)
    }

    /// The connection the channel is currently using, if any. Owners
    /// re-register this after every progress report so events route back.
    pub fn current_conn(&self) -> Option<ConnId> {
        self.conn
    }

    /// True once the channel reached a terminal state.
    pub fn is_terminal(&self) -> bool {
        matches!(self.step, Step::Done | Step::Dead)
    }

    fn connect_current(&mut self, sys: &mut dyn Sys) {
        let port = match self.step {
            Step::ToInetd => Port::INETD,
            Step::ToPmd => self.pmd_port.expect("pmd port known at ToPmd"),
            Step::ToLpm => self.lpm_port.expect("lpm port known at ToLpm"),
            _ => return,
        };
        self.conn = sys.connect(self.target, port).ok();
        if self.conn.is_none() {
            self.step = Step::Dead;
        }
    }

    /// Re-attempts the current step after a `RetryAfter`.
    pub fn retry(&mut self, sys: &mut dyn Sys) -> ChanProgress {
        if self.is_terminal() {
            return ChanProgress::Failed(SysError::ConnectionClosed);
        }
        self.connect_current(sys);
        match self.step {
            Step::ToInetd | Step::ToPmd | Step::ToLpm if self.conn.is_some() => {
                ChanProgress::Pending
            }
            _ => self.fail(SysError::HostDown),
        }
    }

    fn fail(&mut self, err: SysError) -> ChanProgress {
        self.step = Step::Dead;
        ChanProgress::Failed(err)
    }

    fn bounce(&mut self) -> ChanProgress {
        if self.attempts_left == 0 {
            return self.fail(SysError::ConnectionRefused);
        }
        self.attempts_left -= 1;
        ChanProgress::RetryAfter(self.retry_delay)
    }

    /// Feeds a connection event for an owned connection.
    pub fn on_conn_event(&mut self, sys: &mut dyn Sys, ev: ConnEvent) -> ChanProgress {
        match (self.step, ev) {
            (Step::ToInetd, ConnEvent::Established) => {
                let conn = self.conn.expect("owned conn");
                if sys.send(conn, inetd::request(PMD_SERVICE)).is_err() {
                    return self.bounce();
                }
                self.step = Step::AwaitPmdPort;
                ChanProgress::Pending
            }
            (Step::ToPmd, ConnEvent::Established) => {
                let conn = self.conn.expect("owned conn");
                let msg = Msg::CreateLpm {
                    user: self.identity.user,
                };
                if sys.send(conn, msg.to_bytes()).is_err() {
                    return self.bounce();
                }
                self.step = Step::AwaitLpmAddr;
                ChanProgress::Pending
            }
            (Step::ToLpm, ConnEvent::Established) => {
                let conn = self.conn.expect("owned conn");
                let id = &self.identity;
                let hello = Msg::Hello {
                    user: id.user,
                    host: id.host.clone(),
                    is_tool: id.is_tool,
                    ccs: id.ccs.clone(),
                    epoch: id.epoch,
                    proof: id.proof,
                };
                if sys.send(conn, hello.to_bytes()).is_err() {
                    return self.bounce();
                }
                self.step = Step::AwaitAck;
                ChanProgress::Pending
            }
            (_, ConnEvent::Failed(SysError::ConnectionRefused)) => {
                // Daemon still booting: retry, like TCP SYN retransmission.
                self.bounce()
            }
            (_, ConnEvent::Failed(err)) => self.fail(err),
            (_, ConnEvent::Closed) => {
                if self.step == Step::Done {
                    ChanProgress::Pending
                } else {
                    self.fail(SysError::ConnectionClosed)
                }
            }
            _ => ChanProgress::Pending,
        }
    }

    /// Feeds a message arriving on an owned connection.
    pub fn on_message(&mut self, sys: &mut dyn Sys, data: Bytes) -> ChanProgress {
        match self.step {
            Step::AwaitPmdPort => {
                let conn = self.conn.expect("owned conn");
                match inetd::parse_reply(&data) {
                    Ok(port) => {
                        let _ = sys.close(conn);
                        self.pmd_port = Some(port);
                        self.step = Step::ToPmd;
                        self.connect_current(sys);
                        ChanProgress::Pending
                    }
                    Err(e) => self.fail(e),
                }
            }
            Step::AwaitLpmAddr => {
                let conn = self.conn.expect("owned conn");
                match Msg::from_bytes(&data) {
                    Ok(Msg::LpmAddr { port, created, .. }) => {
                        let _ = sys.close(conn);
                        self.lpm_port = Some(Port(port));
                        self.created = created;
                        sys.trace(
                            TraceCategory::Daemon,
                            format!(
                                "locator: pmd returned accept address :{port} (created={created})"
                            ),
                        );
                        self.step = Step::ToLpm;
                        self.connect_current(sys);
                        ChanProgress::Pending
                    }
                    Ok(Msg::NoLpm { .. }) => self.fail(SysError::PermissionDenied),
                    _ => self.fail(SysError::InvalidArgument),
                }
            }
            Step::AwaitAck => match Msg::from_bytes(&data) {
                Ok(Msg::HelloAck {
                    ok: true,
                    ccs,
                    epoch,
                    ..
                }) => {
                    self.step = Step::Done;
                    ChanProgress::Ready {
                        conn: self.conn.expect("owned conn"),
                        created: self.created,
                        peer_ccs: ccs,
                        peer_epoch: epoch,
                    }
                }
                Ok(Msg::HelloAck { ok: false, .. }) => self.fail(SysError::PermissionDenied),
                _ => self.fail(SysError::InvalidArgument),
            },
            _ => ChanProgress::Pending,
        }
    }
}

/// Progress of a [`PmdExchange`].
#[derive(Debug, Clone, PartialEq)]
pub enum PmdProgress {
    /// Still working.
    Pending,
    /// Transient failure; call [`PmdExchange::retry`] after this delay.
    RetryAfter(SimDuration),
    /// The pmd answered.
    Answer(Msg),
    /// Permanent failure.
    Failed(SysError),
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum PmdStep {
    ToInetd,
    AwaitPort,
    ToPmd,
    AwaitAnswer,
    Done,
    Dead,
}

/// A one-shot exchange with a (possibly remote) pmd: locate it through
/// inetd, send one message, return the answer. Used by the name-server
/// CCS policy of Section 5 ("LPMs would query the name server for a
/// CCS"), where pmd plays the name server it already is for LPM creation.
#[derive(Debug)]
pub struct PmdExchange {
    target: HostId,
    request: Msg,
    step: PmdStep,
    conn: Option<ConnId>,
    pmd_port: Option<Port>,
    attempts_left: u32,
    retry_delay: SimDuration,
}

impl PmdExchange {
    /// Starts the exchange toward `target`'s pmd.
    pub fn start(
        sys: &mut dyn Sys,
        target: HostId,
        request: Msg,
        retry_delay: SimDuration,
        attempts: u32,
    ) -> Self {
        let mut x = PmdExchange {
            target,
            request,
            step: PmdStep::ToInetd,
            conn: None,
            pmd_port: None,
            attempts_left: attempts.max(1),
            retry_delay,
        };
        x.connect_current(sys);
        x
    }

    /// Whether `conn` belongs to this exchange.
    pub fn owns(&self, conn: ConnId) -> bool {
        self.conn == Some(conn)
    }

    /// The connection currently in use.
    pub fn current_conn(&self) -> Option<ConnId> {
        self.conn
    }

    /// True once finished (successfully or not).
    pub fn is_terminal(&self) -> bool {
        matches!(self.step, PmdStep::Done | PmdStep::Dead)
    }

    fn connect_current(&mut self, sys: &mut dyn Sys) {
        let port = match self.step {
            PmdStep::ToInetd => Port::INETD,
            PmdStep::ToPmd => self.pmd_port.expect("port known"),
            _ => return,
        };
        self.conn = sys.connect(self.target, port).ok();
        if self.conn.is_none() {
            self.step = PmdStep::Dead;
        }
    }

    fn bounce(&mut self) -> PmdProgress {
        if self.attempts_left == 0 {
            self.step = PmdStep::Dead;
            return PmdProgress::Failed(SysError::ConnectionRefused);
        }
        self.attempts_left -= 1;
        PmdProgress::RetryAfter(self.retry_delay)
    }

    /// Re-attempts the current step.
    pub fn retry(&mut self, sys: &mut dyn Sys) -> PmdProgress {
        if self.is_terminal() {
            return PmdProgress::Failed(SysError::ConnectionClosed);
        }
        self.connect_current(sys);
        if self.conn.is_some() {
            PmdProgress::Pending
        } else {
            self.step = PmdStep::Dead;
            PmdProgress::Failed(SysError::HostDown)
        }
    }

    /// Feeds a connection event for an owned connection.
    pub fn on_conn_event(&mut self, sys: &mut dyn Sys, ev: ConnEvent) -> PmdProgress {
        match (self.step, ev) {
            (PmdStep::ToInetd, ConnEvent::Established) => {
                let conn = self.conn.expect("owned");
                if sys.send(conn, inetd::request(PMD_SERVICE)).is_err() {
                    return self.bounce();
                }
                self.step = PmdStep::AwaitPort;
                PmdProgress::Pending
            }
            (PmdStep::ToPmd, ConnEvent::Established) => {
                let conn = self.conn.expect("owned");
                if sys.send(conn, self.request.to_bytes()).is_err() {
                    return self.bounce();
                }
                self.step = PmdStep::AwaitAnswer;
                PmdProgress::Pending
            }
            (_, ConnEvent::Failed(SysError::ConnectionRefused)) => self.bounce(),
            (_, ConnEvent::Failed(err)) => {
                self.step = PmdStep::Dead;
                PmdProgress::Failed(err)
            }
            (_, ConnEvent::Closed) if self.step != PmdStep::Done => {
                self.step = PmdStep::Dead;
                PmdProgress::Failed(SysError::ConnectionClosed)
            }
            _ => PmdProgress::Pending,
        }
    }

    /// Feeds a message arriving on an owned connection.
    pub fn on_message(&mut self, sys: &mut dyn Sys, data: Bytes) -> PmdProgress {
        match self.step {
            PmdStep::AwaitPort => match inetd::parse_reply(&data) {
                Ok(port) => {
                    let conn = self.conn.expect("owned");
                    let _ = sys.close(conn);
                    self.pmd_port = Some(port);
                    self.step = PmdStep::ToPmd;
                    self.connect_current(sys);
                    PmdProgress::Pending
                }
                Err(e) => {
                    self.step = PmdStep::Dead;
                    PmdProgress::Failed(e)
                }
            },
            PmdStep::AwaitAnswer => match Msg::from_bytes(&data) {
                Ok(answer) => {
                    let conn = self.conn.expect("owned");
                    let _ = sys.close(conn);
                    self.step = PmdStep::Done;
                    PmdProgress::Answer(answer)
                }
                Err(_) => {
                    self.step = PmdStep::Dead;
                    PmdProgress::Failed(SysError::InvalidArgument)
                }
            },
            _ => PmdProgress::Pending,
        }
    }
}

#[cfg(test)]
mod tests {
    //! The channel is exercised end-to-end in the LPM/harness integration
    //! tests; here we check the pure state transitions that need no world.
    use super::*;

    fn identity() -> HelloIdentity {
        HelloIdentity {
            user: 100,
            host: "a".into(),
            is_tool: true,
            ccs: "a".into(),
            epoch: 0,
            proof: 1,
        }
    }

    #[test]
    fn route_cache_learns_and_counts() {
        let mut c = RouteCache::new(8);
        let mut route = Route::from_origin("here");
        route.push("mid");
        route.push("far");
        c.learn(&route, "here");
        assert_eq!(c.lookup("far"), Some("mid"));
        assert_eq!(c.lookup("nowhere"), None);
        assert_eq!(c.counters(), (1, 1));
        // Peeking leaves the counters alone.
        assert_eq!(c.get("far"), Some("mid"));
        assert_eq!(c.counters(), (1, 1));
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.counters(), (0, 0));
    }

    #[test]
    fn route_cache_evicts_dest_and_via() {
        let mut c = RouteCache::new(8);
        // here → mid → {far, farther}; here → alt → elsewhere.
        let mut r1 = Route::from_origin("here");
        r1.push("mid");
        r1.push("far");
        r1.push("farther");
        c.learn(&r1, "here");
        let mut r2 = Route::from_origin("here");
        r2.push("alt");
        r2.push("elsewhere");
        c.learn(&r2, "here");
        assert_eq!(c.len(), 3);
        // mid crashed: both entries routed via it go; the other stays.
        assert_eq!(c.evict_via("mid"), 2);
        assert!(!c.contains_key("far"));
        assert!(!c.contains_key("farther"));
        assert_eq!(c.get("elsewhere"), Some("alt"));
        // Evicting a destination host drops its entry too.
        assert_eq!(c.evict_via("elsewhere"), 1);
        assert!(c.is_empty());
        assert_eq!(c.evict_via("nowhere"), 0);
    }

    #[test]
    fn route_cache_caps_learning() {
        let mut c = RouteCache::new(2);
        for dest in ["d1", "d2", "d3"] {
            let mut route = Route::from_origin("here");
            route.push("mid");
            route.push(dest);
            c.learn(&route, "here");
        }
        assert_eq!(c.len(), 2, "third destination rejected at capacity");
        assert!(c.contains_key("d1"));
        assert!(c.contains_key("d2"));
        assert!(!c.contains_key("d3"));
        // Hosts already cached still refresh-no-op past the cap.
        let mut again = Route::from_origin("here");
        again.push("alt");
        again.push("d1");
        c.learn(&again, "here");
        assert_eq!(c.get("d1"), Some("mid"), "first route wins");
    }

    #[test]
    fn bounce_counts_down_then_fails() {
        let mut chan = LpmChannel {
            target: HostId(0),
            identity: identity(),
            step: Step::ToInetd,
            conn: Some(ConnId(1)),
            pmd_port: None,
            lpm_port: None,
            created: false,
            attempts_left: 2,
            retry_delay: SimDuration::from_millis(20),
        };
        assert_eq!(
            chan.bounce(),
            ChanProgress::RetryAfter(SimDuration::from_millis(20))
        );
        assert_eq!(
            chan.bounce(),
            ChanProgress::RetryAfter(SimDuration::from_millis(20))
        );
        assert_eq!(
            chan.bounce(),
            ChanProgress::Failed(SysError::ConnectionRefused)
        );
        assert!(chan.is_terminal());
    }

    #[test]
    fn ownership_is_per_conn() {
        let chan = LpmChannel {
            target: HostId(3),
            identity: identity(),
            step: Step::ToInetd,
            conn: Some(ConnId(9)),
            pmd_port: None,
            lpm_port: None,
            created: false,
            attempts_left: 1,
            retry_delay: SimDuration::from_millis(20),
        };
        assert!(chan.owns(ConnId(9)));
        assert!(!chan.owns(ConnId(8)));
        assert_eq!(chan.target(), HostId(3));
    }
}
