//! The network user directory.
//!
//! Models the administrative assumptions of Section 4: "It is the
//! responsibility of network system administrators to have consistent
//! password files across machines that trust each other." Every host sees
//! the same directory: credentials (the password file), the `.recovery`
//! host list from each user's home directory, and the user's PPM
//! configuration.

use std::collections::HashMap;
use std::sync::Arc;

use ppm_runtime::ids::Uid;

use crate::auth::UserCred;
use crate::config::PpmConfig;

/// Per-user account data replicated on every host.
#[derive(Debug, Clone)]
pub struct UserEntry {
    /// Credentials.
    pub cred: UserCred,
    /// The `.recovery` file: hosts in decreasing CCS priority order.
    pub recovery: Vec<String>,
    /// The user's PPM configuration.
    pub config: PpmConfig,
}

/// The directory shared by all pmds and tools (single-threaded world, so
/// an `Arc` clone per daemon is the sharing mechanism).
#[derive(Debug, Default)]
pub struct UserDirectory {
    users: HashMap<u32, UserEntry>,
}

impl UserDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        UserDirectory::default()
    }

    /// Adds (or replaces) a user.
    pub fn insert(&mut self, entry: UserEntry) {
        self.users.insert(entry.cred.uid.0, entry);
    }

    /// Looks a user up.
    pub fn get(&self, uid: Uid) -> Option<&UserEntry> {
        self.users.get(&uid.0)
    }

    /// Number of accounts.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when no accounts exist.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Wraps the directory for sharing with daemon factories.
    pub fn into_shared(self) -> Arc<UserDirectory> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut d = UserDirectory::new();
        assert!(d.is_empty());
        d.insert(UserEntry {
            cred: UserCred::new(Uid(100), 7),
            recovery: vec!["home".into()],
            config: PpmConfig::default(),
        });
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(Uid(100)).unwrap().recovery, vec!["home".to_string()]);
        assert!(d.get(Uid(101)).is_none());
    }

    #[test]
    fn insert_replaces() {
        let mut d = UserDirectory::new();
        for secret in [1u64, 2] {
            d.insert(UserEntry {
                cred: UserCred::new(Uid(100), secret),
                recovery: vec![],
                config: PpmConfig::default(),
            });
        }
        assert_eq!(d.len(), 1);
        assert_eq!(d.get(Uid(100)).unwrap().cred.secret, 2);
    }
}
