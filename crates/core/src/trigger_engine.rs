//! Evaluation of history-dependent triggers.
//!
//! The LPM feeds every kernel/history event through the engine; matches
//! yield [`Firing`]s whose actions the LPM then executes (deliver a
//! signal, note history, kill a subtree). This is the "history dependent
//! events can be set by users to trigger process state changes" mechanism.

use ppm_proto::triggers::{TriggerAction, TriggerSpec};

/// One event as seen by the engine.
#[derive(Debug, Clone, Copy)]
pub struct TriggerEvent<'a> {
    /// Event kind ("exit", "stop", "fork", "exec", "signal", ...).
    pub kind: &'a str,
    /// Local pid the event concerns.
    pub pid: u32,
    /// Command of that process, if known.
    pub command: &'a str,
    /// CPU the process has consumed so far (µs).
    pub cpu_us: u64,
}

/// A matched trigger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Firing {
    /// Which trigger fired.
    pub trigger_id: u32,
    /// The action to execute.
    pub action: TriggerAction,
}

/// The per-LPM trigger store and matcher.
#[derive(Debug, Clone, Default)]
pub struct TriggerEngine {
    triggers: Vec<TriggerSpec>,
    fired_total: u64,
}

impl TriggerEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        TriggerEngine::default()
    }

    /// Registers a trigger; an existing trigger with the same id is
    /// replaced.
    pub fn add(&mut self, spec: TriggerSpec) {
        self.remove(spec.id);
        self.triggers.push(spec);
        self.triggers.sort_by_key(|t| t.id);
    }

    /// Removes a trigger by id. Returns whether it existed.
    pub fn remove(&mut self, id: u32) -> bool {
        let before = self.triggers.len();
        self.triggers.retain(|t| t.id != id);
        before != self.triggers.len()
    }

    /// Registered triggers, id order.
    pub fn list(&self) -> &[TriggerSpec] {
        &self.triggers
    }

    /// Number of registered triggers.
    pub fn len(&self) -> usize {
        self.triggers.len()
    }

    /// True when no triggers are registered.
    pub fn is_empty(&self) -> bool {
        self.triggers.is_empty()
    }

    /// Total firings over the engine lifetime.
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// Feeds one event through; returns the actions to execute, in
    /// trigger-id order. One-shot triggers are removed after matching.
    pub fn on_event(&mut self, ev: TriggerEvent<'_>) -> Vec<Firing> {
        let mut firings = Vec::new();
        let mut spent = Vec::new();
        for t in &self.triggers {
            let p = &t.pattern;
            let kind_ok = p.kind.is_empty() || p.kind == ev.kind;
            let pid_ok = p.pid.is_none_or(|pid| pid == ev.pid);
            let cmd_ok = p
                .command_prefix
                .as_deref()
                .is_none_or(|pre| ev.command.starts_with(pre));
            let cpu_ok = p.min_cpu_us.is_none_or(|min| ev.cpu_us >= min);
            if kind_ok && pid_ok && cmd_ok && cpu_ok {
                firings.push(Firing {
                    trigger_id: t.id,
                    action: t.action.clone(),
                });
                if t.once {
                    spent.push(t.id);
                }
            }
        }
        for id in spent {
            self.remove(id);
        }
        self.fired_total += firings.len() as u64;
        firings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_proto::triggers::EventPattern;
    use ppm_proto::types::Gpid;

    fn spec(id: u32, pattern: EventPattern, once: bool) -> TriggerSpec {
        TriggerSpec {
            id,
            pattern,
            action: TriggerAction::Notify {
                note: format!("t{id}"),
            },
            once,
        }
    }

    fn ev<'a>(kind: &'a str, pid: u32, command: &'a str, cpu_us: u64) -> TriggerEvent<'a> {
        TriggerEvent {
            kind,
            pid,
            command,
            cpu_us,
        }
    }

    #[test]
    fn kind_and_pid_matching() {
        let mut e = TriggerEngine::new();
        e.add(spec(1, EventPattern::kind("exit").with_pid(9), false));
        assert!(e.on_event(ev("exit", 8, "cc", 0)).is_empty());
        assert!(e.on_event(ev("stop", 9, "cc", 0)).is_empty());
        let f = e.on_event(ev("exit", 9, "cc", 0));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].trigger_id, 1);
        assert_eq!(e.fired_total(), 1);
    }

    #[test]
    fn empty_kind_matches_any() {
        let mut e = TriggerEngine::new();
        e.add(spec(1, EventPattern::default(), false));
        assert_eq!(e.on_event(ev("fork", 1, "x", 0)).len(), 1);
        assert_eq!(e.on_event(ev("exit", 2, "y", 0)).len(), 1);
    }

    #[test]
    fn command_prefix_and_cpu_threshold() {
        let mut e = TriggerEngine::new();
        e.add(spec(
            1,
            EventPattern::kind("")
                .with_command_prefix("troff")
                .with_min_cpu_us(1_000_000),
            false,
        ));
        assert!(e.on_event(ev("exec", 1, "cc", 2_000_000)).is_empty());
        assert!(e.on_event(ev("exec", 1, "troff", 10)).is_empty());
        assert_eq!(e.on_event(ev("exec", 1, "troff-out", 1_500_000)).len(), 1);
    }

    #[test]
    fn once_triggers_are_consumed() {
        let mut e = TriggerEngine::new();
        e.add(spec(5, EventPattern::kind("exit"), true));
        assert_eq!(e.on_event(ev("exit", 1, "x", 0)).len(), 1);
        assert!(e.is_empty());
        assert!(e.on_event(ev("exit", 1, "x", 0)).is_empty());
    }

    #[test]
    fn add_replaces_same_id_and_list_is_sorted() {
        let mut e = TriggerEngine::new();
        e.add(spec(2, EventPattern::kind("a"), false));
        e.add(spec(1, EventPattern::kind("b"), false));
        e.add(spec(2, EventPattern::kind("c"), false));
        assert_eq!(e.len(), 2);
        assert_eq!(e.list()[0].id, 1);
        assert_eq!(e.list()[1].pattern.kind, "c");
        assert!(e.remove(1));
        assert!(!e.remove(1));
    }

    #[test]
    fn multiple_triggers_fire_in_id_order() {
        let mut e = TriggerEngine::new();
        e.add(spec(3, EventPattern::kind("exit"), false));
        e.add(spec(1, EventPattern::kind("exit"), false));
        e.add(TriggerSpec {
            id: 2,
            pattern: EventPattern::kind("exit"),
            action: TriggerAction::Signal {
                target: Gpid::new("a", 9),
                signal: 9,
            },
            once: false,
        });
        let f = e.on_event(ev("exit", 1, "x", 0));
        let ids: Vec<u32> = f.iter().map(|f| f.trigger_id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }
}
