//! LPM history: the event log and exited-process statistics.
//!
//! "The LPMs gather and preserve local information about user process
//! activities, accept parameters that determine the amount of process
//! events recorded" (Section 2). History is the substrate for the
//! resource-statistics tool and for history-dependent triggers.

use std::collections::VecDeque;

use ppm_proto::types::{Gpid, HistoryRecord, RusageRecord};
use ppm_runtime::time::SimTime;

/// Bounded event log plus exited-process statistics.
///
/// # Examples
///
/// ```
/// use ppm_core::history::History;
/// use ppm_proto::types::Gpid;
/// use ppm_runtime::time::SimTime;
///
/// let mut h = History::new(100, 10);
/// h.record(SimTime::from_millis(5), Gpid::new("a", 9), "exec", "troff");
/// h.record(SimTime::from_millis(9), Gpid::new("a", 9), "exit", "code 0");
/// let events = h.query(6_000, 100); // at or after 6 ms
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].kind, "exit");
/// ```
#[derive(Debug, Clone)]
pub struct History {
    events: VecDeque<HistoryRecord>,
    exited: VecDeque<RusageRecord>,
    events_cap: usize,
    exited_cap: usize,
    dropped: u64,
}

impl History {
    /// Creates an empty history with the given capacities.
    pub fn new(events_cap: usize, exited_cap: usize) -> Self {
        History {
            events: VecDeque::new(),
            exited: VecDeque::new(),
            events_cap: events_cap.max(1),
            exited_cap: exited_cap.max(1),
            dropped: 0,
        }
    }

    /// Appends an event.
    pub fn record(
        &mut self,
        at: SimTime,
        gpid: Gpid,
        kind: impl Into<String>,
        detail: impl Into<String>,
    ) {
        self.events.push_back(HistoryRecord {
            at_us: at.as_micros(),
            gpid,
            kind: kind.into(),
            detail: detail.into(),
        });
        while self.events.len() > self.events_cap {
            self.events.pop_front();
            self.dropped += 1;
        }
    }

    /// Appends an exited-process statistics record.
    pub fn record_exit(&mut self, record: RusageRecord) {
        self.exited.push_back(record);
        while self.exited.len() > self.exited_cap {
            self.exited.pop_front();
        }
    }

    /// Events at or after `since_us`, oldest first, at most `max`.
    pub fn query(&self, since_us: u64, max: usize) -> Vec<HistoryRecord> {
        self.events
            .iter()
            .filter(|e| e.at_us >= since_us)
            .take(max)
            .cloned()
            .collect()
    }

    /// Statistics of exited processes, oldest first; `pid` filters.
    pub fn exited(&self, pid: Option<u32>) -> Vec<RusageRecord> {
        self.exited
            .iter()
            .filter(|r| pid.is_none_or(|p| r.gpid.pid == p))
            .cloned()
            .collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The most recent event, if any.
    pub fn last(&self) -> Option<&HistoryRecord> {
        self.events.back()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(h: &mut History, t: u64, pid: u32, kind: &str) {
        h.record(SimTime::from_micros(t), Gpid::new("a", pid), kind, "");
    }

    #[test]
    fn records_and_queries_by_time() {
        let mut h = History::new(100, 10);
        rec(&mut h, 10, 1, "fork");
        rec(&mut h, 20, 1, "exec");
        rec(&mut h, 30, 1, "exit");
        assert_eq!(h.len(), 3);
        let q = h.query(20, 100);
        assert_eq!(q.len(), 2);
        assert_eq!(q[0].kind, "exec");
        assert_eq!(h.query(0, 1).len(), 1);
        assert_eq!(h.last().unwrap().kind, "exit");
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut h = History::new(2, 10);
        rec(&mut h, 1, 1, "a");
        rec(&mut h, 2, 1, "b");
        rec(&mut h, 3, 1, "c");
        assert_eq!(h.len(), 2);
        assert_eq!(h.dropped(), 1);
        assert_eq!(h.query(0, 10)[0].kind, "b");
    }

    #[test]
    fn exited_records_filter_by_pid() {
        let mut h = History::new(10, 10);
        for pid in [5u32, 6, 5] {
            h.record_exit(RusageRecord {
                gpid: Gpid::new("a", pid),
                command: "x".into(),
                exited_us: 0,
                status: 0,
                cpu_us: 1,
                msgs: 0,
                bytes: 0,
                files: 0,
                forks: 0,
            });
        }
        assert_eq!(h.exited(None).len(), 3);
        assert_eq!(h.exited(Some(5)).len(), 2);
        assert_eq!(h.exited(Some(9)).len(), 0);
    }

    #[test]
    fn exited_capacity_bounded() {
        let mut h = History::new(10, 2);
        for i in 0..5u32 {
            h.record_exit(RusageRecord {
                gpid: Gpid::new("a", i),
                command: "x".into(),
                exited_us: i as u64,
                status: 0,
                cpu_us: 0,
                msgs: 0,
                bytes: 0,
                files: 0,
                forks: 0,
            });
        }
        let left = h.exited(None);
        assert_eq!(left.len(), 2);
        assert_eq!(left[0].gpid.pid, 3);
    }
}
