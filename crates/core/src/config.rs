//! PPM tunables.

use ppm_runtime::events::TraceFlags;
use ppm_runtime::time::SimDuration;

/// Constants governing LPM behaviour. CPU costs are nominal values for an
//  idle VAX 11/780 and are scaled by host class and load at run time.
///
/// The cost constants are calibrated so the regenerated Table 2 lands on
/// the paper's numbers (77 ms within-host create; 30 / 199 / 210 ms
/// stop-or-kill at 0 / 1 / 2 hops) — see `ppm-bench`.
#[derive(Debug, Clone, PartialEq)]
pub struct PpmConfig {
    /// Dispatcher cost to pick up and classify one incoming request.
    pub dispatch_cost: SimDuration,
    /// Cost of a local process-control action (beyond the kill syscall).
    pub control_cost: SimDuration,
    /// Cost to gather the local snapshot slice (base).
    pub snapshot_base_cost: SimDuration,
    /// Additional snapshot cost per reported process.
    pub snapshot_per_proc_cost: SimDuration,
    /// Bookkeeping cost of creating a process on behalf of a request.
    pub spawn_bookkeeping_cost: SimDuration,
    /// Cost of other local operations (history, rusage, files, triggers).
    pub misc_op_cost: SimDuration,
    /// Cost to merge one broadcast part at the originator.
    pub merge_cost: SimDuration,
    /// Forking a fresh handler process (dispatcher → handler hand-off).
    pub handler_fork_cost: SimDuration,
    /// Handing a request to an already-idle handler.
    pub handler_reuse_cost: SimDuration,
    /// Idle handlers are reaped after this long.
    pub handler_idle_ttl: SimDuration,
    /// Maximum resident handlers per LPM.
    pub handler_max: usize,
    /// Reuse idle handlers instead of forking per request (the paper's
    /// optimization; disabled only for ablation).
    pub handler_reuse: bool,

    /// LPM lingers this long after its last managed process and tool
    /// disappear ("LPMs have a time-to-live period").
    pub lpm_ttl: SimDuration,
    /// An orphaned LPM (no CCS contact) kills the user's local processes
    /// and exits after this long ("a time-to-die interval exists").
    pub time_to_die: SimDuration,
    /// Low-frequency probe interval toward higher-priority recovery hosts.
    pub probe_interval: SimDuration,
    /// Delay between reconnection attempts during recovery.
    pub reconnect_interval: SimDuration,

    /// Retention window for seen broadcast stamps ("the appropriate time
    /// window for retaining old broadcast requests is a configuration
    /// parameter").
    pub bcast_window: SimDuration,
    /// Give up waiting for broadcast completion after this long.
    pub bcast_timeout: SimDuration,
    /// Relay budget for directed requests.
    pub max_hops: u8,
    /// Give up on one attempt of a directed request after this long.
    pub req_timeout: SimDuration,
    /// Total send attempts per directed request at its origin (1 = no
    /// retry); retries reuse the same correlation id so receivers can
    /// deduplicate.
    pub req_attempts: u8,
    /// Backoff before the first retry; doubles per attempt.
    pub req_backoff: SimDuration,
    /// Ceiling on the doubling retry backoff. Without it a
    /// long-partitioned origin's backoff doubles without bound and the
    /// request ends up armed hours into simulated time.
    pub req_backoff_max: SimDuration,
    /// End-to-end deadline stamped on origin requests; relays refuse
    /// requests whose propagated deadline has passed.
    pub req_deadline: SimDuration,
    /// How much each relay hop shaves off the propagated deadline,
    /// accounting for the return path the reply still has to travel.
    pub deadline_decay: SimDuration,

    /// Retry interval while connecting to a booting daemon/LPM.
    pub connect_retry: SimDuration,
    /// Maximum connect attempts before reporting failure.
    pub connect_attempts: u32,

    /// Housekeeping timer period (TTL checks, window GC, handler reaping).
    pub housekeeping_interval: SimDuration,

    /// How long exited processes stay visible in snapshots after their
    /// whole local subtree has died.
    pub dead_retention: SimDuration,
    /// History ring capacity.
    pub history_cap: usize,
    /// Exited-process statistics retention.
    pub rusage_cap: usize,
    /// Default tracing granularity applied when adopting.
    pub default_trace_flags: TraceFlags,
    /// Learn routes from broadcast replies ("allows quick routing of
    /// messages affecting processes in topologically distant hosts").
    pub route_learning: bool,
    /// Splice broadcast replies in-network: a relay coalesces the parts
    /// from its subtree into one aggregate frame before forwarding
    /// upstream (the paper's reply-combining). When off, the relay
    /// forwards each collected part as its own frame — leaf-direct-style
    /// upstream traffic, the baseline of the congestion exhibit.
    pub reply_splicing: bool,
    /// How the CCS is located during recovery.
    pub recovery_policy: RecoveryPolicy,
}

impl Default for PpmConfig {
    fn default() -> Self {
        PpmConfig {
            dispatch_cost: SimDuration::from_micros(3_200),
            control_cost: SimDuration::from_micros(24_700),
            snapshot_base_cost: SimDuration::from_micros(11_000),
            snapshot_per_proc_cost: SimDuration::from_micros(800),
            spawn_bookkeeping_cost: SimDuration::from_micros(23_700),
            misc_op_cost: SimDuration::from_micros(8_000),
            merge_cost: SimDuration::from_micros(21_000),
            handler_fork_cost: SimDuration::from_micros(77_500),
            handler_reuse_cost: SimDuration::from_micros(3_500),
            handler_idle_ttl: SimDuration::from_secs(20),
            handler_max: 16,
            handler_reuse: true,

            lpm_ttl: SimDuration::from_secs(300),
            time_to_die: SimDuration::from_secs(600),
            probe_interval: SimDuration::from_secs(10),
            reconnect_interval: SimDuration::from_secs(2),

            bcast_window: SimDuration::from_secs(60),
            bcast_timeout: SimDuration::from_secs(10),
            max_hops: 8,
            req_timeout: SimDuration::from_secs(10),
            req_attempts: 3,
            req_backoff: SimDuration::from_millis(250),
            req_backoff_max: SimDuration::from_secs(10),
            req_deadline: SimDuration::from_secs(45),
            deadline_decay: SimDuration::from_millis(20),

            connect_retry: SimDuration::from_micros(20_000),
            connect_attempts: 30,

            housekeeping_interval: SimDuration::from_secs(1),

            dead_retention: SimDuration::from_secs(600),
            history_cap: 4096,
            rusage_cap: 1024,
            default_trace_flags: TraceFlags::ALL,
            route_learning: true,
            reply_splicing: true,
            recovery_policy: RecoveryPolicy::RecoveryFile,
        }
    }
}

impl PpmConfig {
    /// A configuration with short recovery timers, for failure tests that
    /// should converge in simulated seconds rather than minutes.
    pub fn fast_recovery() -> Self {
        PpmConfig {
            lpm_ttl: SimDuration::from_secs(30),
            time_to_die: SimDuration::from_secs(20),
            probe_interval: SimDuration::from_secs(2),
            reconnect_interval: SimDuration::from_millis(500),
            req_timeout: SimDuration::from_secs(3),
            req_backoff: SimDuration::from_millis(100),
            req_backoff_max: SimDuration::from_secs(2),
            req_deadline: SimDuration::from_secs(10),
            bcast_timeout: SimDuration::from_secs(3),
            ..Default::default()
        }
    }
}

/// How LPMs locate their crash coordinator site.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Walk the user's `.recovery` host list (the paper's implementation).
    #[default]
    RecoveryFile,
    /// Query the pmd of a designated name-server host — Section 5's
    /// alternative: "LPMs would query the name server for a CCS. The
    /// mechanism based on .recovery files would not be needed."
    NameServer {
        /// The administrator-designated name-server host.
        host: String,
    },
}

/// Well-known port of the process manager daemon.
pub const PMD_PORT: ppm_runtime::ids::Port = ppm_runtime::ids::Port(3);

/// Service name under which pmd is registered with inetd.
pub const PMD_SERVICE: &str = "pmd";

/// Base of the per-user LPM accept-port range: an LPM for uid `u` accepts
/// on `LPM_PORT_BASE + u`.
pub const LPM_PORT_BASE: u16 = 1000;

/// The accept port of a user's LPM on any host.
pub fn lpm_port(uid: ppm_runtime::ids::Uid) -> ppm_runtime::ids::Port {
    ppm_runtime::ids::Port(LPM_PORT_BASE.wrapping_add(uid.0 as u16))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_runtime::ids::Uid;

    #[test]
    fn default_costs_are_ordered_sensibly() {
        let c = PpmConfig::default();
        assert!(c.handler_fork_cost > c.handler_reuse_cost);
        assert!(c.dispatch_cost < c.control_cost);
        assert!(c.time_to_die > c.probe_interval);
        assert!(c.handler_max > 0);
    }

    #[test]
    fn fast_recovery_shrinks_timers_only() {
        let fast = PpmConfig::fast_recovery();
        let slow = PpmConfig::default();
        assert!(fast.time_to_die < slow.time_to_die);
        assert_eq!(fast.handler_fork_cost, slow.handler_fork_cost);
    }

    #[test]
    fn retry_budget_fits_inside_the_deadline() {
        for c in [PpmConfig::default(), PpmConfig::fast_recovery()] {
            assert!(c.req_attempts >= 1);
            // Worst case: every attempt times out, plus the doubling
            // backoffs between them, must fit under the deadline so the
            // final verdict is Timeout, not a premature DeadlineExceeded.
            let retries = u64::from(c.req_attempts) - 1;
            let attempts_us = u64::from(c.req_attempts) * c.req_timeout.as_micros();
            let backoff_us: u64 = (0..retries)
                .map(|i| (c.req_backoff.as_micros() << i).min(c.req_backoff_max.as_micros()))
                .sum();
            assert!(attempts_us + backoff_us <= c.req_deadline.as_micros());
            assert!(c.deadline_decay < c.req_timeout);
            assert!(c.req_backoff_max >= c.req_backoff);
        }
    }

    #[test]
    fn lpm_ports_are_per_user() {
        assert_ne!(lpm_port(Uid(100)), lpm_port(Uid(101)));
        assert_eq!(lpm_port(Uid(100)).0, 1100);
    }
}
