//! PPM observability: the LPM's metric set, wire conversion, and the
//! exporters behind `ppm-sim --metrics` / `--spans`.
//!
//! Every LPM owns a [`ppm_runtime::obs::Registry`] behind a shared handle
//! ([`LpmObs`]) and registers it with the world's observability hub at
//! start, so a harness samples every
//! registry at end of run without generating simulated traffic. The same
//! registry is what [`ppm_proto::msg::Op::Metrics`] snapshots remotely:
//! [`rows`] converts samples into wire [`MetricRow`]s.
//!
//! All output is keyed to the deterministic simulation clock, so a
//! same-seed run renders byte-identical metrics and span files (the CI
//! determinism gate diffs them).

use std::fmt::Write as _;

use ppm_proto::types::MetricRow;
use ppm_runtime::obs::SharedRegistry;
use ppm_runtime::obs::{CounterId, HistId, MetricSample, MetricValue, SpanEvent, SpanPhase};

/// The LPM's registered metric set: ids into its shared registry.
///
/// Hot-path updates go through [`LpmObs::with`], a relaxed atomic add
/// into the sealed registry — no lock on either backend.
pub(crate) struct LpmObs {
    pub registry: SharedRegistry,
    /// Requests entering the pipeline.
    pub requests: CounterId,
    /// Origin-side transport retries.
    pub retries: CounterId,
    /// Duplicate directed-request deliveries absorbed by the dedup window.
    pub dups_suppressed: CounterId,
    /// Sibling requests refused because their deadline decayed to nothing.
    pub deadline_refused: CounterId,
    /// Backoff delay (µs) at each scheduled retry — depth of the doubling.
    pub backoff_us: HistId,
    /// Relay-side aggregate part frames spliced upstream.
    pub parts_spliced: CounterId,
    /// Broadcast waves that completed with missing hosts.
    pub partial_flushes: CounterId,
    /// Hosts reported missing across all waves.
    pub missing_hosts: CounterId,
    /// Times this LPM entered orphanhood.
    pub orphan_entries: CounterId,
    /// CCS elections this LPM won (became or adopted the role).
    pub ccs_elections: CounterId,
    /// Round-trip time (µs) of recovery probes.
    pub probe_rtt_us: HistId,
    /// Times this LPM started as a crash respawn (1 for a respawned LPM).
    pub restarts: CounterId,
    /// Surviving same-user processes re-adopted after a respawn.
    pub readopted: CounterId,
    /// Mean-time-to-recover (µs): crash stamp to respawned-LPM start.
    pub mttr_us: HistId,
}

impl LpmObs {
    pub(crate) fn new() -> Self {
        let mut r = ppm_runtime::obs::Registry::new();
        let requests = r.counter("rpc.requests");
        let retries = r.counter("rpc.retries");
        let dups_suppressed = r.counter("rpc.dups_suppressed");
        let deadline_refused = r.counter("rpc.deadline_refused");
        let backoff_us = r.hist("rpc.backoff_us");
        let parts_spliced = r.counter("bcast.parts_spliced");
        let partial_flushes = r.counter("bcast.partial_flushes");
        let missing_hosts = r.counter("bcast.missing_hosts");
        let orphan_entries = r.counter("recov.orphan_entries");
        let ccs_elections = r.counter("recov.ccs_elections");
        let probe_rtt_us = r.hist("recov.probe_rtt_us");
        let restarts = r.counter("lpm.restarts");
        let readopted = r.counter("lpm.readopted");
        let mttr_us = r.hist("lpm.mttr_us");
        LpmObs {
            registry: r.into_shared(),
            requests,
            retries,
            dups_suppressed,
            deadline_refused,
            backoff_us,
            parts_spliced,
            partial_flushes,
            missing_hosts,
            orphan_entries,
            ccs_elections,
            probe_rtt_us,
            restarts,
            readopted,
            mttr_us,
        }
    }

    /// Runs `f` against the sealed registry (lock-free atomic updates).
    #[inline]
    pub(crate) fn with<T>(&self, f: impl FnOnce(&ppm_runtime::obs::Registry) -> T) -> T {
        f(&self.registry)
    }

    /// Samples the registry into wire rows (name-sorted, deterministic).
    pub(crate) fn rows(&self) -> Vec<MetricRow> {
        rows(&self.registry.snapshot())
    }
}

/// Converts registry samples into wire [`MetricRow`]s. Histogram buckets
/// are trimmed of trailing zeros so idle histograms cost a few bytes.
pub fn rows(samples: &[MetricSample]) -> Vec<MetricRow> {
    samples
        .iter()
        .map(|s| match &s.value {
            MetricValue::Counter(v) => MetricRow {
                name: s.name.to_string(),
                kind: 0,
                value: *v as i64,
                sum: 0,
                buckets: Vec::new(),
            },
            MetricValue::Gauge(v) => MetricRow {
                name: s.name.to_string(),
                kind: 1,
                value: *v,
                sum: 0,
                buckets: Vec::new(),
            },
            MetricValue::Hist(h) => {
                let mut buckets: Vec<u64> = h.buckets.to_vec();
                while buckets.last() == Some(&0) {
                    buckets.pop();
                }
                MetricRow {
                    name: s.name.to_string(),
                    kind: 2,
                    value: h.count as i64,
                    sum: h.sum,
                    buckets,
                }
            }
        })
        .collect()
}

/// Renders labelled metric sections as stable text, one metric per line:
/// `label name value` for counters/gauges,
/// `label name count=N sum=S buckets=[..]` for histograms. Sections
/// render in the order given; callers pass them label-sorted.
pub fn render_metrics(sections: &[(String, Vec<MetricRow>)]) -> String {
    let mut out = String::new();
    for (label, rows) in sections {
        for row in rows {
            match row.kind {
                2 => {
                    let _ = write!(
                        out,
                        "{label} {} count={} sum={}",
                        row.name, row.value, row.sum
                    );
                    let _ = write!(out, " buckets=[");
                    for (i, b) in row.buckets.iter().enumerate() {
                        if i > 0 {
                            out.push(' ');
                        }
                        let _ = write!(out, "{b}");
                    }
                    out.push_str("]\n");
                }
                _ => {
                    let _ = writeln!(out, "{label} {} {}", row.name, row.value);
                }
            }
        }
    }
    out
}

/// Renders span events as JSONL, one record per line, in emission order.
/// `host_names` maps `HostId` indices to names.
pub fn spans_jsonl(events: &[SpanEvent], host_names: &[String]) -> String {
    let mut out = String::new();
    for ev in events {
        let host = ev
            .host
            .and_then(|h| host_names.get(h.0 as usize))
            .map(String::as_str)
            .unwrap_or("-");
        let phase = match ev.phase {
            SpanPhase::Begin => "B",
            SpanPhase::End => "E",
        };
        let _ = writeln!(
            out,
            "{{\"at_us\":{},\"host\":\"{}\",\"name\":\"{}\",\"corr\":\"{}\",\"phase\":\"{}\"}}",
            ev.at.as_micros(),
            json_escape(host),
            json_escape(ev.name),
            json_escape(&ev.corr),
            phase
        );
    }
    out
}

/// Renders span events as a Chrome `trace_event` JSON document (async
/// begin/end events keyed by the correlation id; one pid per host), ready
/// for `chrome://tracing` / Perfetto.
pub fn spans_chrome(events: &[SpanEvent], host_names: &[String]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        let pid = ev.host.map(|h| h.0 as u64 + 1).unwrap_or(0);
        let host = ev
            .host
            .and_then(|h| host_names.get(h.0 as usize))
            .map(String::as_str)
            .unwrap_or("-");
        let ph = match ev.phase {
            SpanPhase::Begin => "b",
            SpanPhase::End => "e",
        };
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"ppm\",\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":1,\
             \"id\":\"{}\",\"args\":{{\"host\":\"{}\"}}}}",
            json_escape(ev.name),
            ph,
            ev.at.as_micros(),
            pid,
            json_escape(&ev.corr),
            json_escape(host)
        );
    }
    out.push_str("]}");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_runtime::ids::HostId;
    use ppm_runtime::time::SimTime;

    #[test]
    fn lpm_obs_samples_to_trimmed_rows() {
        let obs = LpmObs::new();
        obs.with(|r| {
            let _ = r;
        });
        obs.registry.inc(obs.retries);
        obs.registry.record(obs.backoff_us, 250_000);
        let rows = obs.rows();
        assert!(rows.iter().any(|r| r.name == "rpc.retries" && r.value == 1));
        let h = rows.iter().find(|r| r.name == "rpc.backoff_us").unwrap();
        assert_eq!(h.kind, 2);
        assert_eq!(h.value, 1);
        assert_eq!(h.sum, 250_000);
        assert!(!h.buckets.is_empty());
        assert_ne!(h.buckets.last(), Some(&0), "trailing zeros trimmed");
        let idle = rows
            .iter()
            .find(|r| r.name == "recov.probe_rtt_us")
            .unwrap();
        assert!(idle.buckets.is_empty(), "idle hist has no buckets");
    }

    #[test]
    fn render_metrics_is_stable_text() {
        let sections = vec![(
            "calder/100".to_string(),
            vec![
                MetricRow {
                    name: "rpc.requests".into(),
                    kind: 0,
                    value: 3,
                    sum: 0,
                    buckets: vec![],
                },
                MetricRow {
                    name: "rpc.backoff_us".into(),
                    kind: 2,
                    value: 2,
                    sum: 750_000,
                    buckets: vec![0, 0, 1, 1],
                },
            ],
        )];
        let text = render_metrics(&sections);
        assert_eq!(
            text,
            "calder/100 rpc.requests 3\n\
             calder/100 rpc.backoff_us count=2 sum=750000 buckets=[0 0 1 1]\n"
        );
    }

    #[test]
    fn span_exports_are_wellformed() {
        let events = vec![
            SpanEvent {
                at: SimTime::from_millis(1),
                host: Some(HostId(0)),
                name: "req",
                corr: "calder#7".into(),
                phase: SpanPhase::Begin,
            },
            SpanEvent {
                at: SimTime::from_millis(4),
                host: Some(HostId(0)),
                name: "req",
                corr: "calder#7".into(),
                phase: SpanPhase::End,
            },
        ];
        let names = vec!["calder".to_string()];
        let jsonl = spans_jsonl(&events, &names);
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"phase\":\"B\""));
        assert!(jsonl.contains("\"corr\":\"calder#7\""));
        let chrome = spans_chrome(&events, &names);
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.ends_with("]}"));
        assert!(chrome.contains("\"ph\":\"b\""));
        assert!(chrome.contains("\"ph\":\"e\""));
        assert!(chrome.contains("\"pid\":1"));
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }
}
