//! # ppm-core — the Personal Process Manager
//!
//! A Rust reproduction of the PPM of Cabrera, Sechrest and Cáceres
//! (*The Administration of Distributed Computations in a Networked
//! Environment*, ICDCS 1986). The whole stack is written against the
//! backend-agnostic `ppm-runtime` traits, so the same LPM/pmd/tool code
//! runs on the simulated networked Berkeley UNIX of `ppm-simos` **and**
//! on real loopback TCP nodes via `ppm-realos`.
//!
//! The pieces, mapped to the paper:
//!
//! * [`lpm`] — the local process manager: dispatcher + handler pool,
//!   kernel socket, sibling channels, broadcast echo wave, adoption,
//!   remote process creation, history, triggers, crash recovery.
//! * [`pmd`] — the per-host process manager daemon (trusted name server),
//!   started on demand by inetd; optional stable-storage registry.
//! * [`locator`] — the LPM-creation chain of Figure 2 as a client state
//!   machine, shared by tools and sibling LPMs.
//! * [`auth`] — user-level masquerade prevention (Section 3).
//! * [`genealogy`] / [`history`] / [`trigger_engine`] — the logical
//!   process tree, event history, and history-dependent triggers.
//! * [`handlers`] — the dispatcher/handler-process cost model (Section 6).
//! * `rpc` — the unified RPC substrate: one correlation-keyed pending
//!   table with deadlines, attempt budgets and idempotent dedup, shared
//!   by all tool, sibling, broadcast and recovery request traffic.
//! * [`client`] — the tool library of Section 6. (The synchronous
//!   sim-world driver for tests and benchmarks lives in `ppm-harness`.)
//!
//! ## Example
//!
//! ```
//! use ppm_core::config::{lpm_port, PpmConfig};
//! use ppm_runtime::ids::Uid;
//!
//! // Protocol constants are backend-independent: a user's LPM listens on
//! // the same well-known port in the simulation and on real nodes.
//! let cfg = PpmConfig::default();
//! assert_eq!(lpm_port(Uid(100)).0, 1100);
//! assert!(cfg.handler_max >= 1);
//! ```

pub mod auth;
pub mod client;
pub mod config;
pub mod genealogy;
pub mod handlers;
pub mod history;
pub mod locator;
pub mod lpm;
pub mod obs;
pub mod pmd;
pub(crate) mod rpc;
pub mod trigger_engine;
pub mod users;

pub use auth::{Authenticator, UserCred};
pub use client::{Tool, ToolHandle, ToolOutcome, ToolStep};
pub use config::{lpm_port, PpmConfig, PMD_PORT, PMD_SERVICE};
pub use lpm::{Lpm, LpmStats};
pub use pmd::{Pmd, PmdOptions};
pub use users::{UserDirectory, UserEntry};
