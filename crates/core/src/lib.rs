//! # ppm-core — the Personal Process Manager
//!
//! A Rust reproduction of the PPM of Cabrera, Sechrest and Cáceres
//! (*The Administration of Distributed Computations in a Networked
//! Environment*, ICDCS 1986), running on the simulated networked Berkeley
//! UNIX of `ppm-simos`.
//!
//! The pieces, mapped to the paper:
//!
//! * [`lpm`] — the local process manager: dispatcher + handler pool,
//!   kernel socket, sibling channels, broadcast echo wave, adoption,
//!   remote process creation, history, triggers, crash recovery.
//! * [`pmd`] — the per-host process manager daemon (trusted name server),
//!   started on demand by inetd; optional stable-storage registry.
//! * [`locator`] — the LPM-creation chain of Figure 2 as a client state
//!   machine, shared by tools and sibling LPMs.
//! * [`auth`] — user-level masquerade prevention (Section 3).
//! * [`genealogy`] / [`history`] / [`trigger_engine`] — the logical
//!   process tree, event history, and history-dependent triggers.
//! * [`handlers`] — the dispatcher/handler-process cost model (Section 6).
//! * `rpc` — the unified RPC substrate: one correlation-keyed pending
//!   table with deadlines, attempt budgets and idempotent dedup, shared
//!   by all tool, sibling, broadcast and recovery request traffic.
//! * [`client`] / [`harness`] — the tool library of Section 6 and a
//!   synchronous driver for tests, examples and benchmarks.
//!
//! ## Example
//!
//! ```
//! use ppm_core::config::PpmConfig;
//! use ppm_core::harness::PpmHarness;
//! use ppm_simnet::topology::CpuClass;
//! use ppm_simos::ids::Uid;
//!
//! let mut ppm = PpmHarness::builder()
//!     .host("calder", CpuClass::Vax780)
//!     .host("ucbarpa", CpuClass::Vax750)
//!     .link("calder", "ucbarpa")
//!     .user(Uid(100), 0xBEEF, &["calder"], PpmConfig::default())
//!     .build();
//!
//! // Create a remote process through the PPM and snapshot it.
//! let gpid = ppm.spawn_remote("calder", Uid(100), "ucbarpa", "troff", None, None)?;
//! assert_eq!(gpid.host, "ucbarpa");
//! let procs = ppm.snapshot("calder", Uid(100), "*")?;
//! assert!(procs.iter().any(|p| p.gpid == gpid));
//! # Ok::<(), ppm_core::harness::HarnessError>(())
//! ```

pub mod auth;
pub mod client;
pub mod config;
pub mod genealogy;
pub mod handlers;
pub mod harness;
pub mod history;
pub mod locator;
pub mod lpm;
pub mod obs;
pub mod pmd;
pub(crate) mod rpc;
pub mod tenant;
pub mod trigger_engine;
pub mod users;

pub use auth::{Authenticator, UserCred};
pub use client::{Tool, ToolHandle, ToolOutcome, ToolStep};
pub use config::{lpm_port, PpmConfig, PMD_PORT, PMD_SERVICE};
pub use harness::{HarnessBuilder, HarnessError, PpmHarness};
pub use lpm::{Lpm, LpmStats};
pub use pmd::{Pmd, PmdOptions};
pub use tenant::{ScaleReport, TenantWorld, UserShard};
pub use users::{UserDirectory, UserEntry};
