//! The dispatcher's handler-process pool.
//!
//! Section 6: "The LPM is, itself, a multi-process program. It consists of
//! a main dispatcher process, and some number of handler processes. ...
//! Since process creation in UNIX is relatively expensive, processes that
//! have handled a request may be given further requests, rather than
//! simply creating new processes."
//!
//! The pool models exactly that cost structure: acquiring a handler costs
//! a fork when none is idle, or a cheap hand-off when one is. The
//! fork-vs-reuse counters feed the ablation bench.

use ppm_runtime::time::{SimDuration, SimTime};

/// Identifier of one handler process within an LPM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HandlerId(pub u32);

/// Outcome of an acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Acquired {
    /// Which handler.
    pub id: HandlerId,
    /// Dispatch cost: fork or reuse.
    pub cost: SimDuration,
    /// Whether a fork was needed.
    pub forked: bool,
}

/// Pool statistics for ablation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Handlers forked over the LPM lifetime.
    pub forks: u64,
    /// Requests served by an idle handler.
    pub reuses: u64,
    /// Idle handlers reaped by TTL expiry.
    pub reaped: u64,
}

/// The handler pool.
///
/// # Examples
///
/// ```
/// use ppm_core::handlers::HandlerPool;
/// use ppm_runtime::time::{SimDuration, SimTime};
///
/// let mut pool = HandlerPool::new(
///     SimDuration::from_millis(70), // fork
///     SimDuration::from_millis(4),  // reuse
///     SimDuration::from_secs(20),   // idle ttl
///     8,
/// );
/// let first = pool.acquire(SimTime::ZERO);
/// assert!(first.forked, "cold pool forks");
/// pool.release(first.id, SimTime::from_secs(1));
/// let second = pool.acquire(SimTime::from_secs(2));
/// assert!(!second.forked, "idle handlers are given further requests");
/// ```
#[derive(Debug, Clone)]
pub struct HandlerPool {
    idle: Vec<(HandlerId, SimTime)>,
    busy: Vec<HandlerId>,
    next: u32,
    fork_cost: SimDuration,
    reuse_cost: SimDuration,
    idle_ttl: SimDuration,
    max: usize,
    reuse_enabled: bool,
    stats: PoolStats,
}

impl HandlerPool {
    /// Creates a pool with the given cost model.
    pub fn new(
        fork_cost: SimDuration,
        reuse_cost: SimDuration,
        idle_ttl: SimDuration,
        max: usize,
    ) -> Self {
        HandlerPool {
            idle: Vec::new(),
            busy: Vec::new(),
            next: 1,
            fork_cost,
            reuse_cost,
            idle_ttl,
            max: max.max(1),
            reuse_enabled: true,
            stats: PoolStats::default(),
        }
    }

    /// Disables reuse: every request forks (the ablation baseline).
    pub fn set_reuse_enabled(&mut self, enabled: bool) {
        self.reuse_enabled = enabled;
    }

    /// Acquires a handler for a request at time `now`.
    ///
    /// When the pool is saturated (`max` busy handlers), the request is
    /// still served (the dispatcher queues behind a busy handler) — at
    /// reuse cost plus one full fork cost of queueing delay, a coarse
    /// model of waiting for the next free handler.
    pub fn acquire(&mut self, now: SimTime) -> Acquired {
        if self.reuse_enabled {
            if let Some((id, _)) = self.idle.pop() {
                self.busy.push(id);
                self.stats.reuses += 1;
                return Acquired {
                    id,
                    cost: self.reuse_cost,
                    forked: false,
                };
            }
        } else {
            self.idle.clear();
        }
        let _ = now;
        if self.busy.len() >= self.max {
            // Saturated: wait for a handler to come free.
            let id = self.busy[0];
            self.stats.reuses += 1;
            return Acquired {
                id,
                cost: self.fork_cost + self.reuse_cost,
                forked: false,
            };
        }
        let id = HandlerId(self.next);
        self.next += 1;
        self.busy.push(id);
        self.stats.forks += 1;
        Acquired {
            id,
            cost: self.fork_cost,
            forked: true,
        }
    }

    /// Returns a handler to the idle list.
    pub fn release(&mut self, id: HandlerId, now: SimTime) {
        if let Some(pos) = self.busy.iter().position(|&b| b == id) {
            self.busy.remove(pos);
            if self.reuse_enabled {
                self.idle.push((id, now));
            }
        }
    }

    /// Reaps handlers idle longer than the TTL. Returns how many died.
    pub fn reap_idle(&mut self, now: SimTime) -> usize {
        let ttl = self.idle_ttl;
        let before = self.idle.len();
        self.idle
            .retain(|(_, since)| now.saturating_since(*since) < ttl);
        let reaped = before - self.idle.len();
        self.stats.reaped += reaped as u64;
        reaped
    }

    /// Live handlers (busy + idle).
    pub fn live(&self) -> usize {
        self.busy.len() + self.idle.len()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> HandlerPool {
        HandlerPool::new(
            SimDuration::from_millis(70),
            SimDuration::from_millis(4),
            SimDuration::from_secs(20),
            4,
        )
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn first_acquire_forks_then_reuses() {
        let mut p = pool();
        let a = p.acquire(t(0));
        assert!(a.forked);
        assert_eq!(a.cost, SimDuration::from_millis(70));
        p.release(a.id, t(1));
        let b = p.acquire(t(2));
        assert!(!b.forked);
        assert_eq!(b.id, a.id);
        assert_eq!(b.cost, SimDuration::from_millis(4));
        assert_eq!(p.stats().forks, 1);
        assert_eq!(p.stats().reuses, 1);
    }

    #[test]
    fn concurrent_requests_fork_up_to_max() {
        let mut p = pool();
        let ids: Vec<_> = (0..4).map(|_| p.acquire(t(0))).collect();
        assert!(ids.iter().all(|a| a.forked));
        assert_eq!(p.live(), 4);
        // Fifth queues behind a busy handler at penalty cost.
        let fifth = p.acquire(t(0));
        assert!(!fifth.forked);
        assert!(fifth.cost > SimDuration::from_millis(70));
        assert_eq!(p.live(), 4);
    }

    #[test]
    fn idle_handlers_are_reaped_after_ttl() {
        let mut p = pool();
        let a = p.acquire(t(0));
        p.release(a.id, t(1));
        assert_eq!(p.reap_idle(t(10)), 0, "within TTL");
        assert_eq!(p.reap_idle(t(30)), 1, "past TTL");
        assert_eq!(p.live(), 0);
        assert_eq!(p.stats().reaped, 1);
        // Next acquire forks again.
        assert!(p.acquire(t(31)).forked);
    }

    #[test]
    fn disabling_reuse_always_forks() {
        let mut p = pool();
        p.set_reuse_enabled(false);
        let a = p.acquire(t(0));
        p.release(a.id, t(0));
        let b = p.acquire(t(0));
        assert!(a.forked && b.forked);
        assert_ne!(a.id, b.id);
        assert_eq!(p.stats().forks, 2);
        assert_eq!(p.stats().reuses, 0);
    }

    #[test]
    fn release_of_unknown_handler_is_harmless() {
        let mut p = pool();
        p.release(HandlerId(99), t(0));
        assert_eq!(p.live(), 0);
    }
}
