//! User-level authentication.
//!
//! Section 3: "Our current authentication scheme can only prevent
//! user-level masquerade. ... We use the process manager daemons as
//! trusted name servers, and communication between sibling LPMs is done by
//! reliable virtual circuits", avoiding "system-wide unforgeable tickets".
//!
//! The concrete mechanism here: every user has a network-wide secret (the
//! consistent-password-file assumption of Section 4); connections to an
//! LPM open with a `Hello` carrying a keyed proof derived from the secret
//! and the caller's claimed identity. Host-level masquerade is out of
//! scope, exactly as in the paper.

use ppm_runtime::ids::Uid;

/// Network-wide credentials of one user.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserCred {
    /// The user.
    pub uid: Uid,
    /// Shared secret known to all of the user's LPMs and tools
    /// (the password-file analogue).
    pub secret: u64,
}

impl UserCred {
    /// Creates credentials.
    pub fn new(uid: Uid, secret: u64) -> Self {
        UserCred { uid, secret }
    }

    /// The proof a caller places in `Hello` messages.
    pub fn proof(&self) -> u64 {
        hash_pair(self.uid.0 as u64, self.secret)
    }

    /// Verifies a claimed `(uid, proof)` pair against these credentials.
    pub fn verify(&self, uid: Uid, proof: u64) -> bool {
        uid == self.uid && proof == self.proof()
    }
}

/// FNV-1a over two words.
fn hash_pair(a: u64, b: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in a.to_be_bytes().into_iter().chain(b.to_be_bytes()) {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Per-LPM authenticator: validates `Hello`s against the owning user's
/// credentials. Authentication happens once per channel, "when channels
/// are created, rather than upon every request".
#[derive(Debug, Clone, Copy)]
pub struct Authenticator {
    cred: UserCred,
}

impl Authenticator {
    /// Creates an authenticator for the LPM's owner.
    pub fn new(cred: UserCred) -> Self {
        Authenticator { cred }
    }

    /// The owner.
    pub fn uid(&self) -> Uid {
        self.cred.uid
    }

    /// The owner's broadcast-stamp signing secret.
    pub fn stamp_secret(&self) -> u64 {
        // Domain-separate from the hello proof.
        hash_pair(self.cred.secret, 0x5741_4D50) // "STMP"
    }

    /// Checks an incoming hello.
    pub fn check_hello(&self, uid: u32, proof: u64) -> bool {
        self.cred.verify(Uid(uid), proof)
    }

    /// The proof to place in outgoing hellos.
    pub fn proof(&self) -> u64 {
        self.cred.proof()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proof_verifies_for_owner_only() {
        let cred = UserCred::new(Uid(100), 0x5EC0_7E57);
        let proof = cred.proof();
        assert!(cred.verify(Uid(100), proof));
        assert!(!cred.verify(Uid(101), proof));
        assert!(!cred.verify(Uid(100), proof ^ 1));
    }

    #[test]
    fn different_secrets_different_proofs() {
        let a = UserCred::new(Uid(100), 1);
        let b = UserCred::new(Uid(100), 2);
        assert_ne!(a.proof(), b.proof());
    }

    #[test]
    fn authenticator_checks_hellos() {
        let auth = Authenticator::new(UserCred::new(Uid(7), 42));
        assert!(auth.check_hello(7, UserCred::new(Uid(7), 42).proof()));
        assert!(!auth.check_hello(7, UserCred::new(Uid(7), 43).proof()));
        assert!(!auth.check_hello(8, UserCred::new(Uid(7), 42).proof()));
        assert_eq!(auth.uid(), Uid(7));
    }

    #[test]
    fn stamp_secret_differs_from_proof() {
        let auth = Authenticator::new(UserCred::new(Uid(7), 42));
        assert_ne!(auth.stamp_secret(), auth.proof());
    }
}
