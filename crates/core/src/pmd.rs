//! The process manager daemon.
//!
//! One pmd per host, started on demand by inetd. "This daemon proceeds
//! then to create the LPM, and returns the accept address after verifying
//! that there is no LPM for that user in that host. ... It serves as a
//! trusted name server for the creation of LPMs."
//!
//! The paper notes (Section 5) that pmd state lost in a pmd-only crash
//! breaks the mechanism, and suggests keeping it in stable storage; that
//! hardening "has not been implemented" there — here it is available
//! behind [`PmdOptions::stable_storage`] and ablated in `ppm-bench`.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use ppm_proto::codec::{Dec, Enc, Wire};
use ppm_proto::msg::Msg;
use ppm_runtime::ids::{ConnId, Pid, Port, Uid};
use ppm_runtime::program::{Program, SpawnSpec};
use ppm_runtime::signal::ExitStatus;
use ppm_runtime::sys::Sys;
use ppm_runtime::time::SimTime;
use ppm_runtime::trace::TraceCategory;

use crate::config::lpm_port;
use crate::lpm::Lpm;
use crate::users::UserDirectory;

/// Stable-storage key of the pmd registry.
const REGISTRY_KEY: &str = "pmd.registry";
/// Stable-storage key of the name-server CCS assignments.
const CCS_KEY: &str = "pmd.ccs";

/// Pmd behaviour switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PmdOptions {
    /// Persist the `user → LPM` registry to the host's stable storage so
    /// a pmd-only crash does not lose track of live LPMs.
    pub stable_storage: bool,
    /// Respawn an LPM whose process died without exiting cleanly (host
    /// crash, kill): the replacement re-adopts surviving same-user
    /// processes and rebuilds its genealogy forest. Registered LPMs found
    /// dead at restore time (a host crash/reboot) are respawned too,
    /// which requires `stable_storage`.
    pub respawn_lpms: bool,
}

/// The daemon program.
pub struct Pmd {
    users: Arc<UserDirectory>,
    options: PmdOptions,
    registry: HashMap<u32, (Pid, Port)>,
    /// Reverse index of `registry`: LPM pid → owning uid. Keeps the
    /// child-exit path (which arrives with only a pid) O(1) instead of a
    /// scan over every registered user on the host.
    lpm_pids: HashMap<Pid, u32>,
    /// Name-server role: per-user CCS assignment (Section 5 alternative).
    ccs_registry: HashMap<u32, (String, u64)>,
    port: Port,
    requests_served: u64,
}

impl std::fmt::Debug for Pmd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pmd")
            .field("options", &self.options)
            .field("registry", &self.registry)
            .field("requests_served", &self.requests_served)
            .finish()
    }
}

impl Pmd {
    /// Creates a pmd that accepts on `port` and consults `users`.
    pub fn new(users: Arc<UserDirectory>, port: Port, options: PmdOptions) -> Self {
        Pmd {
            users,
            options,
            registry: HashMap::new(),
            lpm_pids: HashMap::new(),
            ccs_registry: HashMap::new(),
            port,
            requests_served: 0,
        }
    }

    /// Records a user's LPM in the registry and the pid reverse index,
    /// retiring the replaced pid's mapping if the user had one.
    fn register(&mut self, user: u32, pid: Pid, port: Port) {
        if let Some((old, _)) = self.registry.insert(user, (pid, port)) {
            self.lpm_pids.remove(&old);
        }
        self.lpm_pids.insert(pid, user);
    }

    fn persist(&mut self, sys: &mut dyn Sys) {
        if !self.options.stable_storage {
            return;
        }
        let mut enc = Enc::new();
        let mut entries: Vec<(u32, Pid, Port)> = self
            .registry
            .iter()
            .map(|(&u, &(pid, port))| (u, pid, port))
            .collect();
        entries.sort_unstable_by_key(|e| e.0);
        enc.seq(&entries, |e, (u, pid, port)| {
            e.u32(*u);
            e.u32(pid.0);
            e.u16(port.0);
        });
        sys.stable_put(REGISTRY_KEY, enc.into_bytes());
    }

    fn restore(&mut self, sys: &mut dyn Sys) {
        if !self.options.stable_storage {
            return;
        }
        let Some(raw) = sys.stable_get(REGISTRY_KEY) else {
            return;
        };
        let mut dec = Dec::new(&raw);
        let Ok(entries) = dec.seq(|d| Ok((d.u32()?, d.u32()?, d.u16()?))) else {
            return;
        };
        for (uid, pid, port) in entries {
            // Validate: pid must still be a live LPM process. Stale entries
            // (e.g. written before a host crash) are dropped — or, with
            // respawn enabled, brought back so they can re-adopt.
            let live = sys
                .proc_info(Pid(pid))
                .is_some_and(|p| p.state.is_alive() && p.command.starts_with("lpm"));
            if live {
                self.register(uid, Pid(pid), Port(port));
            } else if self.options.respawn_lpms {
                let crashed_at = crash_stamp(sys).unwrap_or_else(|| sys.now());
                self.respawn_lpm(sys, uid, crashed_at);
            }
        }
        if !self.registry.is_empty() {
            sys.trace(
                TraceCategory::Daemon,
                format!(
                    "pmd: restored {} LPM registrations from stable storage",
                    self.registry.len()
                ),
            );
        }
    }

    fn persist_ccs(&mut self, sys: &mut dyn Sys) {
        if !self.options.stable_storage {
            return;
        }
        let mut enc = Enc::new();
        let mut entries: Vec<(u32, String, u64)> = self
            .ccs_registry
            .iter()
            .map(|(&u, (h, e))| (u, h.clone(), *e))
            .collect();
        entries.sort_unstable_by_key(|e| e.0);
        enc.seq(&entries, |e, (u, h, ep)| {
            e.u32(*u);
            e.str(h);
            e.u64(*ep);
        });
        sys.stable_put(CCS_KEY, enc.into_bytes());
    }

    fn restore_ccs(&mut self, sys: &mut dyn Sys) {
        if !self.options.stable_storage {
            return;
        }
        let Some(raw) = sys.stable_get(CCS_KEY) else {
            return;
        };
        let mut dec = Dec::new(&raw);
        if let Ok(entries) = dec.seq(|d| Ok((d.u32()?, d.str()?, d.u64()?))) {
            for (u, h, e) in entries {
                self.ccs_registry.insert(u, (h, e));
            }
        }
    }

    /// The name-server role: answer (and when needed, reassign) the CCS
    /// for a user. A dead report matching the current assignment, or no
    /// assignment at all, promotes the claimant.
    fn assign_ccs(
        &mut self,
        sys: &mut dyn Sys,
        user: u32,
        claimant: String,
        dead: Option<String>,
    ) -> (String, u64) {
        let reassign = match self.ccs_registry.get(&user) {
            None => true,
            Some((current, _)) => dead.as_deref() == Some(current.as_str()),
        };
        if reassign {
            let epoch = self.ccs_registry.get(&user).map(|(_, e)| *e).unwrap_or(0) + 1;
            sys.trace(
                TraceCategory::Daemon,
                format!("pmd(ns): CCS for uid {user} -> {claimant} (epoch {epoch})"),
            );
            self.ccs_registry.insert(user, (claimant, epoch));
            self.persist_ccs(sys);
        }
        self.ccs_registry.get(&user).cloned().expect("just ensured")
    }

    fn live_lpm(&self, sys: &dyn Sys, user: u32) -> Option<Port> {
        let &(pid, port) = self.registry.get(&user)?;
        let alive = sys
            .proc_info(pid)
            .is_some_and(|p| p.state.is_alive() && p.command.starts_with("lpm"));
        alive.then_some(port)
    }

    fn create_lpm(&mut self, sys: &mut dyn Sys, user: u32) -> Option<(Port, bool)> {
        if let Some(port) = self.live_lpm(sys, user) {
            return Some((port, false));
        }
        let entry = self.users.get(Uid(user))?.clone();
        let port = lpm_port(Uid(user));
        let program = Lpm::new(&entry);
        let spec = SpawnSpec::new(format!("lpm-{user}"), Box::new(program));
        let pid = sys.spawn_as(Uid(user), spec).ok()?;
        self.register(user, pid, port);
        self.persist(sys);
        sys.trace(
            TraceCategory::Daemon,
            format!("pmd: created LPM pid {pid} for uid {user} (accept {port})"),
        );
        Some((port, true))
    }

    /// Respawns a crashed user's LPM in crash-recovery mode: the
    /// replacement re-adopts survivors and measures its recovery time
    /// from `crashed_at`.
    fn respawn_lpm(&mut self, sys: &mut dyn Sys, user: u32, crashed_at: SimTime) -> Option<Pid> {
        let entry = self.users.get(Uid(user))?.clone();
        let port = lpm_port(Uid(user));
        let program = Lpm::respawned(&entry, crashed_at);
        let spec = SpawnSpec::new(format!("lpm-{user}"), Box::new(program));
        let pid = sys.spawn_as(Uid(user), spec).ok()?;
        self.register(user, pid, port);
        self.persist(sys);
        sys.trace(
            TraceCategory::Daemon,
            format!("pmd: respawned LPM pid {pid} for uid {user} (accept {port})"),
        );
        Some(pid)
    }
}

/// The host's crash stamp ([`ppm_runtime::sys::CRASHED_AT_KEY`]), if the
/// host ever crashed: big-endian micros written at teardown time.
fn crash_stamp(sys: &dyn Sys) -> Option<SimTime> {
    let raw = sys.stable_get(ppm_runtime::sys::CRASHED_AT_KEY)?;
    let bytes: [u8; 8] = raw.as_ref().try_into().ok()?;
    Some(SimTime::from_micros(u64::from_be_bytes(bytes)))
}

impl Program for Pmd {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        sys.listen(self.port)
            .expect("pmd port free (inetd singleton)");
        self.restore(sys);
        self.restore_ccs(sys);
    }

    fn on_message(&mut self, sys: &mut dyn Sys, conn: ConnId, data: Bytes) {
        self.requests_served += 1;
        let reply = match Msg::from_bytes(&data) {
            Ok(Msg::CreateLpm { user }) => match self.create_lpm(sys, user) {
                Some((port, created)) => Msg::LpmAddr {
                    user,
                    port: port.0,
                    created,
                },
                None => Msg::NoLpm { user },
            },
            Ok(Msg::QueryLpm { user }) => match self.live_lpm(sys, user) {
                Some(port) => Msg::LpmAddr {
                    user,
                    port: port.0,
                    created: false,
                },
                None => Msg::NoLpm { user },
            },
            Ok(Msg::CcsQuery {
                user,
                claimant,
                dead,
            }) => {
                let (ccs, epoch) = self.assign_ccs(sys, user, claimant, dead);
                Msg::CcsInfo { user, ccs, epoch }
            }
            _ => return, // not pmd protocol; drop
        };
        let _ = sys.send(conn, reply.to_bytes());
    }

    fn on_child_exit(&mut self, sys: &mut dyn Sys, child: Pid, status: ExitStatus) {
        // O(1) pid → uid through the reverse index — a host carrying
        // thousands of users must not rescan its whole registry per
        // child exit. The dead pid leaves the index either way; the
        // user's forward entry stays until a respawn or re-create
        // replaces it (`live_lpm` validates against the kernel).
        let Some(user) = self.lpm_pids.remove(&child) else {
            return;
        };
        if !self.options.respawn_lpms {
            return;
        }
        // Clean exits (idle TTL, duplicate yield) are not crashes.
        if !matches!(status, ExitStatus::Signaled(_)) {
            return;
        }
        sys.trace(
            TraceCategory::Daemon,
            format!("pmd: LPM pid {child} for uid {user} died ({status:?}); respawning"),
        );
        let now = sys.now();
        self.respawn_lpm(sys, user, now);
    }

    fn name(&self) -> &str {
        "pmd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_do_not_persist() {
        assert!(!PmdOptions::default().stable_storage);
    }

    #[test]
    fn registry_encoding_roundtrips() {
        // The persistence format: seq of (u32 uid, u32 pid, u16 port).
        let entries = vec![(100u32, 7u32, 1100u16), (200, 9, 1200)];
        let mut enc = Enc::new();
        enc.seq(&entries, |e, (u, p, port)| {
            e.u32(*u);
            e.u32(*p);
            e.u16(*port);
        });
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let back = dec.seq(|d| Ok((d.u32()?, d.u32()?, d.u16()?))).unwrap();
        assert_eq!(back, entries);
    }
}
