//! The correlation-keyed pending-request table.
//!
//! One instance lives inside each LPM and owns every piece of per-request
//! bookkeeping: the pending map (keyed by local id), the correlation
//! index (keyed by `(origin, origin id)`), the shared dedup window, the
//! spawn-wait map, and the timer registry. The LPM submodules drive it;
//! nothing else in the crate reaches into its maps directly.

use std::collections::{BTreeMap, HashMap};

use ppm_proto::msg::{ErrCode, Reply};
use ppm_proto::types::Route;
use ppm_runtime::hashx::FastMap;
use ppm_runtime::sys::Sys;
use ppm_runtime::time::{SimDuration, SimTime};

use super::{DedupEntry, PendingRequest, ReqPhase, RpcKey, TimerKind};

/// Width of one dedup expiry bucket, as a power of two of microseconds
/// (2^20 µs ≈ 1.05 s — coarse enough that a busy window spans few
/// buckets, fine enough that the boundary bucket re-scan stays small).
const DEDUP_BUCKET_POW: u32 = 20;

/// Decision after a transport failure or per-attempt timeout on an
/// origin-side request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TransportVerdict {
    /// Budget left: re-send the same correlation id after `delay`.
    Retry { delay: SimDuration },
    /// Budget exhausted (or deadline passed): fail with this code.
    Fail(ErrCode),
}

/// Classification of an arriving sibling request against the table.
#[derive(Debug)]
pub(crate) enum DupVerdict {
    /// Never seen: process normally.
    New,
    /// The same correlation id is still in flight here (a retry overtook
    /// the original's reply); local id of the live entry.
    InFlight(u64),
    /// Already executed here; replay the cached reply without running the
    /// operation again.
    Replay { reply: Reply, route: Route },
    /// The correlation id was stamped by a dead incarnation of its origin
    /// (its boot epoch is older than the fence a respawn installed).
    /// Replay-only territory: with no cached reply left, the request is
    /// refused with [`ErrCode::StaleEpoch`] — never executed fresh.
    Stale,
}

#[derive(Debug, Default)]
pub(crate) struct RpcTable {
    /// Local-id allocator (the LPM salts it with the host name).
    next_seq: u64,
    pending: HashMap<u64, PendingRequest>,
    /// Correlation index: `(origin, origin id)` → local id.
    corr: FastMap<RpcKey, u64>,
    /// Shared retention window: broadcast stamps and executed sibling
    /// requests, purged together by `bcast_window`.
    dedup: FastMap<RpcKey, DedupEntry>,
    /// Expiry index over `dedup`: insertion-time bucket → keys inserted in
    /// that bucket. Purge walks only the buckets at or before the cutoff
    /// instead of scanning the whole window. References are lazy: a key
    /// re-inserted with a fresh timestamp leaves its old reference behind,
    /// which purge discards after checking the live entry.
    dedup_buckets: BTreeMap<u64, Vec<RpcKey>>,
    /// Spawned-but-not-yet-exec'd pid → local request id.
    spawn_waits: HashMap<u32, u64>,
    /// Incarnation fence per origin host: the newest boot epoch a forest
    /// pull has taught us. Requests stamped with an older (nonzero) boot
    /// are from a dead incarnation and must never execute fresh — the
    /// respawn purged that incarnation's dedup window, so nothing else
    /// stops a late retry from re-executing.
    fences: FastMap<std::sync::Arc<str>, u64>,
    next_token: u64,
    timers: HashMap<u64, TimerKind>,
}

impl RpcTable {
    pub(crate) fn new() -> Self {
        RpcTable {
            next_token: 1,
            ..Default::default()
        }
    }

    /// A deterministic fingerprint of the table's correlation state:
    /// which requests are pending, which correlation ids are indexed,
    /// what the dedup window retains and where the incarnation fences
    /// stand. Instants and allocator counters are left out so the model
    /// checker can merge interleavings that differ only in timing.
    pub(crate) fn digest(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = ppm_runtime::hashx::HashX::default();
        let mut ids: Vec<u64> = self.pending.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            h.write_u64(id);
        }
        let mut corr: Vec<(&RpcKey, &u64)> = self.corr.iter().collect();
        corr.sort_unstable();
        for ((origin, id), local) in corr {
            h.write(origin.as_bytes());
            h.write_u64(*id);
            h.write_u64(*local);
        }
        let mut dedup: Vec<(&RpcKey, u8)> = self
            .dedup
            .iter()
            .map(|(k, e)| {
                let tag = match e {
                    DedupEntry::Bcast { .. } => 1u8,
                    DedupEntry::Done { .. } => 2u8,
                };
                (k, tag)
            })
            .collect();
        dedup.sort_unstable();
        for ((origin, id), tag) in dedup {
            h.write(origin.as_bytes());
            h.write_u64(*id);
            h.write_u8(tag);
        }
        let mut fences: Vec<(&std::sync::Arc<str>, &u64)> = self.fences.iter().collect();
        fences.sort_unstable();
        for (origin, boot) in fences {
            h.write(origin.as_bytes());
            h.write_u64(*boot);
        }
        let mut waits: Vec<u32> = self.spawn_waits.keys().copied().collect();
        waits.sort_unstable();
        for pid in waits {
            h.write_u32(pid);
        }
        h.finish()
    }

    // ---- ids -------------------------------------------------------------

    /// Next raw sequence number; the caller salts it into a global id.
    pub(crate) fn next_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    // ---- pending map -----------------------------------------------------

    /// Inserts a request and indexes its correlation key.
    pub(crate) fn insert(&mut self, id: u64, req: PendingRequest) {
        self.corr.insert(req.corr.clone(), id);
        self.pending.insert(id, req);
    }

    pub(crate) fn get(&self, id: u64) -> Option<&PendingRequest> {
        self.pending.get(&id)
    }

    pub(crate) fn get_mut(&mut self, id: u64) -> Option<&mut PendingRequest> {
        self.pending.get_mut(&id)
    }

    /// Removes a request, its correlation index entry, and any spawn wait
    /// pointing at it.
    pub(crate) fn remove(&mut self, id: u64) -> Option<PendingRequest> {
        let req = self.pending.remove(&id)?;
        if self.corr.get(&req.corr) == Some(&id) {
            self.corr.remove(&req.corr);
        }
        if let Some(pid) = req.spawn_pid {
            self.spawn_waits.remove(&pid);
        }
        Some(req)
    }

    /// Local id of the in-flight request with this correlation key.
    pub(crate) fn resolve(&self, key: &RpcKey) -> Option<u64> {
        self.corr.get(key).copied()
    }

    /// Local ids whose request was last sent on `conn` (stable order).
    pub(crate) fn sent_on(&self, conn: ppm_runtime::ids::ConnId) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, r)| r.sent_conn == Some(conn))
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Whether any request outside the broadcast machinery is pending
    /// (keeps the LPM alive past its idle TTL).
    pub(crate) fn any_active(&self) -> bool {
        self.pending
            .values()
            .any(|r| r.phase != ReqPhase::BcastWait)
    }

    // ---- duplicate suppression -------------------------------------------

    /// Classifies an arriving sibling request by correlation key and the
    /// boot epoch it was stamped with (0 = unstamped tool traffic, which
    /// the fence never applies to).
    ///
    /// The fence check runs first: a cached reply may still replay for a
    /// fenced id (harmless — the dead incarnation executed it), but the
    /// moment the purge has dropped it, the verdict is `Stale`, not
    /// `New`. Without the fence, a late retry from a dead incarnation
    /// would re-execute after the respawn-triggered purge.
    pub(crate) fn dup_verdict(&self, key: &RpcKey, boot: u64) -> DupVerdict {
        if let Some(&id) = self.corr.get(key) {
            return DupVerdict::InFlight(id);
        }
        if let Some(DedupEntry::Done { reply, route, .. }) = self.dedup.get(key) {
            return DupVerdict::Replay {
                reply: reply.clone(),
                route: route.clone(),
            };
        }
        if boot != 0 && self.fences.get(&key.0).is_some_and(|&f| boot < f) {
            return DupVerdict::Stale;
        }
        DupVerdict::New
    }

    /// Raises the incarnation fence for `origin` to `boot` (monotonic:
    /// an older pull never lowers it). Called when a respawned sibling's
    /// forest pull announces its new boot epoch.
    pub(crate) fn fence_origin(&mut self, origin: &str, boot: u64) {
        if boot == 0 {
            return;
        }
        let slot = self.fences.entry(std::sync::Arc::from(origin)).or_insert(0);
        *slot = (*slot).max(boot);
    }

    /// Records a broadcast stamp in the retention window.
    pub(crate) fn note_bcast(&mut self, key: RpcKey, at: SimTime) {
        self.index_dedup(key.clone(), at);
        self.dedup.insert(key, DedupEntry::Bcast { at });
    }

    /// Whether a broadcast stamp is inside the retention window.
    pub(crate) fn bcast_seen(&self, key: &RpcKey) -> bool {
        matches!(self.dedup.get(key), Some(DedupEntry::Bcast { .. }))
    }

    /// Caches the reply of an executed sibling request so a retried
    /// delivery is answered without re-execution.
    pub(crate) fn note_done(&mut self, key: RpcKey, at: SimTime, reply: Reply, route: Route) {
        self.index_dedup(key.clone(), at);
        self.dedup
            .insert(key, DedupEntry::Done { at, reply, route });
    }

    /// Files a key under its insertion-time expiry bucket.
    fn index_dedup(&mut self, key: RpcKey, at: SimTime) {
        self.dedup_buckets
            .entry(at.as_micros() >> DEDUP_BUCKET_POW)
            .or_default()
            .push(key);
    }

    /// Drops dedup entries older than `window`; returns how many went.
    ///
    /// Only buckets whose time range reaches the expiry cutoff are
    /// visited, so a tick's cost is proportional to what actually expires
    /// (plus at most one partially-expired boundary bucket), not to the
    /// whole retention window.
    pub(crate) fn purge_dedup(&mut self, now: SimTime, window: SimDuration) -> usize {
        let now_us = now.as_micros();
        let window_us = window.as_micros();
        if now_us < window_us {
            return 0;
        }
        let cutoff_us = now_us - window_us;
        let cutoff_bucket = cutoff_us >> DEDUP_BUCKET_POW;
        let ripe: Vec<u64> = self
            .dedup_buckets
            .range(..=cutoff_bucket)
            .map(|(b, _)| *b)
            .collect();
        let mut purged = 0;
        for b in ripe {
            let refs = self.dedup_buckets.remove(&b).expect("listed bucket");
            let mut keep = Vec::new();
            for key in refs {
                let Some(e) = self.dedup.get(&key) else {
                    continue; // re-inserted and already purged via a newer ref
                };
                let at_us = e.at().as_micros();
                if at_us <= cutoff_us {
                    self.dedup.remove(&key);
                    purged += 1;
                } else if at_us >> DEDUP_BUCKET_POW == b {
                    // Boundary bucket: not yet expired, stays indexed.
                    keep.push(key);
                }
                // else: a fresh re-insertion owns a newer reference.
            }
            if !keep.is_empty() {
                self.dedup_buckets.insert(b, keep);
            }
        }
        purged
    }

    /// Drops every dedup entry keyed to `origin`; returns how many went.
    ///
    /// Called when a peer's connection is torn down by a crash: a
    /// restarted LPM allocates correlation ids from scratch, so cached
    /// replies under its old ids would wrongly suppress (and mis-answer)
    /// its fresh requests. Stale expiry-bucket references are left behind;
    /// [`RpcTable::purge_dedup`] discards them when their bucket ripens.
    pub(crate) fn purge_peer(&mut self, origin: &str) -> usize {
        let before = self.dedup.len();
        self.dedup.retain(|(host, _), _| host.as_ref() != origin);
        before - self.dedup.len()
    }

    // ---- spawn waits -----------------------------------------------------

    pub(crate) fn add_spawn_wait(&mut self, pid: u32, id: u64) {
        self.spawn_waits.insert(pid, id);
    }

    pub(crate) fn take_spawn_wait(&mut self, pid: u32) -> Option<u64> {
        self.spawn_waits.remove(&pid)
    }

    #[cfg(test)]
    pub(crate) fn peek_spawn_wait(&self, pid: u32) -> Option<u64> {
        self.spawn_waits.get(&pid).copied()
    }

    // ---- timers ----------------------------------------------------------

    /// Arms a timer and records what it means.
    pub(crate) fn arm(&mut self, sys: &mut dyn Sys, d: SimDuration, kind: TimerKind) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.timers.insert(token, kind);
        sys.set_timer(d, token);
        token
    }

    /// Forgets an armed timer (a later fire becomes a no-op).
    pub(crate) fn cancel(&mut self, token: u64) {
        self.timers.remove(&token);
    }

    /// Consumes a fired timer's meaning, if still armed.
    pub(crate) fn take_timer(&mut self, token: u64) -> Option<TimerKind> {
        self.timers.remove(&token)
    }
}

impl PendingRequest {
    /// Decides what to do after a transport failure (`timed_out: false`)
    /// or a per-attempt timeout (`timed_out: true`). Granting a retry
    /// consumes one attempt and doubles the backoff; only origin-side
    /// requests ever retry — relays propagate the failure upstream.
    pub(crate) fn retry_verdict(&mut self, now: SimTime, timed_out: bool) -> TransportVerdict {
        if self.past_deadline(now) {
            return TransportVerdict::Fail(ErrCode::DeadlineExceeded);
        }
        if self.reply_to.is_origin() && self.attempts_left > 0 {
            self.attempts_left -= 1;
            self.attempt = self.attempt.saturating_add(1);
            let delay = self.backoff;
            // Double toward the ceiling; without the clamp a
            // long-partitioned origin ends up with multi-hour sim timers.
            self.backoff = self.backoff.saturating_mul(2).min(self.backoff_max);
            return TransportVerdict::Retry { delay };
        }
        TransportVerdict::Fail(if timed_out {
            ErrCode::Timeout
        } else {
            ErrCode::HostDown
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::ReplyTo;
    use super::*;
    use ppm_proto::msg::Op;
    use std::sync::Arc;

    fn req(corr: RpcKey, reply_to: ReplyTo) -> PendingRequest {
        PendingRequest {
            user: 100,
            dest: "far".into(),
            op: Op::Ping,
            reply_to,
            phase: ReqPhase::Sent,
            handler: None,
            sent_conn: None,
            hops_left: 8,
            route: Route::from_origin("here"),
            timeout_token: None,
            spawn_pid: None,
            corr,
            boot: 1,
            deadline: None,
            attempt: 0,
            attempts_left: 2,
            backoff: SimDuration::from_millis(250),
            backoff_max: SimDuration::from_secs(10),
        }
    }

    #[test]
    fn correlation_index_tracks_insert_and_remove() {
        let mut t = RpcTable::new();
        let key: RpcKey = (Arc::from("here"), 7);
        t.insert(7, req(key.clone(), ReplyTo::Internal));
        assert_eq!(t.resolve(&key), Some(7));
        matches!(t.dup_verdict(&key, 1), DupVerdict::InFlight(7));
        t.remove(7);
        assert_eq!(t.resolve(&key), None);
        assert!(matches!(t.dup_verdict(&key, 1), DupVerdict::New));
    }

    #[test]
    fn done_entries_replay_and_age_out() {
        let mut t = RpcTable::new();
        let key: RpcKey = (Arc::from("far"), 9);
        let at = SimTime::from_micros(1_000_000);
        t.note_done(key.clone(), at, Reply::Pong, Route::from_origin("far"));
        match t.dup_verdict(&key, 1) {
            DupVerdict::Replay { reply, .. } => assert_eq!(reply, Reply::Pong),
            v => panic!("expected replay, got {v:?}"),
        }
        // Inside the window: kept. Past it: purged.
        let window = SimDuration::from_secs(60);
        assert_eq!(t.purge_dedup(SimTime::from_micros(2_000_000), window), 0);
        let purged = t.purge_dedup(at + SimDuration::from_secs(61), window);
        assert_eq!(purged, 1);
        assert!(matches!(t.dup_verdict(&key, 1), DupVerdict::New));
    }

    #[test]
    fn bcast_and_done_entries_share_the_window() {
        let mut t = RpcTable::new();
        let b: RpcKey = (Arc::from("a"), 1);
        let d: RpcKey = (Arc::from("b"), 2);
        t.note_bcast(b.clone(), SimTime::ZERO);
        t.note_done(
            d,
            SimTime::from_micros(500),
            Reply::Pong,
            Route::from_origin("b"),
        );
        assert!(t.bcast_seen(&b));
        let purged = t.purge_dedup(SimTime::from_micros(2_000_000), SimDuration::from_millis(1));
        assert_eq!(purged, 2);
        assert!(!t.bcast_seen(&b));
    }

    #[test]
    fn purge_peer_clears_only_that_origin() {
        let mut t = RpcTable::new();
        let a1: RpcKey = (Arc::from("a"), 1);
        let a2: RpcKey = (Arc::from("a"), 2);
        let b1: RpcKey = (Arc::from("b"), 1);
        t.note_done(
            a1.clone(),
            SimTime::ZERO,
            Reply::Pong,
            Route::from_origin("a"),
        );
        t.note_bcast(a2.clone(), SimTime::ZERO);
        t.note_done(
            b1.clone(),
            SimTime::ZERO,
            Reply::Ok,
            Route::from_origin("b"),
        );
        assert_eq!(t.purge_peer("a"), 2);
        assert!(matches!(t.dup_verdict(&a1, 1), DupVerdict::New));
        assert!(!t.bcast_seen(&a2));
        assert!(matches!(t.dup_verdict(&b1, 1), DupVerdict::Replay { .. }));
        // The stale bucket references left behind are discarded cleanly.
        assert_eq!(
            t.purge_dedup(
                SimTime::from_micros(10_000_000),
                SimDuration::from_millis(1)
            ),
            1
        );
    }

    #[test]
    fn reinserted_dedup_keys_survive_purge_of_their_old_bucket() {
        // A key noted again with a fresh timestamp leaves a stale
        // reference in its old expiry bucket; purging that bucket must
        // neither drop the live entry nor count it as purged.
        let mut t = RpcTable::new();
        let key: RpcKey = (Arc::from("far"), 4);
        let window = SimDuration::from_secs(60);
        t.note_done(
            key.clone(),
            SimTime::ZERO,
            Reply::Pong,
            Route::from_origin("far"),
        );
        t.note_done(
            key.clone(),
            SimTime::from_micros(50_000_000),
            Reply::Ok,
            Route::from_origin("far"),
        );
        // 61s: the t=0 insertion would have expired, but the entry was
        // refreshed at t=50s and must stay.
        assert_eq!(t.purge_dedup(SimTime::from_micros(61_000_000), window), 0);
        assert!(matches!(t.dup_verdict(&key, 1), DupVerdict::Replay { .. }));
        // 111s: now the refreshed entry expires, exactly once.
        assert_eq!(t.purge_dedup(SimTime::from_micros(111_000_000), window), 1);
        assert!(matches!(t.dup_verdict(&key, 1), DupVerdict::New));
        assert_eq!(t.purge_dedup(SimTime::from_micros(200_000_000), window), 0);
    }

    #[test]
    fn purge_handles_boundary_bucket_partially() {
        // Two entries in the same ~1s bucket, straddling the cutoff: only
        // the expired one goes, and the survivor expires on a later tick.
        let mut t = RpcTable::new();
        let a: RpcKey = (Arc::from("a"), 1);
        let b: RpcKey = (Arc::from("b"), 2);
        let window = SimDuration::from_secs(10);
        t.note_bcast(a.clone(), SimTime::from_micros(1_000_100));
        t.note_bcast(b.clone(), SimTime::from_micros(1_900_000));
        assert_eq!(
            t.purge_dedup(SimTime::from_micros(11_000_200), window),
            1,
            "only the older entry expired"
        );
        assert!(!t.bcast_seen(&a));
        assert!(t.bcast_seen(&b));
        assert_eq!(t.purge_dedup(SimTime::from_micros(11_900_001), window), 1);
        assert!(!t.bcast_seen(&b));
    }

    #[test]
    fn fenced_boot_epochs_are_replay_only() {
        // A respawn purges the predecessor's dedup entries and fences its
        // boot epoch. A late retry stamped by the dead incarnation must
        // classify Stale (refused), never New (re-executed).
        let mut t = RpcTable::new();
        let key: RpcKey = (Arc::from("work"), 12);
        t.note_done(
            key.clone(),
            SimTime::ZERO,
            Reply::Pong,
            Route::from_origin("work"),
        );
        t.fence_origin("work", 5_000_000);
        // Cached reply still replays even though the id is fenced.
        assert!(matches!(
            t.dup_verdict(&key, 1_000_000),
            DupVerdict::Replay { .. }
        ));
        t.purge_peer("work");
        // Post-purge: the old incarnation's id is Stale, not New.
        assert!(matches!(t.dup_verdict(&key, 1_000_000), DupVerdict::Stale));
        // The new incarnation's own stamps pass the fence.
        assert!(matches!(t.dup_verdict(&key, 5_000_000), DupVerdict::New));
        // Unstamped tool traffic (boot 0) is never fenced.
        assert!(matches!(t.dup_verdict(&key, 0), DupVerdict::New));
    }

    #[test]
    fn fence_is_monotonic() {
        let mut t = RpcTable::new();
        t.fence_origin("work", 7_000_000);
        t.fence_origin("work", 3_000_000); // reordered older pull
        assert!(matches!(
            t.dup_verdict(&(Arc::from("work"), 1), 3_000_000),
            DupVerdict::Stale
        ));
        t.fence_origin("work", 0); // unstamped pull never lowers it
        assert!(matches!(
            t.dup_verdict(&(Arc::from("work"), 1), 6_999_999),
            DupVerdict::Stale
        ));
        assert!(matches!(
            t.dup_verdict(&(Arc::from("work"), 1), 7_000_000),
            DupVerdict::New
        ));
    }

    #[test]
    fn retry_verdict_consumes_budget_then_fails() {
        let now = SimTime::from_micros(1_000);
        let mut r = req((Arc::from("here"), 1), ReplyTo::Internal);
        let v1 = r.retry_verdict(now, false);
        assert_eq!(
            v1,
            TransportVerdict::Retry {
                delay: SimDuration::from_millis(250)
            }
        );
        assert_eq!(r.attempt, 1);
        let v2 = r.retry_verdict(now, false);
        assert_eq!(
            v2,
            TransportVerdict::Retry {
                delay: SimDuration::from_millis(500)
            }
        );
        assert_eq!(
            r.retry_verdict(now, false),
            TransportVerdict::Fail(ErrCode::HostDown)
        );
        assert_eq!(
            r.retry_verdict(now, true),
            TransportVerdict::Fail(ErrCode::Timeout)
        );
    }

    #[test]
    fn retry_backoff_saturates_at_the_ceiling() {
        // With a big budget the delay doubles 250ms → 500ms → 1s, then
        // plateaus at the 1s ceiling instead of marching toward hours.
        let now = SimTime::from_micros(1_000);
        let mut r = req((Arc::from("here"), 1), ReplyTo::Internal);
        r.attempts_left = 20;
        r.backoff_max = SimDuration::from_secs(1);
        let mut delays = Vec::new();
        for _ in 0..6 {
            match r.retry_verdict(now, false) {
                TransportVerdict::Retry { delay } => delays.push(delay.as_micros()),
                v => panic!("expected retry, got {v:?}"),
            }
        }
        assert_eq!(
            delays,
            vec![250_000, 500_000, 1_000_000, 1_000_000, 1_000_000, 1_000_000]
        );
    }

    #[test]
    fn relays_never_retry() {
        let now = SimTime::from_micros(1_000);
        let mut r = req(
            (Arc::from("orig"), 1),
            ReplyTo::Sibling {
                conn: ppm_runtime::ids::ConnId(3),
                external_id: 1,
                route_in: Route::from_origin("orig"),
            },
        );
        assert_eq!(
            r.retry_verdict(now, false),
            TransportVerdict::Fail(ErrCode::HostDown)
        );
        assert_eq!(r.attempts_left, 2, "budget untouched for relays");
    }

    #[test]
    fn deadline_overrides_budget() {
        let mut r = req((Arc::from("here"), 1), ReplyTo::Internal);
        r.deadline = Some(SimTime::from_micros(500));
        assert_eq!(
            r.retry_verdict(SimTime::from_micros(600), true),
            TransportVerdict::Fail(ErrCode::DeadlineExceeded)
        );
        assert_eq!(r.attempts_left, 2);
    }

    #[test]
    fn timers_round_trip_through_the_registry() {
        // `arm` needs a live Sys; cancel/take are exercised standalone.
        let mut t = RpcTable::new();
        t.timers.insert(5, TimerKind::ReqRetry(42));
        assert_eq!(t.take_timer(5), Some(TimerKind::ReqRetry(42)));
        assert_eq!(t.take_timer(5), None);
        t.timers.insert(6, TimerKind::Probe);
        t.cancel(6);
        assert_eq!(t.take_timer(6), None);
    }

    #[test]
    fn spawn_waits_follow_request_removal() {
        let mut t = RpcTable::new();
        let key: RpcKey = (Arc::from("here"), 3);
        let mut r = req(key, ReplyTo::Internal);
        r.spawn_pid = Some(77);
        t.insert(3, r);
        t.add_spawn_wait(77, 3);
        assert_eq!(t.peek_spawn_wait(77), Some(3));
        t.remove(3);
        assert_eq!(t.take_spawn_wait(77), None, "removal clears the wait");
    }
}
