//! The unified RPC layer: one correlation-keyed pending-request table
//! for every request an LPM originates, relays, executes or broadcasts.
//!
//! The paper's LPM is "a dispatcher plus a pool of reusable handler
//! processes" whose request, broadcast and recovery traffic all share the
//! same sibling channels. This module is the single bookkeeping substrate
//! under all of that traffic:
//!
//! * a **pending-request table** keyed by local id, with a correlation
//!   index keyed by `(origin host, origin id)` — the identity a request
//!   keeps across relays and retries;
//! * **per-request deadlines** propagated on the wire ([`ppm_proto::msg::Msg::Req`]'s
//!   `deadline_us`), decayed by one [`crate::config::PpmConfig::deadline_decay`]
//!   at each relay in lockstep with `hops_left`;
//! * **attempt budgets with exponential backoff**: when a sibling
//!   connection breaks under an origin-side request (or its local timer
//!   fires with budget left), the same correlation id is re-sent after a
//!   doubling delay instead of failing outright;
//! * **idempotent dedup** shared with the broadcast retention window:
//!   executed sibling requests park their reply in the same
//!   `(origin, correlation id)`-keyed window that suppresses duplicate
//!   broadcast waves, so a retried attempt replays the cached reply
//!   instead of executing twice (at-least-once delivery + dedup =
//!   exactly-once execution).
//!
//! The table also owns the LPM's timer registry ([`TimerKind`]), since
//! every timeout in the system is attached to an entry here or to the
//! broadcast machinery layered on top.

mod table;

use std::sync::Arc;

use ppm_proto::msg::{Op, Reply};
use ppm_proto::types::Route;
use ppm_runtime::ids::ConnId;
use ppm_runtime::time::{SimDuration, SimTime};

use crate::handlers::HandlerId;

pub(crate) use table::{DupVerdict, RpcTable, TransportVerdict};

/// Correlation key of a request or broadcast wave:
/// `(origin host, origin-allocated id)`. The origin is a shared
/// `Arc<str>`, so keys clone by bumping a reference count.
///
/// Directed requests keep this identity across relays and retries;
/// broadcast waves use their signed stamp's `(origin, seq)`. Both kinds
/// share one dedup window keyed by this type.
pub(crate) type RpcKey = (Arc<str>, u64);

/// Renders a correlation key for traces: `origin#id`.
pub(crate) fn fmt_key(key: &RpcKey) -> String {
    format!("{}#{}", key.0, key.1)
}

/// Where a finished request's reply goes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ReplyTo {
    /// A tool on a local connection; reply with the tool's own id.
    Tool { conn: ConnId, external_id: u64 },
    /// A sibling that sent us this request (to execute or relay).
    Sibling {
        conn: ConnId,
        external_id: u64,
        route_in: Route,
    },
    /// Self-originated (trigger action); log failures, drop successes.
    Internal,
    /// The local slice of a broadcast.
    BcastLocal { key: RpcKey },
}

impl ReplyTo {
    /// Whether this LPM is the origin of the request (and therefore the
    /// node responsible for end-to-end retry).
    pub(crate) fn is_origin(&self) -> bool {
        matches!(self, ReplyTo::Tool { .. } | ReplyTo::Internal)
    }
}

/// Pipeline stage of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReqPhase {
    /// Classifying (dispatch cost running).
    Dispatch,
    /// Waiting for a handler before local execution.
    HandlerForLocal,
    /// Waiting for a handler before a remote send.
    HandlerForRemote,
    /// Operation cost running; effects apply when it fires.
    OpCost,
    /// Sent to a remote LPM; awaiting its `Resp`.
    Sent,
    /// Waiting for a sibling channel to come up.
    AwaitChannel,
    /// Transport failed; waiting out the retry backoff.
    RetryWait,
    /// Spawn performed; awaiting the child's exec kernel event.
    AwaitSpawn,
    /// Delegated to the broadcast machinery.
    BcastWait,
}

/// One entry of the pending-request table.
#[derive(Debug)]
pub(crate) struct PendingRequest {
    pub user: u32,
    pub dest: String,
    pub op: Op,
    pub reply_to: ReplyTo,
    pub phase: ReqPhase,
    pub handler: Option<HandlerId>,
    pub sent_conn: Option<ConnId>,
    pub hops_left: u8,
    /// Route accumulated so far (origin-first; relays extend it).
    pub route: Route,
    pub timeout_token: Option<u64>,
    pub spawn_pid: Option<u32>,
    /// Wire correlation identity, preserved across relays and retries.
    pub corr: RpcKey,
    /// Boot epoch of the origin LPM incarnation that stamped `corr`
    /// (start time in µs, never 0 for an LPM; 0 = unstamped tool
    /// traffic). Relays carry it unchanged so executors can fence
    /// correlation ids minted by dead incarnations.
    pub boot: u64,
    /// Absolute deadline; refused/failed with `DeadlineExceeded` past it.
    pub deadline: Option<SimTime>,
    /// Zero-based attempt counter (carried on the wire for diagnosis).
    pub attempt: u8,
    /// Remaining transport retries before the request fails for good.
    pub attempts_left: u8,
    /// Delay before the next retry; doubles per attempt up to
    /// `backoff_max`.
    pub backoff: SimDuration,
    /// Ceiling the doubling backoff saturates at.
    pub backoff_max: SimDuration,
}

/// What an armed timer means when it fires.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TimerKind {
    Housekeeping,
    /// Continue the staged pipeline of a request.
    ReqStep(u64),
    /// A directed request's per-attempt timer expired.
    ReqTimeout(u64),
    /// A request's retry backoff elapsed; re-send it.
    ReqRetry(u64),
    /// Retry a channel (daemon booting).
    ChannelRetry(String),
    /// The forward handler of a broadcast is ready; send downstream.
    BcastForward(RpcKey),
    /// One merge slot finished; apply the next queued part.
    BcastMerge(RpcKey),
    /// Broadcast wave safety timeout.
    BcastTimeout(RpcKey),
    /// Recovery: probe higher-priority hosts.
    Probe,
    /// Recovery: retry the seek loop.
    SeekRetry,
    /// Recovery: orphan time-to-die expired.
    TimeToDie,
    /// Name-server CCS query retry (daemon booting).
    NsRetry,
}

/// An entry of the shared dedup window.
#[derive(Debug, Clone)]
pub(crate) enum DedupEntry {
    /// A broadcast wave stamp, seen at `at`.
    Bcast { at: SimTime },
    /// A directed sibling request executed here; the reply is cached so
    /// a retried delivery is answered without re-execution.
    Done {
        at: SimTime,
        reply: Reply,
        route: Route,
    },
}

impl DedupEntry {
    pub(crate) fn at(&self) -> SimTime {
        match self {
            DedupEntry::Bcast { at } | DedupEntry::Done { at, .. } => *at,
        }
    }
}

impl PendingRequest {
    /// Whether the request's deadline budget is exhausted: the remaining
    /// time at `now` is exactly zero (or the deadline already passed).
    ///
    /// The `== 0` case matters at relay hops: per-hop decay can land a
    /// request on its deadline to the microsecond, and forwarding a
    /// request with zero remaining budget only burns a sibling's
    /// dispatch slot before the inevitable `DeadlineExceeded` — so it is
    /// refused here, not just on underflow.
    pub(crate) fn past_deadline(&self, now: SimTime) -> bool {
        self.deadline
            .is_some_and(|d| d.saturating_since(now) == SimDuration::ZERO)
    }
}

/// Transport-retry policy, lifted from [`crate::config::PpmConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RetryPolicy {
    /// Total send attempts (1 = no retry).
    pub attempts: u8,
    /// First backoff delay; doubles per retry.
    pub backoff: SimDuration,
    /// Ceiling the doubling backoff saturates at.
    pub backoff_max: SimDuration,
}

impl RetryPolicy {
    /// Retries left after the initial attempt.
    pub(crate) fn retries(&self) -> u8 {
        self.attempts.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_key_is_origin_hash_id() {
        let key: RpcKey = (Arc::from("calder"), 42);
        assert_eq!(fmt_key(&key), "calder#42");
    }

    #[test]
    fn origin_side_reply_targets() {
        assert!(ReplyTo::Internal.is_origin());
        assert!(ReplyTo::Tool {
            conn: ConnId(1),
            external_id: 1
        }
        .is_origin());
        assert!(!ReplyTo::Sibling {
            conn: ConnId(1),
            external_id: 1,
            route_in: Route::from_origin("a"),
        }
        .is_origin());
        assert!(!ReplyTo::BcastLocal {
            key: (Arc::from("a"), 1)
        }
        .is_origin());
    }

    #[test]
    fn deadline_exhausted_at_exactly_zero_remaining() {
        // The boundary case the relay path used to forward: remaining
        // budget of exactly 0 µs counts as past-deadline.
        let mut r = PendingRequest {
            user: 100,
            dest: "far".into(),
            op: Op::Ping,
            reply_to: ReplyTo::Internal,
            phase: ReqPhase::Dispatch,
            handler: None,
            sent_conn: None,
            hops_left: 8,
            route: Route::from_origin("here"),
            timeout_token: None,
            spawn_pid: None,
            corr: (Arc::from("here"), 1),
            boot: 1,
            deadline: Some(SimTime::from_micros(1_000)),
            attempt: 0,
            attempts_left: 2,
            backoff: SimDuration::from_millis(250),
            backoff_max: SimDuration::from_secs(10),
        };
        assert!(!r.past_deadline(SimTime::from_micros(999)));
        assert!(r.past_deadline(SimTime::from_micros(1_000)), "== 0 budget");
        assert!(r.past_deadline(SimTime::from_micros(1_001)));
        r.deadline = None;
        assert!(!r.past_deadline(SimTime::from_micros(u64::MAX / 8)));
    }

    #[test]
    fn retry_policy_counts_retries() {
        let p = RetryPolicy {
            attempts: 3,
            backoff: SimDuration::from_millis(250),
            backoff_max: SimDuration::from_secs(10),
        };
        assert_eq!(p.retries(), 2);
        let none = RetryPolicy {
            attempts: 0,
            backoff: SimDuration::from_millis(250),
            backoff_max: SimDuration::from_secs(10),
        };
        assert_eq!(none.retries(), 0);
    }
}
