//! The broadcast echo wave over the sibling graph.
//!
//! Section 4: "Because our on-demand communication topology is designed to
//! produce low-connectivity graphs, we have to pay a price for broadcast
//! requests. The PPM uses a graph covering algorithm. A scheme for not
//! retransmitting old broadcast requests has been implemented using a
//! signed timestamp in which the name of the originating host appears. ...
//! All data returned to the originator of a broadcast request includes the
//! message's source-destination route."
//!
//! Implementation: a Chang-style echo wave with in-network aggregation.
//! The originator sends the stamped request to all siblings; each
//! first-time receiver gathers its local slice, forwards to its other
//! siblings, and folds every answer from its subtree — its own slice plus
//! each child's aggregate — into one [`Msg::BcastAgg`] frame that travels
//! its upstream edge exactly once, followed by [`Msg::BcastDone`] when the
//! subtree is exhausted. Child aggregates are spliced byte-for-byte (the
//! part frames are never re-decoded in transit), so a deep chain moves
//! each record across each edge once instead of re-relaying every record
//! at every hop. Lost children and straggler timeouts are recorded in the
//! aggregate's `missing` list; the originator surfaces a non-empty list as
//! [`Reply::Partial`]. Duplicates (identified by the signed stamp within
//! the retention window) are answered with an immediate `BcastDone`.

use std::collections::BTreeSet;

use ppm_proto::codec::{decode_batch, Enc, Wire};
use ppm_proto::msg::{BcastPart, ErrCode, Msg, Op, Reply};
use ppm_proto::types::{Route, Stamp};
use ppm_runtime::ids::ConnId;
use ppm_runtime::obs::SpanPhase;
use ppm_runtime::sys::Sys;
use ppm_runtime::time::SimTime;
use ppm_runtime::trace::TraceCategory;

use crate::rpc::PendingRequest;

use super::{BcastKey, BcastState, Lpm, ReplyTo, TimerKind};

/// Which operations may be broadcast (`dest = "*"`).
fn broadcastable(op: &Op) -> bool {
    matches!(
        op,
        Op::Snapshot | Op::Rusage { .. } | Op::History { .. } | Op::Ping
    )
}

impl Lpm {
    /// Originates a broadcast for request `req_id` (whose dest is `"*"`).
    pub(crate) fn begin_broadcast(&mut self, sys: &mut dyn Sys, req_id: u64) {
        let (user, op) = {
            let r = self.rpc.get(req_id).expect("broadcast request exists");
            (r.user, r.op.clone())
        };
        if !broadcastable(&op) {
            self.finish_with_error(
                sys,
                req_id,
                ErrCode::BadRequest,
                &format!("{} cannot be broadcast", op.kind()),
            );
            return;
        }
        self.bcast_seq += 1;
        let now = sys.now();
        let stamp = Stamp::signed(
            self.host.clone(),
            self.bcast_seq,
            now.as_micros(),
            self.auth.stamp_secret(),
        );
        let key = stamp.key();
        self.rpc.note_bcast(key.clone(), now);
        self.stats.bcasts_originated += 1;

        let forward_targets: Vec<String> = self.siblings.keys().cloned().collect();
        let forwarded = forward_targets.is_empty();
        let state = BcastState {
            stamp: stamp.clone(),
            op: op.clone(),
            user,
            upstream: None,
            reply_req: Some(req_id),
            parts: Vec::new(),
            pending_children: BTreeSet::new(),
            local_done: false,
            done_sent: false,
            forward_handler: None,
            respond_handler: None,
            forward_targets,
            forwarded,
            agg_buf: Vec::new(),
            agg_count: 0,
            agg_received: BTreeSet::new(),
            missing: BTreeSet::new(),
            route_in: Route::from_origin(self.host.clone()),
            merge_queue: Vec::new(),
            combine_started: false,
            merges_outstanding: 0,
            merge_free_at: SimTime::ZERO,
            timeout_token: None,
        };
        self.bcasts.insert(key.clone(), state);
        if sys.spans_enabled() {
            sys.span("bcast", format!("{}@{}", key.0, key.1), SpanPhase::Begin);
        }
        sys.trace(
            TraceCategory::Broadcast,
            format!(
                "originate {}#{} ({}) targets {:?}",
                key.0,
                key.1,
                op.kind(),
                self.bcasts[&key].forward_targets
            ),
        );

        // Local slice: the originator's dispatcher gathers it directly.
        self.begin_local_slice(sys, &key, user, op, false);

        // Downstream wave: a handler carries the fan-out and blocks on it.
        let has_targets = !self.bcasts[&key].forward_targets.is_empty();
        if has_targets {
            let (h, d) = self.acquire_handler(sys);
            if let Some(b) = self.bcasts.get_mut(&key) {
                b.forward_handler = Some(h);
            }
            self.arm(sys, d, TimerKind::BcastForward(key.clone()));
        }
        let timeout = self.cfg.bcast_timeout;
        let tok = self.arm(sys, timeout, TimerKind::BcastTimeout(key.clone()));
        if let Some(b) = self.bcasts.get_mut(&key) {
            b.timeout_token = Some(tok);
        }
    }

    /// Creates the internal sub-request that gathers this host's slice.
    fn begin_local_slice(
        &mut self,
        sys: &mut dyn Sys,
        key: &BcastKey,
        user: u32,
        op: Op,
        with_handler: bool,
    ) {
        let id = self.alloc_internal_id();
        let reply_to = ReplyTo::BcastLocal { key: key.clone() };
        let policy = self.retry_policy();
        let mut req = PendingRequest {
            user,
            dest: self.host.clone(),
            op: op.clone(),
            reply_to,
            phase: super::ReqPhase::OpCost,
            handler: None,
            sent_conn: None,
            hops_left: 0,
            route: Route::from_origin(self.host.clone()),
            timeout_token: None,
            spawn_pid: None,
            // Local pseudo-request: never travels, never retries; the
            // wave's own stamp and timeout govern it.
            corr: (std::sync::Arc::from(self.host.as_str()), id),
            boot: self.boot_epoch(),
            deadline: None,
            attempt: 0,
            attempts_left: 0,
            backoff: policy.backoff,
            backoff_max: policy.backoff_max,
        };
        if with_handler {
            let (h, d) = self.acquire_handler(sys);
            req.handler = Some(h);
            req.phase = super::ReqPhase::HandlerForLocal;
            self.rpc.insert(id, req);
            self.arm(sys, d, TimerKind::ReqStep(id));
        } else {
            let cost = self.op_cost(&op);
            let d = sys.scale_cost(cost);
            self.rpc.insert(id, req);
            self.arm(sys, d, TimerKind::ReqStep(id));
        }
    }

    /// A broadcast request arrived from sibling `from_host`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_bcast(
        &mut self,
        sys: &mut dyn Sys,
        conn: ConnId,
        from_host: &str,
        stamp: Stamp,
        user: u32,
        op: Op,
        route: Route,
    ) {
        if !stamp.verify(self.auth.stamp_secret()) {
            self.note(
                sys,
                format!("broadcast with bad stamp from {from_host}; ignored"),
            );
            return;
        }
        let key = stamp.key();
        if self.rpc.bcast_seen(&key) || self.bcasts.contains_key(&key) {
            // Old request within the retention window — or a wave still in
            // progress, which counts as seen regardless of the window.
            self.stats.bcasts_suppressed += 1;
            sys.trace(
                TraceCategory::Broadcast,
                format!("suppress duplicate {}#{} from {from_host}", key.0, key.1),
            );
            // A wire-duplicated wave on the upstream connection of a wave
            // still in progress needs no answer: the real aggregate is
            // coming on that very connection, and an eager `BcastDone`
            // would make the parent finalize without it. Duplicates via
            // an alternate graph path (or after completion) still get the
            // marker so that parent stops waiting on this child.
            let in_progress_upstream = self
                .bcasts
                .get(&key)
                .is_some_and(|b| b.upstream == Some(conn));
            if !in_progress_upstream {
                let _ = self.send_msg(sys, conn, &Msg::BcastDone { stamp });
            }
            return;
        }
        let now = sys.now();
        self.rpc.note_bcast(key.clone(), now);
        self.stats.bcasts_forwarded += 1;

        // Graph cover: forward to every sibling except the sender and any
        // host the request already visited.
        let forward_targets: Vec<String> = self
            .siblings
            .keys()
            .filter(|h| h.as_str() != from_host && !route.contains(h))
            .cloned()
            .collect();
        let forwarded = forward_targets.is_empty();
        let state = BcastState {
            stamp: stamp.clone(),
            op: op.clone(),
            user,
            upstream: Some(conn),
            reply_req: None,
            parts: Vec::new(),
            pending_children: BTreeSet::new(),
            local_done: false,
            done_sent: false,
            forward_handler: None,
            respond_handler: None,
            forward_targets,
            forwarded,
            agg_buf: Vec::new(),
            agg_count: 0,
            agg_received: BTreeSet::new(),
            missing: BTreeSet::new(),
            route_in: route,
            merge_queue: Vec::new(),
            combine_started: false,
            merges_outstanding: 0,
            merge_free_at: SimTime::ZERO,
            timeout_token: None,
        };
        self.bcasts.insert(key.clone(), state);
        if sys.spans_enabled() {
            sys.span(
                "bcast.relay",
                format!("{}@{}", key.0, key.1),
                SpanPhase::Begin,
            );
        }
        sys.trace(
            TraceCategory::Broadcast,
            format!(
                "receive {}#{} from {from_host}, forward to {:?}",
                key.0, key.1, self.bcasts[&key].forward_targets
            ),
        );

        // Respond-task first (a handler gathers and answers), then the
        // forward-task — the dispatcher serializes the two hand-offs.
        self.begin_local_slice(sys, &key, user, op, true);
        let has_targets = !self.bcasts[&key].forward_targets.is_empty();
        if has_targets {
            let (h, d) = self.acquire_handler(sys);
            if let Some(b) = self.bcasts.get_mut(&key) {
                b.forward_handler = Some(h);
            }
            self.arm(sys, d, TimerKind::BcastForward(key.clone()));
        }
        let timeout = self.cfg.bcast_timeout;
        let tok = self.arm(sys, timeout, TimerKind::BcastTimeout(key.clone()));
        if let Some(b) = self.bcasts.get_mut(&key) {
            b.timeout_token = Some(tok);
        }
    }

    /// The forward handler is ready: send the wave downstream.
    pub(crate) fn bcast_forward_ready(&mut self, sys: &mut dyn Sys, key: &BcastKey) {
        let Some(b) = self.bcasts.get(key) else {
            return;
        };
        let stamp = b.stamp.clone();
        let user = b.user;
        let op = b.op.clone();
        let mut route = b.route_in.clone();
        route.push(self.host.clone());
        let targets = b.forward_targets.clone();
        sys.trace(
            TraceCategory::Broadcast,
            format!("forward {}#{} -> {targets:?}", key.0, key.1),
        );
        // The wave body is identical for every sibling: encode the message
        // once and fan out cheap shared-buffer clones of the bytes.
        let msg = Msg::Bcast {
            stamp,
            user,
            op,
            route,
        };
        let wire = msg.to_bytes();
        for host in targets {
            let Some(&conn) = self.siblings.get(&host) else {
                continue;
            };
            if sys.send(conn, wire.clone()).is_ok() {
                if let Some(b) = self.bcasts.get_mut(key) {
                    b.pending_children.insert(host);
                }
            }
        }
        if let Some(b) = self.bcasts.get_mut(key) {
            b.forwarded = true;
        }
        self.maybe_complete(sys, key);
    }

    /// The local slice finished gathering.
    pub(crate) fn bcast_local_complete(&mut self, sys: &mut dyn Sys, key: &BcastKey, reply: Reply) {
        let Some(b) = self.bcasts.get_mut(key) else {
            return;
        };
        b.local_done = true;
        sys.trace(
            TraceCategory::Broadcast,
            format!("local slice done {}#{}", key.0, key.1),
        );
        let b = self.bcasts.get_mut(key).expect("checked");
        match b.upstream {
            None => b.parts.push(reply),
            Some(_) => {
                // Relay: the local slice becomes the first part of the
                // subtree's single upstream aggregate.
                let mut route = b.route_in.clone();
                route.push(self.host.clone());
                let part = BcastPart {
                    host: self.host.clone(),
                    reply,
                    route,
                };
                push_part(&mut b.agg_buf, &mut b.agg_count, &part);
            }
        }
        self.maybe_complete(sys, key);
    }

    /// A downstream host's answer arrived.
    pub(crate) fn handle_bcast_resp(
        &mut self,
        sys: &mut dyn Sys,
        _conn: ConnId,
        stamp: Stamp,
        resp_host: String,
        reply: Reply,
        route: Route,
    ) {
        let key = stamp.key();
        sys.trace(
            TraceCategory::Broadcast,
            format!(
                "part from {resp_host} for {}#{} (route {route})",
                key.0, key.1
            ),
        );
        let Some(b) = self.bcasts.get(&key) else {
            return;
        };
        match b.upstream {
            None => {
                // Originator: queue the part for the combine phase.
                self.queue_part(sys, &key, resp_host, reply, route);
            }
            Some(_) => {
                // Relay: fold the single-part answer into the subtree
                // aggregate like any child contribution.
                let b = self.bcasts.get_mut(&key).expect("checked");
                let part = BcastPart {
                    host: resp_host,
                    reply,
                    route,
                };
                push_part(&mut b.agg_buf, &mut b.agg_count, &part);
            }
        }
    }

    /// A child subtree's aggregated answers arrived in one frame.
    pub(crate) fn handle_bcast_agg(
        &mut self,
        sys: &mut dyn Sys,
        from_host: &str,
        stamp: Stamp,
        parts: bytes::Bytes,
        missing: Vec<String>,
    ) {
        let key = stamp.key();
        let Some(b) = self.bcasts.get(&key) else {
            return;
        };
        sys.trace(
            TraceCategory::Broadcast,
            format!(
                "aggregate from {from_host} for {}#{} ({} missing)",
                key.0,
                key.1,
                missing.len()
            ),
        );
        match b.upstream {
            None => {
                // Originator: unpack the batch and queue each part for the
                // combine phase (the per-part merge cost model is
                // unchanged — only the transit cost collapsed).
                let decoded: Vec<BcastPart> = match decode_batch(&parts) {
                    Ok(ps) => ps,
                    Err(e) => {
                        self.note(sys, format!("bad aggregate from {from_host}: {e}"));
                        Vec::new()
                    }
                };
                for part in decoded {
                    self.queue_part(sys, &key, part.host, part.reply, part.route);
                }
                let b = self.bcasts.get_mut(&key).expect("checked");
                b.agg_received.insert(from_host.to_string());
                b.missing.extend(missing);
            }
            Some(_) => {
                // Relay: splice the child's frames onto ours byte-for-byte
                // — the in-network aggregation fast path.
                let b = self.bcasts.get_mut(&key).expect("checked");
                let before = b.agg_count;
                append_batch(&mut b.agg_buf, &mut b.agg_count, &parts);
                let spliced = u64::from(b.agg_count - before);
                b.agg_received.insert(from_host.to_string());
                b.missing.extend(missing);
                self.obs.with(|r| r.add(self.obs.parts_spliced, spliced));
            }
        }
    }

    /// Queues one gathered part at the originator. During the wave the
    /// part just waits; once the combine phase has begun (a late
    /// straggler after a timeout), it gets its serialized slot at once.
    fn queue_part(
        &mut self,
        sys: &mut dyn Sys,
        key: &BcastKey,
        host: String,
        reply: Reply,
        route: Route,
    ) {
        self.learn_route(&route);
        let Some(b) = self.bcasts.get_mut(key) else {
            return;
        };
        b.merge_queue.push((host, reply, route));
        if b.combine_started {
            self.schedule_merge_slot(sys, key);
        }
    }

    /// Arms one serialized originator merge slot.
    fn schedule_merge_slot(&mut self, sys: &mut dyn Sys, key: &BcastKey) {
        let now = sys.now();
        let cost = sys.scale_cost(self.cfg.merge_cost);
        let Some(b) = self.bcasts.get_mut(key) else {
            return;
        };
        b.merges_outstanding += 1;
        let start = if b.merge_free_at > now {
            b.merge_free_at
        } else {
            now
        };
        let ready = start + cost;
        b.merge_free_at = ready;
        let delay = ready.saturating_since(now);
        self.arm(sys, delay, TimerKind::BcastMerge(key.clone()));
    }

    /// An originator merge slot completed.
    pub(crate) fn bcast_merge_slot(&mut self, sys: &mut dyn Sys, key: &BcastKey) {
        let Some(b) = self.bcasts.get_mut(key) else {
            return;
        };
        if b.upstream.is_none() {
            if b.merges_outstanding > 0 {
                b.merges_outstanding -= 1;
            }
            if !b.merge_queue.is_empty() {
                let (_host, reply, _route) = b.merge_queue.remove(0);
                b.parts.push(reply);
            }
            self.maybe_complete(sys, key);
        }
    }

    /// A child subtree reported completion.
    pub(crate) fn bcast_child_done(&mut self, sys: &mut dyn Sys, key: &BcastKey, child: &str) {
        if let Some(b) = self.bcasts.get_mut(key) {
            b.pending_children.remove(child);
        }
        self.maybe_complete(sys, key);
    }

    /// A child's channel broke (or never came up): complete without it and
    /// record the loss — unless its aggregate already arrived, in which
    /// case its subtree's answers are all present.
    pub(crate) fn bcast_child_lost(&mut self, sys: &mut dyn Sys, key: &BcastKey, child: &str) {
        if let Some(b) = self.bcasts.get_mut(key) {
            if b.pending_children.remove(child) && !b.agg_received.contains(child) {
                b.missing.insert(child.to_string());
            }
        }
        self.maybe_complete(sys, key);
    }

    /// The wave safety timeout fired.
    pub(crate) fn bcast_timeout(&mut self, sys: &mut dyn Sys, key: &BcastKey) {
        let Some(b) = self.bcasts.get_mut(key) else {
            return;
        };
        if !b.pending_children.is_empty() || !b.forwarded {
            let stragglers: Vec<String> = b.pending_children.iter().cloned().collect();
            for h in &stragglers {
                if !b.agg_received.contains(h) {
                    b.missing.insert(h.clone());
                }
            }
            b.pending_children.clear();
            b.forwarded = true;
            b.timeout_token = None;
            self.note(
                sys,
                format!(
                    "broadcast {}#{} timed out waiting for {stragglers:?}",
                    key.0, key.1
                ),
            );
        }
        self.maybe_complete(sys, key);
    }

    /// Checks whether this LPM's participation in the wave is complete.
    fn maybe_complete(&mut self, sys: &mut dyn Sys, key: &BcastKey) {
        let Some(b) = self.bcasts.get(key) else {
            return;
        };
        let gathered = b.local_done && b.forwarded && b.pending_children.is_empty();
        if !gathered {
            return;
        }
        if b.upstream.is_none() && !b.combine_started {
            // Gather-then-combine: the origin's serialized merge slots
            // start only once the wave has quiesced, so every contributor
            // pays a full slot at the tail — the Table 3 shape, where an
            // extra answering host costs an extra merge even when its
            // reply arrived early and in parallel.
            let parts_waiting = b.merge_queue.len();
            let b = self.bcasts.get_mut(key).expect("checked");
            b.combine_started = true;
            for _ in 0..parts_waiting {
                self.schedule_merge_slot(sys, key);
            }
            if parts_waiting > 0 {
                return;
            }
        }
        let b = self.bcasts.get(key).expect("checked");
        let quiesced = b.merge_queue.is_empty() && b.merges_outstanding == 0;
        if !quiesced {
            return;
        }
        if b.upstream.is_none() {
            // Originator: merge parts into the final reply; a non-empty
            // missing list marks the result as partial.
            let b = self.bcasts.remove(key).expect("checked");
            if let Some(tok) = b.timeout_token {
                self.rpc.cancel(tok);
            }
            self.release_handler(sys, b.forward_handler);
            sys.trace(
                TraceCategory::Broadcast,
                format!(
                    "finalize {}#{} with {} parts ({} missing)",
                    key.0,
                    key.1,
                    b.parts.len(),
                    b.missing.len()
                ),
            );
            if sys.spans_enabled() {
                sys.span("bcast", format!("{}@{}", key.0, key.1), SpanPhase::End);
            }
            let combined = combine(&b.op, b.parts);
            let combined = if b.missing.is_empty() {
                combined
            } else {
                self.obs.with(|r| {
                    r.inc(self.obs.partial_flushes);
                    r.add(self.obs.missing_hosts, b.missing.len() as u64);
                });
                Reply::Partial {
                    missing: b.missing.into_iter().collect(),
                    inner: Box::new(combined),
                }
            };
            if let Some(req_id) = b.reply_req {
                self.finish_req(sys, req_id, combined);
            }
        } else if !b.done_sent {
            let b = self.bcasts.get_mut(key).expect("checked");
            b.done_sent = true;
            let upstream = b.upstream.expect("relay");
            let stamp = b.stamp.clone();
            let forward_handler = b.forward_handler.take();
            let respond_handler = b.respond_handler.take();
            let timeout_token = b.timeout_token.take();
            let missing: Vec<String> = b.missing.iter().cloned().collect();
            if self.cfg.reply_splicing {
                // The whole subtree's answers leave in a single aggregated
                // frame on this edge, then the wave-completion marker.
                let mut parts = Vec::with_capacity(4 + b.agg_buf.len());
                parts.extend_from_slice(&b.agg_count.to_be_bytes());
                parts.append(&mut b.agg_buf);
                let agg = Msg::BcastAgg {
                    stamp: stamp.clone(),
                    parts: bytes::Bytes::from(parts),
                    missing,
                };
                let _ = self.send_msg(sys, upstream, &agg);
            } else {
                // Splicing off (the congestion exhibit's baseline): every
                // collected part goes upstream as its own batch-of-one
                // frame — leaf-direct-style traffic on every edge toward
                // the originator — then one empty frame carries the
                // missing list.
                let mut batch = Vec::with_capacity(4 + b.agg_buf.len());
                batch.extend_from_slice(&b.agg_count.to_be_bytes());
                batch.append(&mut b.agg_buf);
                let decoded: Vec<BcastPart> = decode_batch(&batch).unwrap_or_default();
                for part in &decoded {
                    let mut one = Vec::new();
                    let mut count = 0u32;
                    push_part(&mut one, &mut count, part);
                    let mut framed = Vec::with_capacity(4 + one.len());
                    framed.extend_from_slice(&count.to_be_bytes());
                    framed.append(&mut one);
                    let _ = self.send_msg(
                        sys,
                        upstream,
                        &Msg::BcastAgg {
                            stamp: stamp.clone(),
                            parts: bytes::Bytes::from(framed),
                            missing: Vec::new(),
                        },
                    );
                }
                let _ = self.send_msg(
                    sys,
                    upstream,
                    &Msg::BcastAgg {
                        stamp: stamp.clone(),
                        parts: bytes::Bytes::from(0u32.to_be_bytes().to_vec()),
                        missing,
                    },
                );
            }
            let _ = self.send_msg(sys, upstream, &Msg::BcastDone { stamp });
            if let Some(tok) = timeout_token {
                self.rpc.cancel(tok);
            }
            self.release_handler(sys, forward_handler);
            self.release_handler(sys, respond_handler);
            self.bcasts.remove(key);
            if sys.spans_enabled() {
                sys.span(
                    "bcast.relay",
                    format!("{}@{}", key.0, key.1),
                    SpanPhase::End,
                );
            }
        }
    }
}

/// Appends one part to a relay's aggregation buffer as a framed entry.
fn push_part(buf: &mut Vec<u8>, count: &mut u32, part: &BcastPart) {
    let mut enc = Enc::pooled();
    enc.frame(part);
    buf.extend_from_slice(&enc.into_bytes());
    *count += 1;
}

/// Splices a child aggregate's frames (a batch minus its count header)
/// onto ours byte-for-byte — no decode, no re-encode.
fn append_batch(buf: &mut Vec<u8>, count: &mut u32, batch: &[u8]) {
    if batch.len() < 4 {
        return;
    }
    let n = u32::from_be_bytes(batch[..4].try_into().expect("4-byte header"));
    buf.extend_from_slice(&batch[4..]);
    *count += n;
}

/// Merges broadcast parts into one reply.
fn combine(op: &Op, parts: Vec<Reply>) -> Reply {
    match op {
        Op::Snapshot => {
            let mut procs = Vec::new();
            for p in parts {
                if let Reply::Snapshot { procs: mut ps, .. } = p {
                    procs.append(&mut ps);
                }
            }
            procs.sort_by(|a, b| (&a.gpid.host, a.gpid.pid).cmp(&(&b.gpid.host, b.gpid.pid)));
            Reply::Snapshot {
                host: "*".to_string(),
                procs,
            }
        }
        Op::Rusage { .. } => {
            let mut records = Vec::new();
            for p in parts {
                if let Reply::Rusage { records: mut rs } = p {
                    records.append(&mut rs);
                }
            }
            records.sort_by_key(|r| r.exited_us);
            Reply::Rusage { records }
        }
        Op::History { .. } => {
            let mut events = Vec::new();
            for p in parts {
                if let Reply::History { events: mut es } = p {
                    events.append(&mut es);
                }
            }
            events.sort_by_key(|e| e.at_us);
            Reply::History { events }
        }
        _ => Reply::Pong,
    }
}
