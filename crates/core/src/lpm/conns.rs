//! LPM connection management: hellos, sibling channels, outboxes.
//!
//! "The LPMs are able to perform authentication when channels are
//! created, rather than upon every request. ... The local LPM will create
//! a remote LPM when one is required, and maintain communication with the
//! remote LPM when this is possible."

use ppm_proto::msg::Msg;
use ppm_runtime::ids::ConnId;
use ppm_runtime::program::{ConnEvent, SysError};
use ppm_runtime::sys::Sys;
use ppm_runtime::trace::TraceCategory;

use crate::locator::{ChanProgress, HelloIdentity, LpmChannel};

use super::{BcastKey, ChanPurpose, ChannelSlot, ConnRole, Lpm, TimerKind};

/// Result of asking for a sibling connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SiblingStatus {
    /// Use this connection now.
    Connected(ConnId),
    /// A channel is being established; queue in the outbox.
    Pending,
    /// The host cannot be reached (unknown name).
    Unavailable,
}

impl Lpm {
    // ---- accept side ------------------------------------------------------

    /// First message on an accepted connection must be an authenticating
    /// `Hello` (Figure 3's "secure reliable communication channel").
    pub(crate) fn handle_hello(&mut self, sys: &mut dyn Sys, conn: ConnId, msg: Msg) {
        let Msg::Hello {
            user,
            host,
            is_tool,
            ccs,
            epoch,
            proof,
        } = msg
        else {
            // Protocol violation before authentication: drop the channel.
            self.conns.remove(&conn);
            let _ = sys.close(conn);
            return;
        };
        let ok = self.auth.check_hello(user, proof);
        if !ok {
            self.stats.auth_failures += 1;
            self.note(
                sys,
                format!("hello from {host} rejected (user {user}): bad proof"),
            );
            let nak = Msg::HelloAck {
                host: self.host.clone(),
                ok: false,
                ccs: self.ccs.clone(),
                epoch: self.epoch,
            };
            let _ = self.send_msg(sys, conn, &nak);
            self.conns.remove(&conn);
            let _ = sys.close(conn);
            return;
        }
        // Adopt the caller's CCS view if fresher, before acking with ours.
        self.consider_ccs(sys, &ccs, epoch);
        if is_tool {
            self.conns.insert(conn, ConnRole::Tool);
            self.ttl_deadline = None;
        } else {
            self.conns
                .insert(conn, ConnRole::Sibling(host.as_str().into()));
            self.siblings.entry(host.clone()).or_insert(conn);
            sys.trace(
                TraceCategory::Lpm,
                format!("sibling channel accepted from {host}"),
            );
        }
        let ack = Msg::HelloAck {
            host: self.host.clone(),
            ok: true,
            ccs: self.ccs.clone(),
            epoch: self.epoch,
        };
        let _ = self.send_msg(sys, conn, &ack);
        // Contact from a healthy sibling ends orphanhood.
        if !is_tool {
            self.recovered_contact(sys);
            self.maybe_pull_forest(sys, conn);
        }
    }

    // ---- initiating channels ----------------------------------------------

    /// Ensures a sibling connection toward `host`, starting a channel if
    /// needed.
    pub(crate) fn ensure_sibling(&mut self, sys: &mut dyn Sys, host: &str) -> SiblingStatus {
        if let Some(&conn) = self.siblings.get(host) {
            return SiblingStatus::Connected(conn);
        }
        if self.channels.contains_key(host) {
            return SiblingStatus::Pending;
        }
        match self.start_channel(sys, host, ChanPurpose::Sibling) {
            true => SiblingStatus::Pending,
            false => SiblingStatus::Unavailable,
        }
    }

    /// Starts a channel toward `host` for `purpose`. Returns `false` when
    /// the host name does not resolve.
    pub(crate) fn start_channel(
        &mut self,
        sys: &mut dyn Sys,
        host: &str,
        purpose: ChanPurpose,
    ) -> bool {
        let Ok(target) = sys.resolve_host(host) else {
            return false;
        };
        let identity = HelloIdentity {
            user: self.auth.uid().0,
            host: self.host.clone(),
            is_tool: false,
            ccs: self.ccs.clone(),
            epoch: self.epoch,
            proof: self.auth.proof(),
        };
        let retry = self.cfg.connect_retry;
        let attempts = self.cfg.connect_attempts;
        let chan = LpmChannel::start(sys, target, identity, retry, attempts);
        self.channels
            .insert(host.to_string(), ChannelSlot { chan, purpose });
        self.reindex_channel(host);
        true
    }

    /// Routes a connection event that may belong to a channel.
    pub(crate) fn channel_conn_event(
        &mut self,
        sys: &mut dyn Sys,
        host: &str,
        conn: ConnId,
        event: ConnEvent,
    ) {
        let Some(slot) = self.channels.get_mut(host) else {
            self.chan_conns.remove(&conn);
            return;
        };
        if !slot.chan.owns(conn) {
            self.chan_conns.remove(&conn);
            return;
        }
        let progress = slot.chan.on_conn_event(sys, event);
        self.apply_channel_progress(sys, host, progress);
    }

    /// Routes a message that may belong to a channel.
    pub(crate) fn channel_message(
        &mut self,
        sys: &mut dyn Sys,
        host: &str,
        conn: ConnId,
        data: bytes::Bytes,
    ) {
        let Some(slot) = self.channels.get_mut(host) else {
            self.chan_conns.remove(&conn);
            return;
        };
        if !slot.chan.owns(conn) {
            self.chan_conns.remove(&conn);
            return;
        }
        let progress = slot.chan.on_message(sys, data);
        self.apply_channel_progress(sys, host, progress);
    }

    /// A `ChannelRetry` timer fired.
    pub(crate) fn channel_retry(&mut self, sys: &mut dyn Sys, host: &str) {
        self.chan_retry_armed.remove(host);
        let Some(slot) = self.channels.get_mut(host) else {
            return;
        };
        let progress = slot.chan.retry(sys);
        self.apply_channel_progress(sys, host, progress);
    }

    /// Registers the channel's current connection id so events route back.
    ///
    /// `LpmChannel` opens a fresh connection per step, so the owner must
    /// re-register after every progress report.
    fn reindex_channel(&mut self, host: &str) {
        let Some(slot) = self.channels.get(host) else {
            return;
        };
        if let Some(conn) = slot.chan.current_conn() {
            self.chan_conns.insert(conn, host.into());
        }
    }

    fn apply_channel_progress(&mut self, sys: &mut dyn Sys, host: &str, progress: ChanProgress) {
        match progress {
            ChanProgress::Pending => {
                self.reindex_channel(host);
            }
            ChanProgress::RetryAfter(delay) => {
                if self.chan_retry_armed.insert(host.to_string()) {
                    self.arm(sys, delay, TimerKind::ChannelRetry(host.to_string()));
                }
            }
            ChanProgress::Ready {
                conn,
                created,
                peer_ccs,
                peer_epoch,
            } => {
                let slot = self.channels.remove(host).expect("channel exists");
                self.chan_conns.remove(&conn);
                self.conns.insert(conn, ConnRole::Sibling(host.into()));
                self.siblings.entry(host.to_string()).or_insert(conn);
                self.consider_ccs(sys, &peer_ccs, peer_epoch);
                self.note(
                    sys,
                    format!("sibling channel to {host} ready (created={created})"),
                );
                self.recovered_contact(sys);
                self.maybe_pull_forest(sys, conn);
                self.flush_outbox(sys, host, conn);
                self.channel_purpose_done(sys, host, slot.purpose, true);
            }
            ChanProgress::Failed(err) => {
                let slot = self.channels.remove(host);
                self.note(sys, format!("channel to {host} failed: {err}"));
                self.fail_outbox(sys, host, err);
                if let Some(slot) = slot {
                    self.channel_purpose_done(sys, host, slot.purpose, false);
                }
            }
        }
    }

    fn flush_outbox(&mut self, sys: &mut dyn Sys, host: &str, conn: ConnId) {
        let Some(queued) = self.outbox.remove(host) else {
            return;
        };
        for (msg, req_id) in queued {
            if self.send_msg(sys, conn, &msg).is_err() {
                if let Some(id) = req_id {
                    self.fail_request_transport(sys, id, "sibling channel broke during flush");
                }
            } else if let Some(id) = req_id {
                self.mark_sent(sys, id, conn);
            }
        }
    }

    fn fail_outbox(&mut self, sys: &mut dyn Sys, host: &str, err: SysError) {
        let Some(queued) = self.outbox.remove(host) else {
            return;
        };
        for (msg, req_id) in queued {
            if let Some(id) = req_id {
                // Transport-level failure: origin requests with attempt
                // budget left go into retry backoff instead of erroring.
                self.fail_request_transport(sys, id, &format!("cannot reach {host}: {err}"));
            } else if let Msg::Bcast { stamp, .. } = msg {
                // A broadcast child never came up: complete without it and
                // mark it missing.
                let key = stamp.key();
                self.bcast_child_lost(sys, &key, host);
            }
        }
    }

    // ---- connection loss ----------------------------------------------------

    pub(crate) fn on_conn_closed(&mut self, sys: &mut dyn Sys, conn: ConnId) {
        let Some(role) = self.conns.remove(&conn) else {
            return;
        };
        match role {
            ConnRole::Tool | ConnRole::AwaitHello => {}
            ConnRole::Sibling(host) => {
                let host: &str = &host;
                if self.siblings.get(host) == Some(&conn) {
                    self.siblings.remove(host);
                }
                self.note(sys, format!("sibling channel to {host} lost"));
                // Directed requests sent on this connection hit the retry
                // machinery: origin-side requests with budget left re-send
                // under the same correlation id; relays fail upstream.
                for id in self.rpc.sent_on(conn) {
                    self.fail_request_transport(sys, id, &format!("connection to {host} broke"));
                }
                // Broadcasts waiting on this child complete without it; the
                // loss surfaces in the origin's partial-result marker.
                let keys: Vec<BcastKey> = self
                    .bcasts
                    .iter()
                    .filter(|(_, b)| b.pending_children.contains(host))
                    .map(|(k, _)| k.clone())
                    .collect();
                for key in keys {
                    self.bcast_child_lost(sys, &key, host);
                }
                // Crash fallout: evict next-hops learned through the dead
                // peer so post-heal traffic re-learns routes instead of
                // bouncing off the broken hop. The dedup window is NOT
                // purged here — a transient partition keeps the same peer
                // incarnation, whose retries must still deduplicate.
                let evicted = self.route_cache.evict_via(host);
                if evicted > 0 {
                    self.note(sys, format!("peer {host} down: evicted {evicted} route(s)"));
                }
                self.on_sibling_lost(sys, host);
            }
        }
    }
}
