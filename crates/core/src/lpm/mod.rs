//! The local process manager.
//!
//! "The personal process manager, PPM, is a distributed program
//! implemented as a collection of user-level processes called local
//! process managers, LPMs." One LPM runs per (user, host), created on
//! demand by pmd. It is the process-creation server for the user's remote
//! processes, the collector of kernel events for adopted processes, a
//! sibling in the PPM communication graph, and a participant in crash
//! recovery.
//!
//! Internally the LPM mirrors the paper's multi-process structure: a
//! dispatcher classifies arriving messages; work that needs remote
//! communication is handed to handler processes from a reusable pool
//! ([`crate::handlers`]); handlers may block awaiting remote responses
//! without stalling the dispatcher. Costs (dispatch, handler fork/reuse,
//! per-operation work) are modelled explicitly so the regenerated Tables
//! 2 and 3 reproduce the paper's timings.
//!
//! The implementation is split by concern:
//! * [`mod@self`] — state, timers, and the [`Program`] event routing;
//! * `conns` — hellos, sibling channels, outboxes;
//! * `requests` — the staged request pipeline and local operations;
//! * `broadcast` — the graph-covering echo wave of Section 4;
//! * `recovery` — CCS seeking, probing, time-to-die (Section 5);
//! * `kernel_ev` — kernel event ingestion: genealogy, history, triggers.

mod broadcast;
mod conns;
mod kernel_ev;
mod recovery;
mod requests;

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use bytes::Bytes;
use ppm_proto::codec::Wire;
use ppm_proto::msg::{Msg, Op, Reply};
use ppm_proto::types::{Gpid, Route, Stamp};
use ppm_runtime::hashx::FastMap;
use ppm_runtime::ids::{ConnId, Port};
use ppm_runtime::program::{ConnEvent, KernelMsg, Program, SysError};
use ppm_runtime::signal::{ExitStatus, Signal};
use ppm_runtime::sys::Sys;
use ppm_runtime::time::{SimDuration, SimTime};
use ppm_runtime::trace::TraceCategory;

use crate::auth::Authenticator;
use crate::config::{lpm_port, PpmConfig};
use crate::genealogy::Genealogy;
use crate::handlers::{HandlerId, HandlerPool};
use crate::history::History;
use crate::locator::{LpmChannel, PmdExchange, RouteCache};
use crate::obs::LpmObs;
use crate::rpc::{ReplyTo, ReqPhase, RetryPolicy, RpcKey, RpcTable, TimerKind};
use crate::trigger_engine::TriggerEngine;
use crate::users::UserEntry;

/// Role of an accepted or established connection.
///
/// Cloned on every dispatched message, so the sibling host name is an
/// `Arc<str>`: the per-message cost is a reference-count bump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ConnRole {
    /// Accepted; awaiting the authenticating `Hello`.
    AwaitHello,
    /// An authenticated tool.
    Tool,
    /// An authenticated sibling LPM on the named host.
    Sibling(Arc<str>),
}

/// Why a channel toward a host is being established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ChanPurpose {
    /// Ordinary sibling connection (requests queued in the outbox).
    Sibling,
    /// Recovery: trying recovery-list candidate at this rank.
    Seek { rank: usize },
    /// Recovery: probing a higher-priority host while acting as CCS.
    Probe,
}

pub(crate) struct ChannelSlot {
    pub chan: LpmChannel,
    pub purpose: ChanPurpose,
}

/// Deduplication key of one broadcast wave: `(origin host, origin seq)`.
/// An alias of the RPC correlation key — broadcast stamps and directed
/// requests share one dedup window in the [`RpcTable`].
pub(crate) type BcastKey = RpcKey;

/// State of one broadcast this LPM participates in.
#[derive(Debug)]
pub(crate) struct BcastState {
    pub stamp: Stamp,
    pub op: Op,
    pub user: u32,
    /// `None` at the originator, else the upstream sibling connection.
    pub upstream: Option<ConnId>,
    /// Internal request to finish with the merged reply (originator only).
    pub reply_req: Option<u64>,
    /// Accumulated parts (originator only).
    pub parts: Vec<Reply>,
    /// Hosts we forwarded to and still owe us a `BcastDone`.
    pub pending_children: BTreeSet<String>,
    /// The local slice finished.
    pub local_done: bool,
    /// The `BcastDone` has been sent upstream (non-originator).
    pub done_sent: bool,
    /// Handler blocked on the downstream wave, if any.
    pub forward_handler: Option<HandlerId>,
    /// Handler that gathered and sent the local slice; it blocks until
    /// this node's whole participation completes (non-originator).
    pub respond_handler: Option<HandlerId>,
    /// Hosts the wave will be forwarded to (decided at receipt).
    pub forward_targets: Vec<String>,
    /// The downstream forward has been performed (or none was needed).
    pub forwarded: bool,
    /// Relay-side aggregation: [`ppm_proto::msg::BcastPart`] frames
    /// accumulated for the one upstream aggregate (batch body without its
    /// count header). Child aggregates are spliced in byte-for-byte — no
    /// decode, no re-encode — so each record crosses every edge once.
    pub agg_buf: Vec<u8>,
    /// Number of part frames in `agg_buf`.
    pub agg_count: u32,
    /// Direct children whose aggregate already arrived (a later
    /// connection loss must not mark an answered subtree as missing).
    pub agg_received: BTreeSet<String>,
    /// Hosts of this subtree whose answers never arrived (lost children,
    /// straggler timeouts). Travels upstream in the aggregate; at the
    /// origin it becomes the [`Reply::Partial`] marker.
    pub missing: BTreeSet<String>,
    /// Route the request had when it reached us.
    pub route_in: Route,
    /// Replies waiting for their merge slot (originator only).
    pub merge_queue: Vec<(String, Reply, Route)>,
    /// Whether the originator's combine phase has begun: parts gather
    /// during the wave and every serialized merge slot starts once the
    /// wave quiesces, so each contributor costs a full slot at the tail.
    pub combine_started: bool,
    /// Merge work in flight.
    pub merges_outstanding: u32,
    /// When merging can next start (serializes merge costs).
    pub merge_free_at: SimTime,
    pub timeout_token: Option<u64>,
}

/// Recovery mode (Section 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum RecovMode {
    Normal,
    /// Walking the `.recovery` list.
    Seeking {
        rank: usize,
    },
    /// No recovery host reachable; counting down time-to-die.
    Orphan {
        deadline: SimTime,
    },
}

/// Externally visible LPM counters (tests and tools).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpmStats {
    /// Requests that entered the pipeline.
    pub requests: u64,
    /// Broadcasts originated.
    pub bcasts_originated: u64,
    /// Broadcasts forwarded.
    pub bcasts_forwarded: u64,
    /// Duplicate broadcasts suppressed by the stamp window.
    pub bcasts_suppressed: u64,
    /// Directed requests relayed for other LPMs.
    pub relays: u64,
    /// Requests answered from a route-cache relay instead of a new channel.
    pub route_cache_hits: u64,
    /// Hello authentication failures.
    pub auth_failures: u64,
    /// Origin-side transport retries (re-sends of the same correlation id).
    pub retries: u64,
    /// Duplicate directed-request deliveries absorbed by the dedup window
    /// (replayed cached replies and in-flight suppressions).
    pub dups_suppressed: u64,
    /// Operations executed by this LPM's handlers (the exactly-once
    /// observable: a retry or duplicate that slips past the dedup window
    /// shows up here as an extra execution).
    pub executed: u64,
}

/// The LPM program.
pub struct Lpm {
    pub(crate) cfg: PpmConfig,
    pub(crate) auth: Authenticator,
    pub(crate) recovery_list: Vec<String>,

    pub(crate) host: String,
    pub(crate) accept_port: Port,
    pub(crate) started_at: SimTime,
    /// Crash instant of the predecessor this LPM replaces; pmd sets it
    /// when respawning after a crash, and it drives re-adoption at start.
    pub(crate) respawn_of: Option<SimTime>,
    /// Re-adoption left survivors without their cross-host logical
    /// edges; pull sibling gossip over each new sibling channel until
    /// the forest is whole again.
    pub(crate) rebuilding: bool,
    /// Logical-parent edges of remote spawns observed at this LPM (as
    /// origin or relay): dest host → local pid there → logical parent.
    /// Served to respawned siblings rebuilding their forests.
    pub(crate) remote_children: BTreeMap<String, BTreeMap<u32, Gpid>>,

    pub(crate) conns: HashMap<ConnId, ConnRole>,
    pub(crate) siblings: BTreeMap<String, ConnId>,
    pub(crate) channels: BTreeMap<String, ChannelSlot>,
    pub(crate) chan_conns: HashMap<ConnId, Arc<str>>,
    pub(crate) chan_retry_armed: BTreeSet<String>,
    pub(crate) outbox: BTreeMap<String, Vec<(Msg, Option<u64>)>>,
    pub(crate) route_cache: RouteCache,
    /// The last reachability epoch the route cache was validated at;
    /// when `sys.net_epoch()` moves past it, cached routes with a dead
    /// leg are evicted before the next lookup.
    pub(crate) route_epoch: u64,

    /// The unified RPC substrate: pending requests, correlation index,
    /// dedup window, spawn waits and timer registry.
    pub(crate) rpc: RpcTable,

    pub(crate) bcast_seq: u64,
    pub(crate) bcasts: FastMap<BcastKey, BcastState>,

    pub(crate) tree: Genealogy,
    pub(crate) history: History,
    pub(crate) triggers: TriggerEngine,
    pub(crate) pool: HandlerPool,
    /// The dispatcher serializes handler hand-offs (forking is done by the
    /// dispatcher process in the paper's design).
    pub(crate) dispatcher_free_at: SimTime,

    pub(crate) ccs: String,
    pub(crate) epoch: u64,
    pub(crate) recov: RecovMode,
    pub(crate) ttl_deadline: Option<SimTime>,
    pub(crate) probe_armed: bool,
    pub(crate) ttd_armed: bool,
    /// The immovable time-to-die deadline, set when contact was first
    /// lost; cleared on any recovery.
    pub(crate) orphan_deadline: Option<SimTime>,
    pub(crate) last_keepalive: SimTime,
    /// In-flight name-server CCS query (NameServer recovery policy).
    pub(crate) ns_query: Option<PmdExchange>,

    /// When each outstanding recovery probe was sent, for RTT metrics.
    pub(crate) probe_sent: BTreeMap<String, SimTime>,

    pub(crate) stats: LpmStats,
    /// Shared metrics registry and pre-registered ids.
    pub(crate) obs: LpmObs,
}

impl std::fmt::Debug for Lpm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lpm")
            .field("host", &self.host)
            .field("user", &self.auth.uid())
            .field("siblings", &self.siblings.keys().collect::<Vec<_>>())
            .field("ccs", &self.ccs)
            .field("epoch", &self.epoch)
            .field("tracked", &self.tree.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Lpm {
    /// Creates an LPM for a user account (pmd calls this).
    pub fn new(entry: &UserEntry) -> Self {
        Lpm {
            cfg: entry.config.clone(),
            auth: Authenticator::new(entry.cred),
            recovery_list: entry.recovery.clone(),
            host: String::new(),
            accept_port: lpm_port(entry.cred.uid),
            started_at: SimTime::ZERO,
            respawn_of: None,
            rebuilding: false,
            remote_children: BTreeMap::new(),
            conns: HashMap::new(),
            siblings: BTreeMap::new(),
            channels: BTreeMap::new(),
            chan_conns: HashMap::new(),
            chan_retry_armed: BTreeSet::new(),
            outbox: BTreeMap::new(),
            route_cache: RouteCache::default(),
            route_epoch: 0,
            rpc: RpcTable::new(),
            bcast_seq: 0,
            bcasts: FastMap::default(),
            tree: Genealogy::default(),
            history: History::new(entry.config.history_cap, entry.config.rusage_cap),
            triggers: TriggerEngine::new(),
            pool: {
                let mut pool = HandlerPool::new(
                    entry.config.handler_fork_cost,
                    entry.config.handler_reuse_cost,
                    entry.config.handler_idle_ttl,
                    entry.config.handler_max,
                );
                pool.set_reuse_enabled(entry.config.handler_reuse);
                pool
            },
            dispatcher_free_at: SimTime::ZERO,
            ccs: String::new(),
            epoch: 0,
            recov: RecovMode::Normal,
            ttl_deadline: None,
            probe_armed: false,
            ttd_armed: false,
            orphan_deadline: None,
            last_keepalive: SimTime::ZERO,
            ns_query: None,
            probe_sent: BTreeMap::new(),
            stats: LpmStats::default(),
            obs: LpmObs::new(),
        }
    }

    /// Creates an LPM replacing one that died in a crash at `crashed_at`
    /// (pmd calls this when [`crate::pmd::PmdOptions::respawn_lpms`] is
    /// on). At start it re-adopts surviving same-user processes and
    /// rebuilds its genealogy forest.
    pub fn respawned(entry: &UserEntry, crashed_at: SimTime) -> Self {
        let mut lpm = Lpm::new(entry);
        lpm.respawn_of = Some(crashed_at);
        lpm
    }

    /// Cumulative counters.
    pub fn stats(&self) -> LpmStats {
        self.stats
    }

    // ---- model-checker observables --------------------------------------

    /// The coordinator this LPM currently believes in, with the election
    /// epoch that belief carries. The model checker's election-convergence
    /// predicate compares these across live siblings at quiescence.
    pub fn ccs_view(&self) -> (&str, u64) {
        (&self.ccs, self.epoch)
    }

    /// Whether this LPM is still rebuilding its forest after a respawn.
    pub fn is_rebuilding(&self) -> bool {
        self.rebuilding
    }

    /// Re-adopted survivors whose place in the forest is still
    /// unexplained (the crash-manufactured roots). The model checker's
    /// no-orphan predicate requires this to reach zero at quiescence.
    pub fn orphan_root_count(&self) -> usize {
        self.failure_roots().len()
    }

    // ---- small shared helpers -------------------------------------------

    /// This incarnation's boot epoch: the start instant in µs, floored at
    /// 1 so a live LPM never stamps the reserved "unstamped" value 0.
    /// A respawn always boots strictly later than its predecessor, so
    /// epochs order incarnations of the same host.
    pub(crate) fn boot_epoch(&self) -> u64 {
        self.started_at.as_micros().max(1)
    }

    pub(crate) fn arm(&mut self, sys: &mut dyn Sys, d: SimDuration, kind: TimerKind) -> u64 {
        self.rpc.arm(sys, d, kind)
    }

    /// The transport-retry policy for origin-side requests.
    pub(crate) fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            attempts: self.cfg.req_attempts.max(1),
            backoff: self.cfg.req_backoff,
            backoff_max: self.cfg.req_backoff_max.max(self.cfg.req_backoff),
        }
    }

    pub(crate) fn send_msg(
        &mut self,
        sys: &mut dyn Sys,
        conn: ConnId,
        msg: &Msg,
    ) -> Result<(), SysError> {
        sys.send(conn, msg.to_bytes())
    }

    pub(crate) fn alloc_internal_id(&mut self) -> u64 {
        let seq = self.rpc.next_seq();
        // Globally unique: salt the counter with the host name so relayed
        // ids from different originators cannot collide.
        let mut salt: u64 = 0xCBF2_9CE4_8422_2325;
        for b in self.host.bytes() {
            salt ^= b as u64;
            salt = salt.wrapping_mul(0x0000_0100_0000_01B3);
        }
        (salt & 0xFFFF_FFFF) << 32 | seq
    }

    /// Acquires a handler; hand-offs serialize through the dispatcher.
    /// Returns the handler and the delay until it is ready for work.
    pub(crate) fn acquire_handler(&mut self, sys: &mut dyn Sys) -> (HandlerId, SimDuration) {
        let now = sys.now();
        let acq = self.pool.acquire(now);
        let base = if self.dispatcher_free_at > now {
            self.dispatcher_free_at
        } else {
            now
        };
        // Scale the nominal handler cost by CPU class and load, like any
        // CPU-bound activity.
        let scaled = sys.scale_cost(acq.cost);
        let ready = base + scaled;
        self.dispatcher_free_at = ready;
        (acq.id, ready.saturating_since(now))
    }

    pub(crate) fn release_handler(&mut self, sys: &mut dyn Sys, handler: Option<HandlerId>) {
        if let Some(h) = handler {
            let now = sys.now();
            self.pool.release(h, now);
        }
    }

    pub(crate) fn note(&mut self, sys: &mut dyn Sys, text: String) {
        sys.trace(TraceCategory::Lpm, text);
    }

    pub(crate) fn note_recovery(&mut self, sys: &mut dyn Sys, text: String) {
        sys.trace(TraceCategory::Recovery, text);
    }

    fn housekeeping(&mut self, sys: &mut dyn Sys) {
        let now = sys.now();
        self.pool.reap_idle(now);
        // Shared retention window: broadcast stamps and cached replies of
        // executed sibling requests age out together.
        let window = self.cfg.bcast_window;
        let purged = self.rpc.purge_dedup(now, window);
        if purged > 0 {
            // A purged entry is no longer recognized: a replayed copy of
            // that wave or request would be reprocessed from scratch.
            sys.trace(
                TraceCategory::Broadcast,
                format!("stamp window purge {purged}"),
            );
        }
        let retention = self.cfg.dead_retention;
        self.tree
            .prune_older_than(now.as_micros(), retention.as_micros());
        self.ttl_check(sys, now);
        self.recovery_housekeeping(sys);
        let interval = self.cfg.housekeeping_interval;
        self.arm(sys, interval, TimerKind::Housekeeping);
    }

    fn ttl_check(&mut self, sys: &mut dyn Sys, now: SimTime) {
        let have_tools = self.conns.values().any(|r| *r == ConnRole::Tool);
        let ccs_hold = self.ccs == self.host && !self.siblings.is_empty();
        let active = self.tree.live_count() > 0
            || have_tools
            || ccs_hold
            || !self.bcasts.is_empty()
            || self.rpc.any_active();
        if active {
            self.ttl_deadline = None;
            return;
        }
        match self.ttl_deadline {
            None => {
                let ttl = self.cfg.lpm_ttl;
                self.ttl_deadline = Some(now + ttl);
            }
            Some(deadline) if now >= deadline => {
                self.note(sys, "time-to-live expired; LPM exiting".to_string());
                self.shutdown(sys, 0);
            }
            Some(_) => {}
        }
    }

    pub(crate) fn shutdown(&mut self, sys: &mut dyn Sys, code: i32) {
        let conns: Vec<ConnId> = self.conns.keys().copied().collect();
        let mut conns = conns;
        conns.sort_unstable();
        for c in conns {
            let _ = sys.close(c);
        }
        sys.exit(code);
    }
}

impl Program for Lpm {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        self.host = sys.host_name().to_string();
        self.started_at = sys.now();
        self.tree = Genealogy::new(self.host.clone());
        if sys.listen(self.accept_port).is_err() {
            // Another LPM already serves this user here. This happens when
            // pmd lost its registry (the pmd-crash failure mode of
            // Section 5) and spawned a duplicate; the duplicate yields.
            sys.trace(
                TraceCategory::Lpm,
                format!(
                    "duplicate LPM for {} on {}; exiting",
                    self.auth.uid(),
                    self.host
                ),
            );
            sys.exit(1);
            return;
        }
        sys.register_kernel_socket();
        // Expose the metrics registry to the world hub so harnesses and
        // the CLI can sample it without simulated traffic.
        sys.register_metrics(
            format!("{}/{}", self.host, self.auth.uid()),
            self.obs.registry.clone(),
        );
        // Initial CCS: the top of the recovery list, or this host. Under
        // the name-server policy the authoritative answer comes from the
        // name server; this host stands in until it arrives.
        self.ccs = match &self.cfg.recovery_policy {
            crate::config::RecoveryPolicy::RecoveryFile => self
                .recovery_list
                .first()
                .cloned()
                .unwrap_or_else(|| self.host.clone()),
            crate::config::RecoveryPolicy::NameServer { .. } => self.host.clone(),
        };
        if matches!(
            self.cfg.recovery_policy,
            crate::config::RecoveryPolicy::NameServer { .. }
        ) {
            self.begin_ns_query(sys, None);
        }
        let interval = self.cfg.housekeeping_interval;
        self.arm(sys, interval, TimerKind::Housekeeping);
        self.note(
            sys,
            format!(
                "LPM up for {} on {} (accept {}, ccs {})",
                self.auth.uid(),
                self.host,
                self.accept_port,
                self.ccs
            ),
        );
        if let Some(crashed_at) = self.respawn_of {
            self.readopt_survivors(sys, crashed_at);
        }
    }

    fn on_conn_event(&mut self, sys: &mut dyn Sys, conn: ConnId, event: ConnEvent) {
        // Channel-owned connections are routed to their state machines.
        if let Some(host) = self.chan_conns.get(&conn).cloned() {
            self.channel_conn_event(sys, &host, conn, event);
            return;
        }
        if self.ns_query.as_ref().is_some_and(|x| x.owns(conn)) {
            self.ns_conn_event(sys, event);
            return;
        }
        match event {
            ConnEvent::Accepted { .. } => {
                self.conns.insert(conn, ConnRole::AwaitHello);
            }
            ConnEvent::Closed => self.on_conn_closed(sys, conn),
            ConnEvent::Established | ConnEvent::Failed(_) => {
                // Non-channel outbound connections do not exist; ignore.
            }
        }
    }

    fn on_message(&mut self, sys: &mut dyn Sys, conn: ConnId, data: Bytes) {
        if let Some(host) = self.chan_conns.get(&conn).cloned() {
            self.channel_message(sys, &host, conn, data);
            return;
        }
        if self.ns_query.as_ref().is_some_and(|x| x.owns(conn)) {
            self.ns_message(sys, data);
            return;
        }
        let Ok(msg) = Msg::from_bytes(&data) else {
            self.note(sys, format!("undecodable message on {conn}; dropping"));
            if self.conns.get(&conn) == Some(&ConnRole::AwaitHello) {
                // Protocol violation before authentication: hang up.
                self.conns.remove(&conn);
                let _ = sys.close(conn);
            }
            return;
        };
        match self.conns.get(&conn).cloned() {
            Some(ConnRole::AwaitHello) => self.handle_hello(sys, conn, msg),
            Some(ConnRole::Tool) => self.handle_tool_msg(sys, conn, msg),
            Some(ConnRole::Sibling(host)) => self.handle_sibling_msg(sys, conn, &host, msg),
            None => {
                // Message on an unknown connection (e.g. raced with close).
            }
        }
    }

    fn on_kernel_batch(&mut self, sys: &mut dyn Sys, data: bytes::Bytes) {
        ppm_proto::kernel_wire::for_each_kernel_msg(&data, |msg| {
            self.ingest_kernel_event(sys, msg);
        });
    }

    fn on_kernel_event(&mut self, sys: &mut dyn Sys, msg: KernelMsg) {
        self.ingest_kernel_event(sys, msg);
    }

    fn on_timer(&mut self, sys: &mut dyn Sys, token: u64) {
        let Some(kind) = self.rpc.take_timer(token) else {
            return; // cancelled
        };
        match kind {
            TimerKind::Housekeeping => self.housekeeping(sys),
            TimerKind::ReqStep(id) => self.req_step(sys, id),
            TimerKind::ReqTimeout(id) => self.req_timeout(sys, id),
            TimerKind::ReqRetry(id) => self.req_retry(sys, id),
            TimerKind::ChannelRetry(host) => self.channel_retry(sys, &host),
            TimerKind::BcastForward(key) => self.bcast_forward_ready(sys, &key),
            TimerKind::BcastMerge(key) => self.bcast_merge_slot(sys, &key),
            TimerKind::BcastTimeout(key) => self.bcast_timeout(sys, &key),
            TimerKind::Probe => self.probe_tick(sys),
            TimerKind::SeekRetry => self.seek_retry(sys),
            TimerKind::TimeToDie => self.time_to_die(sys),
            TimerKind::NsRetry => self.ns_retry(sys),
        }
    }

    fn on_child_exit(
        &mut self,
        sys: &mut dyn Sys,
        child: ppm_runtime::ids::Pid,
        status: ExitStatus,
    ) {
        // Child exits also arrive as kernel Exit events (the LPM traces
        // its children); this hook only logs the reaping.
        let _ = (sys, child, status);
    }

    fn on_signal(&mut self, sys: &mut dyn Sys, signal: Signal) -> ppm_runtime::program::SigAction {
        if signal == Signal::Term || signal == Signal::Hup {
            self.shutdown(sys, 1);
        }
        ppm_runtime::program::SigAction::Handled
    }

    fn state_digest(&self) -> u64 {
        use std::hash::Hasher;
        // Fold the state that steers future protocol behaviour; leave out
        // monotonic diagnostics (stats, history) so behaviourally
        // identical interleavings merge in the model checker.
        let mut h = ppm_runtime::hashx::HashX::default();
        h.write(self.host.as_bytes());
        h.write(self.ccs.as_bytes());
        h.write_u64(self.epoch);
        h.write(format!("{:?}", self.recov).as_bytes());
        h.write_u8(u8::from(self.rebuilding));
        for s in self.siblings.keys() {
            h.write(s.as_bytes());
        }
        h.write_u64(self.rpc.digest());
        for rec in self.tree.snapshot() {
            h.write(rec.gpid.host.as_bytes());
            h.write_u32(rec.gpid.pid);
            h.write_u32(rec.ppid);
            h.write(format!("{:?}", rec.state).as_bytes());
            h.write_u8(u8::from(rec.adopted));
            if let Some(lp) = &rec.logical_parent {
                h.write(lp.host.as_bytes());
                h.write_u32(lp.pid);
            }
        }
        for (host, kids) in &self.remote_children {
            h.write(host.as_bytes());
            h.write_u64(kids.len() as u64);
        }
        h.write_u64(self.bcasts.len() as u64);
        h.write_u64(self.outbox.len() as u64);
        h.finish()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn name(&self) -> &str {
        "lpm"
    }
}

#[cfg(test)]
mod tests {
    //! White-box tests of the LPM's pure logic; protocol behaviour is
    //! covered by the crate's integration suites.
    use super::*;
    use crate::auth::UserCred;
    use ppm_runtime::ids::Uid;

    fn lpm() -> Lpm {
        let entry = UserEntry {
            cred: UserCred::new(Uid(100), 7),
            recovery: vec!["home".into(), "work".into()],
            config: PpmConfig::default(),
        };
        let mut l = Lpm::new(&entry);
        l.host = "here".to_string();
        l
    }

    #[test]
    fn internal_ids_are_unique_and_host_salted() {
        let mut a = lpm();
        let mut ids = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            assert!(ids.insert(a.alloc_internal_id()));
        }
        let mut b = lpm();
        b.host = "elsewhere".to_string();
        assert_ne!(
            a.alloc_internal_id() >> 32,
            b.alloc_internal_id() >> 32,
            "different hosts use different id spaces"
        );
    }

    #[test]
    fn op_costs_scale_with_tracked_processes() {
        let mut l = lpm();
        let empty = l.op_cost(&Op::Snapshot);
        for pid in 10..20 {
            l.tree.track(pid, 1, None, "p", 0, true);
        }
        let ten = l.op_cost(&Op::Snapshot);
        assert!(ten > empty);
        let per_proc = l.cfg.snapshot_per_proc_cost.as_micros();
        assert_eq!(ten.as_micros() - empty.as_micros(), 10 * per_proc);
        // Control costs more than dispatch; ping is nearly free.
        assert!(l.op_cost(&Op::Ping) < l.cfg.dispatch_cost);
        assert!(
            l.op_cost(&Op::Control {
                pid: 1,
                action: ppm_proto::msg::ControlAction::Stop
            }) > l.cfg.dispatch_cost
        );
    }

    #[test]
    fn route_learning_extracts_next_hops() {
        let mut l = lpm();
        let mut route = Route::from_origin("here");
        route.push("mid");
        route.push("far");
        route.push("farther");
        l.learn_route(&route);
        assert_eq!(l.route_cache.get("far"), Some("mid"));
        assert_eq!(l.route_cache.get("farther"), Some("mid"));
        assert!(
            !l.route_cache.contains_key("mid"),
            "direct neighbours are not cached"
        );

        // Routes not originating here are ignored.
        let mut foreign = Route::from_origin("other");
        foreign.push("x");
        foreign.push("y");
        l.learn_route(&foreign);
        assert!(!l.route_cache.contains_key("y"));

        // Existing entries are not overwritten (first route wins).
        let mut second = Route::from_origin("here");
        second.push("alt");
        second.push("z");
        second.push("far");
        l.learn_route(&second);
        assert_eq!(l.route_cache.get("far"), Some("mid"));
    }

    #[test]
    fn route_learning_disabled_by_config() {
        let mut l = lpm();
        l.cfg.route_learning = false;
        let mut route = Route::from_origin("here");
        route.push("mid");
        route.push("far");
        l.learn_route(&route);
        assert!(l.route_cache.is_empty());
    }

    #[test]
    fn lpm_debug_is_informative() {
        let l = lpm();
        let s = format!("{l:?}");
        assert!(s.contains("here"));
        assert!(s.contains("100"));
    }
}
