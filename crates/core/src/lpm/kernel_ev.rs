//! Kernel event ingestion: genealogy updates, history, triggers, and
//! pending-spawn completion.
//!
//! "LPMs also receive messages from the local kernel. All data pertaining
//! to the local user's processes are obtained in this way."

use ppm_proto::msg::Reply;
use ppm_proto::triggers::TriggerAction;
use ppm_proto::types::{Gpid, RusageRecord, WireProcState};
use ppm_runtime::events::KernelEvent;
use ppm_runtime::ids::Pid;
use ppm_runtime::program::KernelMsg;
use ppm_runtime::signal::{ExitStatus, Signal};
use ppm_runtime::sys::Sys;

use crate::trigger_engine::TriggerEvent;

use super::{requests::RequestCtx, Lpm, ReplyTo};

impl Lpm {
    pub(crate) fn ingest_kernel_event(&mut self, sys: &mut dyn Sys, msg: KernelMsg) {
        let now = sys.now();
        let ev = msg.event;
        let pid = ev.pid().0;
        let gpid = Gpid::new(self.host.clone(), pid);
        let fired = match &ev {
            KernelEvent::Fork { parent, child } => {
                // A traced process forked: its child is traced too; track
                // the genealogy edge.
                let command = sys
                    .proc_info(*child)
                    .map(|i| i.command)
                    .unwrap_or_else(|| "(fork)".to_string());
                self.tree
                    .track(child.0, parent.0, None, command, now.as_micros(), true);
                self.history
                    .record(now, gpid.clone(), "fork", format!("child {child}"));
                self.trigger_check(sys, "fork", parent.0)
            }
            KernelEvent::Exec { pid, command } => {
                self.tree.set_exec(pid.0, command.clone());
                self.history
                    .record(now, gpid.clone(), "exec", command.clone());
                // A pending remote-creation request completes when its
                // child reaches exec (the process exists and runs).
                if let Some(req_id) = self.rpc.take_spawn_wait(pid.0) {
                    let reply = Reply::Spawned {
                        gpid: Gpid::new(self.host.clone(), pid.0),
                    };
                    self.finish_req(sys, req_id, reply);
                }
                self.trigger_check(sys, "exec", pid.0)
            }
            KernelEvent::Exit {
                pid,
                status,
                rusage,
            } => {
                self.tree
                    .mark_dead_at(pid.0, rusage.cpu.as_micros(), now.as_micros());
                let command = self
                    .tree
                    .get(pid.0)
                    .map(|n| n.command.clone())
                    .unwrap_or_default();
                let status_code = match status {
                    ExitStatus::Code(c) => *c,
                    ExitStatus::Signaled(s) => -(1000 + s.number() as i32),
                };
                self.history.record_exit(RusageRecord {
                    gpid: gpid.clone(),
                    command,
                    exited_us: now.as_micros(),
                    status: status_code,
                    cpu_us: rusage.cpu.as_micros(),
                    msgs: rusage.msgs_sent + rusage.msgs_received,
                    bytes: rusage.bytes_sent + rusage.bytes_received,
                    files: rusage.files_opened,
                    forks: rusage.forks,
                });
                self.history
                    .record(now, gpid.clone(), "exit", status.to_string());
                // An unfinished spawn whose child died: report failure.
                if let Some(req_id) = self.rpc.take_spawn_wait(pid.0) {
                    self.finish_with_error(
                        sys,
                        req_id,
                        ppm_proto::msg::ErrCode::Internal,
                        "created process died before exec",
                    );
                }
                self.trigger_check(sys, "exit", pid.0)
            }
            KernelEvent::Stopped { pid } => {
                self.tree.set_state(pid.0, WireProcState::Stopped);
                self.history.record(now, gpid.clone(), "stop", "");
                self.trigger_check(sys, "stop", pid.0)
            }
            KernelEvent::Continued { pid } => {
                self.tree.set_state(pid.0, WireProcState::Running);
                self.history.record(now, gpid.clone(), "cont", "");
                self.trigger_check(sys, "cont", pid.0)
            }
            KernelEvent::SignalDelivered { pid, signal } => {
                self.history
                    .record(now, gpid.clone(), "signal", signal.to_string());
                self.trigger_check(sys, "signal", pid.0)
            }
            KernelEvent::MsgSent { pid, bytes } => {
                self.history
                    .record(now, gpid.clone(), "msg-sent", format!("{bytes} bytes"));
                self.trigger_check(sys, "msg-sent", pid.0)
            }
            KernelEvent::MsgReceived { pid, bytes } => {
                self.history
                    .record(now, gpid.clone(), "msg-recv", format!("{bytes} bytes"));
                self.trigger_check(sys, "msg-recv", pid.0)
            }
            KernelEvent::FileOpened { pid, path } => {
                self.history
                    .record(now, gpid.clone(), "file-open", path.clone());
                self.trigger_check(sys, "file-open", pid.0)
            }
            KernelEvent::FileClosed { pid, path } => {
                self.history
                    .record(now, gpid.clone(), "file-close", path.clone());
                self.trigger_check(sys, "file-close", pid.0)
            }
        };

        for firing in fired {
            self.execute_trigger_action(sys, firing.trigger_id, firing.action);
        }
        // Refresh CPU accounting for the process, when still visible.
        if let Some(info) = sys.proc_info(Pid(pid)) {
            self.tree.set_cpu(pid, info.rusage.cpu.as_micros());
        }
    }

    fn trigger_check(
        &mut self,
        sys: &mut dyn Sys,
        kind: &str,
        pid: u32,
    ) -> Vec<crate::trigger_engine::Firing> {
        let (command, cpu_us) = match self.tree.get(pid) {
            Some(n) => (n.command.clone(), n.cpu_us),
            None => (
                sys.proc_info(Pid(pid))
                    .map(|i| i.command)
                    .unwrap_or_default(),
                0,
            ),
        };
        self.triggers.on_event(TriggerEvent {
            kind,
            pid,
            command: &command,
            cpu_us,
        })
    }

    /// Executes one trigger action: "history dependent events can be set
    /// by users to trigger process state changes."
    pub(crate) fn execute_trigger_action(
        &mut self,
        sys: &mut dyn Sys,
        trigger_id: u32,
        action: TriggerAction,
    ) {
        let now = sys.now();
        match action {
            TriggerAction::Notify { note } => {
                self.history.record(
                    now,
                    Gpid::new(self.host.clone(), 0),
                    "trigger",
                    format!("#{trigger_id}: {note}"),
                );
            }
            TriggerAction::Signal { target, signal } => {
                let sig = Signal::from_number(signal).unwrap_or(Signal::Term);
                if target.host == self.host {
                    let _ = sys.kill(Pid(target.pid), sig);
                    self.history.record(
                        now,
                        target,
                        "trigger-signal",
                        format!("#{trigger_id}: {sig} (local)"),
                    );
                } else {
                    // Cross-machine delivery through the PPM itself.
                    self.history.record(
                        now,
                        target.clone(),
                        "trigger-signal",
                        format!("#{trigger_id}: {sig} (remote via {})", target.host),
                    );
                    self.begin_request(
                        sys,
                        self.auth.uid().0,
                        target.host.clone(),
                        ppm_proto::msg::Op::Control {
                            pid: target.pid,
                            action: ppm_proto::msg::ControlAction::Signal(signal),
                        },
                        ReplyTo::Internal,
                        self.cfg.max_hops,
                        RequestCtx::origin(),
                    );
                }
            }
            TriggerAction::KillTree { root } => {
                if root.host == self.host {
                    let mut members = self.tree.descendants(root.pid);
                    members.push(root.pid);
                    members.sort_unstable();
                    for pid in members {
                        let _ = sys.kill(Pid(pid), Signal::Kill);
                    }
                    self.history.record(
                        now,
                        root,
                        "trigger-killtree",
                        format!("#{trigger_id}: local subtree killed"),
                    );
                } else {
                    self.history.record(
                        now,
                        root.clone(),
                        "trigger-killtree",
                        format!("#{trigger_id}: forwarded to {}", root.host),
                    );
                    self.begin_request(
                        sys,
                        self.auth.uid().0,
                        root.host.clone(),
                        ppm_proto::msg::Op::Control {
                            pid: root.pid,
                            action: ppm_proto::msg::ControlAction::Kill,
                        },
                        ReplyTo::Internal,
                        self.cfg.max_hops,
                        RequestCtx::origin(),
                    );
                }
            }
        }
    }
}
