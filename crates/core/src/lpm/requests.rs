//! The request pipeline: dispatch, handler hand-off, local execution,
//! remote forwarding, replies, retries and timeouts.
//!
//! All per-request bookkeeping lives in the LPM's [`crate::rpc::RpcTable`];
//! this module drives it. Directed requests keep their correlation key
//! `(origin, origin id)` across relays and retries: relays forward the
//! origin's wire id and extend the origin's route rather than starting
//! fresh, which is what makes end-to-end dedup and full-route learning
//! possible.

use ppm_proto::msg::{ControlAction, ErrCode, Msg, Op, Reply};
use ppm_proto::types::{FileRecord, Gpid, Route};
use ppm_runtime::events::TraceFlags;
use ppm_runtime::fd::FdKind;
use ppm_runtime::ids::{ConnId, Pid};
use ppm_runtime::obs::SpanPhase;
use ppm_runtime::program::{SpawnSpec, SysError};
use ppm_runtime::signal::Signal;
use ppm_runtime::sys::Sys;
use ppm_runtime::time::{SimDuration, SimTime};
use ppm_runtime::workload::Worker;

use crate::rpc::{fmt_key, DupVerdict, PendingRequest, RpcKey, TransportVerdict};

use super::{conns::SiblingStatus, Lpm, ReplyTo, ReqPhase, TimerKind};

/// How a request enters the pipeline: as a fresh origin request (this LPM
/// is responsible for end-to-end retry) or as a relay/execution of a
/// request originated elsewhere (correlation identity comes off the wire).
pub(crate) struct RequestCtx {
    /// Correlation key; `None` allocates a fresh `(self, id)` origin key.
    pub corr: Option<RpcKey>,
    /// Absolute deadline already attached to the request. Origins without
    /// one are stamped with the configured `req_deadline`.
    pub deadline: Option<SimTime>,
    /// Zero-based attempt counter off the wire.
    pub attempt: u8,
    /// Route the request has travelled so far (origin-first, ending at
    /// this host); `None` starts a fresh route here.
    pub route: Option<Route>,
    /// Boot epoch stamped on the wire by the origin LPM incarnation
    /// (0 = unstamped tool traffic). Origins overwrite this with their
    /// own epoch; relays carry it unchanged.
    pub boot: u64,
}

impl RequestCtx {
    /// A request originated by this LPM (tool or internal).
    pub(crate) fn origin() -> Self {
        RequestCtx {
            corr: None,
            deadline: None,
            attempt: 0,
            route: None,
            boot: 0,
        }
    }

    /// A request received from a sibling for relay or execution.
    pub(crate) fn relayed(
        corr: RpcKey,
        deadline: Option<SimTime>,
        attempt: u8,
        route: Route,
        boot: u64,
    ) -> Self {
        RequestCtx {
            corr: Some(corr),
            deadline,
            attempt,
            route: Some(route),
            boot,
        }
    }
}

impl Lpm {
    // ---- entry points -------------------------------------------------------

    /// A message arrived from an authenticated tool.
    pub(crate) fn handle_tool_msg(&mut self, sys: &mut dyn Sys, conn: ConnId, msg: Msg) {
        match msg {
            Msg::Req {
                id,
                user,
                dest,
                op,
                route: _,
                hops_left,
                deadline_us,
                attempt: _,
                boot: _,
            } => {
                let reply_to = ReplyTo::Tool {
                    conn,
                    external_id: id,
                };
                let mut ctx = RequestCtx::origin();
                if deadline_us > 0 {
                    ctx.deadline = Some(SimTime::from_micros(deadline_us));
                }
                self.begin_request(sys, user, dest, op, reply_to, hops_left, ctx);
            }
            other => {
                self.note(
                    sys,
                    format!("unexpected {} from tool; ignoring", other.kind()),
                );
            }
        }
    }

    /// A message arrived from an authenticated sibling.
    pub(crate) fn handle_sibling_msg(
        &mut self,
        sys: &mut dyn Sys,
        conn: ConnId,
        host: &str,
        msg: Msg,
    ) {
        // Any live sibling traffic counts as contact for recovery purposes.
        self.recovered_contact(sys);
        match msg {
            Msg::Req {
                id,
                user,
                dest,
                op,
                route,
                hops_left,
                deadline_us,
                attempt,
                boot,
            } => {
                self.ingest_sibling_req(
                    sys,
                    conn,
                    id,
                    user,
                    dest,
                    op,
                    route,
                    hops_left,
                    deadline_us,
                    attempt,
                    boot,
                );
            }
            Msg::Resp { id, reply, route } => self.handle_resp(sys, id, reply, route),
            Msg::Bcast {
                stamp,
                user,
                op,
                route,
            } => self.handle_bcast(sys, conn, host, stamp, user, op, route),
            Msg::BcastResp {
                stamp,
                host: resp_host,
                reply,
                route,
            } => self.handle_bcast_resp(sys, conn, stamp, resp_host, reply, route),
            Msg::BcastAgg {
                stamp,
                parts,
                missing,
            } => self.handle_bcast_agg(sys, host, stamp, parts, missing),
            Msg::BcastDone { stamp } => {
                let key = stamp.key();
                self.bcast_child_done(sys, &key, host);
            }
            Msg::CcsAnnounce { ccs, epoch, .. } => {
                self.consider_ccs(sys, &ccs, epoch);
            }
            Msg::Probe { .. } => {
                let ack = Msg::ProbeAck {
                    from: self.host.clone(),
                    ccs: self.ccs.clone(),
                    epoch: self.epoch,
                };
                let _ = self.send_msg(sys, conn, &ack);
            }
            Msg::ProbeAck { from, ccs, epoch } => {
                self.handle_probe_ack(sys, &from, &ccs, epoch);
            }
            Msg::ForestPull { live, boot, .. } => {
                self.handle_forest_pull(sys, conn, host, live, boot);
            }
            Msg::ForestInfo {
                host: info_host,
                edges,
                ..
            } => {
                self.handle_forest_info(sys, &info_host, edges);
            }
            other => {
                self.note(
                    sys,
                    format!("unexpected {} from sibling {host}", other.kind()),
                );
            }
        }
    }

    /// A directed request off a sibling connection: dedup against the
    /// correlation table, refuse exhausted or expired requests without
    /// allocating table state, then enter the pipeline.
    #[allow(clippy::too_many_arguments)]
    fn ingest_sibling_req(
        &mut self,
        sys: &mut dyn Sys,
        conn: ConnId,
        id: u64,
        user: u32,
        dest: String,
        op: Op,
        route: Route,
        hops_left: u8,
        deadline_us: u64,
        attempt: u8,
        boot: u64,
    ) {
        let origin: std::sync::Arc<str> = match route.origin() {
            Some(o) => std::sync::Arc::from(o),
            None => std::sync::Arc::from(self.host.as_str()),
        };
        let corr: RpcKey = (origin, id);
        let mut route_in = route.clone();
        route_in.push(self.host.clone());

        // Idempotent dedup: a retried delivery of a request we already
        // hold (or already executed) must not run twice.
        match self.rpc.dup_verdict(&corr, boot) {
            DupVerdict::InFlight(local_id) => {
                let is_relay = self
                    .rpc
                    .get(local_id)
                    .is_some_and(|r| matches!(r.reply_to, ReplyTo::Sibling { .. }));
                if is_relay {
                    // Redirect the eventual reply to the retry's path.
                    if let Some(r) = self.rpc.get_mut(local_id) {
                        r.reply_to = ReplyTo::Sibling {
                            conn,
                            external_id: id,
                            route_in: route_in.clone(),
                        };
                    }
                    self.stats.dups_suppressed += 1;
                    self.obs.with(|r| r.inc(self.obs.dups_suppressed));
                    self.note(
                        sys,
                        format!(
                            "duplicate request {} suppressed (in flight)",
                            fmt_key(&corr)
                        ),
                    );
                } else {
                    // Our own origin request came back to us: routing loop.
                    self.refuse(sys, conn, id, route_in, ErrCode::NoRoute, "routing loop");
                }
                return;
            }
            DupVerdict::Replay { reply, route } => {
                self.stats.dups_suppressed += 1;
                self.obs.with(|r| r.inc(self.obs.dups_suppressed));
                self.note(
                    sys,
                    format!("replaying cached reply for {}", fmt_key(&corr)),
                );
                // Replay with the cached route: the original responder's
                // full path, so the origin still learns it from a retry.
                let msg = Msg::Resp { id, reply, route };
                let _ = self.send_msg(sys, conn, &msg);
                return;
            }
            DupVerdict::Stale => {
                // The correlation id was stamped by a dead incarnation of
                // its origin, and the respawn already purged any cached
                // reply. Executing it now would be a second execution the
                // dedup window can no longer prevent — refuse instead.
                self.stats.dups_suppressed += 1;
                self.obs.with(|r| r.inc(self.obs.dups_suppressed));
                self.note(
                    sys,
                    format!(
                        "refusing {} from dead incarnation (boot {boot})",
                        fmt_key(&corr)
                    ),
                );
                self.refuse(
                    sys,
                    conn,
                    id,
                    route_in,
                    ErrCode::StaleEpoch,
                    "correlation id from a dead incarnation",
                );
                return;
            }
            DupVerdict::New => {}
        }

        if hops_left == 0 && dest != self.host && dest != "*" {
            // Refuse immediately: relay budget exhausted and the request
            // is not for us. No table state is allocated for refusals.
            self.refuse(
                sys,
                conn,
                id,
                route_in,
                ErrCode::NoRoute,
                "hop budget exhausted",
            );
            return;
        }

        // Deadline propagation: decay by one hop in lockstep with the
        // hops_left decrement, and refuse what has already expired.
        let deadline = if deadline_us > 0 {
            let decayed =
                SimTime::from_micros(deadline_us).saturating_back(self.cfg.deadline_decay);
            if decayed <= sys.now() {
                self.obs.with(|r| r.inc(self.obs.deadline_refused));
                self.refuse(
                    sys,
                    conn,
                    id,
                    route_in,
                    ErrCode::DeadlineExceeded,
                    "deadline expired in flight",
                );
                return;
            }
            Some(decayed)
        } else {
            None
        };

        let reply_to = ReplyTo::Sibling {
            conn,
            external_id: id,
            route_in: route_in.clone(),
        };
        let ctx = RequestCtx::relayed(corr, deadline, attempt, route_in, boot);
        self.begin_request(
            sys,
            user,
            dest,
            op,
            reply_to,
            hops_left.saturating_sub(1),
            ctx,
        );
    }

    /// Sends an error `Resp` straight back on `conn` without allocating
    /// any table state (hop-budget and deadline refusals).
    pub(crate) fn refuse(
        &mut self,
        sys: &mut dyn Sys,
        conn: ConnId,
        external_id: u64,
        route: Route,
        code: ErrCode,
        detail: &str,
    ) {
        let msg = Msg::Resp {
            id: external_id,
            reply: Reply::Err {
                code,
                detail: detail.to_string(),
            },
            route,
        };
        let _ = self.send_msg(sys, conn, &msg);
    }

    // ---- pipeline -------------------------------------------------------------

    /// Enters a request into the staged pipeline.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn begin_request(
        &mut self,
        sys: &mut dyn Sys,
        user: u32,
        dest: String,
        op: Op,
        reply_to: ReplyTo,
        hops_left: u8,
        ctx: RequestCtx,
    ) {
        self.stats.requests += 1;
        self.obs.with(|r| r.inc(self.obs.requests));
        let id = self.alloc_internal_id();
        let policy = self.retry_policy();
        let origin_side = reply_to.is_origin();
        let corr = ctx
            .corr
            .unwrap_or_else(|| (std::sync::Arc::from(self.host.as_str()), id));
        if sys.spans_enabled() {
            sys.span("req", fmt_key(&corr), SpanPhase::Begin);
        }
        let deadline = match ctx.deadline {
            Some(d) => Some(d),
            // Only requests we originate get the default end-to-end
            // deadline; broadcast slices and relays carry what arrived.
            None if origin_side => Some(sys.now() + self.cfg.req_deadline),
            None => None,
        };
        let route = ctx
            .route
            .unwrap_or_else(|| Route::from_origin(self.host.clone()));
        self.rpc.insert(
            id,
            PendingRequest {
                user,
                dest,
                op,
                reply_to,
                phase: ReqPhase::Dispatch,
                handler: None,
                sent_conn: None,
                hops_left,
                route,
                timeout_token: None,
                spawn_pid: None,
                corr,
                // Origins stamp their own incarnation; relays carry the
                // origin's stamp so executors can fence dead incarnations.
                boot: if origin_side {
                    self.boot_epoch()
                } else {
                    ctx.boot
                },
                deadline,
                attempt: ctx.attempt,
                attempts_left: if origin_side { policy.retries() } else { 0 },
                backoff: policy.backoff,
                backoff_max: policy.backoff_max,
            },
        );
        let d = sys.scale_cost(self.cfg.dispatch_cost);
        self.arm(sys, d, TimerKind::ReqStep(id));
    }

    /// A `ReqStep` timer fired: advance the pipeline.
    pub(crate) fn req_step(&mut self, sys: &mut dyn Sys, id: u64) {
        let Some(req) = self.rpc.get(id) else {
            return;
        };
        match req.phase {
            ReqPhase::Dispatch => self.route_request(sys, id),
            ReqPhase::HandlerForLocal => {
                let cost = self.op_cost(&self.rpc.get(id).expect("checked above").op);
                let d = sys.scale_cost(cost);
                if let Some(r) = self.rpc.get_mut(id) {
                    r.phase = ReqPhase::OpCost;
                }
                self.arm(sys, d, TimerKind::ReqStep(id));
            }
            ReqPhase::HandlerForRemote => self.send_remote(sys, id),
            ReqPhase::OpCost => self.exec_local(sys, id),
            ReqPhase::Sent
            | ReqPhase::AwaitChannel
            | ReqPhase::RetryWait
            | ReqPhase::AwaitSpawn
            | ReqPhase::BcastWait => {
                // Spurious (stale timer); the request advances on messages.
            }
        }
    }

    /// After dispatch: local, broadcast, or remote?
    fn route_request(&mut self, sys: &mut dyn Sys, id: u64) {
        let (dest, from_sibling) = {
            let r = self.rpc.get(id).expect("routed request exists");
            (
                r.dest.clone(),
                matches!(r.reply_to, ReplyTo::Sibling { .. }),
            )
        };
        if dest == "*" {
            if let Some(r) = self.rpc.get_mut(id) {
                r.phase = ReqPhase::BcastWait;
            }
            self.begin_broadcast(sys, id);
        } else if dest == self.host {
            if from_sibling {
                // Requests from siblings are handed to a handler process.
                let (h, delay) = self.acquire_handler(sys);
                if let Some(r) = self.rpc.get_mut(id) {
                    r.handler = Some(h);
                    r.phase = ReqPhase::HandlerForLocal;
                }
                self.arm(sys, delay, TimerKind::ReqStep(id));
            } else {
                let cost = self.op_cost(&self.rpc.get(id).expect("checked above").op);
                let d = sys.scale_cost(cost);
                if let Some(r) = self.rpc.get_mut(id) {
                    r.phase = ReqPhase::OpCost;
                }
                self.arm(sys, d, TimerKind::ReqStep(id));
            }
        } else {
            // Remote: a handler carries the exchange and blocks on it.
            if from_sibling {
                self.stats.relays += 1;
            }
            let (h, delay) = self.acquire_handler(sys);
            if let Some(r) = self.rpc.get_mut(id) {
                r.handler = Some(h);
                r.phase = ReqPhase::HandlerForRemote;
            }
            self.arm(sys, delay, TimerKind::ReqStep(id));
        }
    }

    /// Nominal cost of performing an operation locally.
    pub(crate) fn op_cost(&self, op: &Op) -> SimDuration {
        match op {
            Op::Control { .. } => self.cfg.control_cost,
            Op::Snapshot => {
                let n = self.tree.len() as u64;
                SimDuration::from_micros(
                    self.cfg.snapshot_base_cost.as_micros()
                        + self.cfg.snapshot_per_proc_cost.as_micros() * n,
                )
            }
            Op::Spawn { .. } => self.cfg.spawn_bookkeeping_cost,
            Op::Ping | Op::Status => SimDuration::from_micros(500),
            _ => self.cfg.misc_op_cost,
        }
    }

    // ---- remote sends -----------------------------------------------------------

    fn send_remote(&mut self, sys: &mut dyn Sys, id: u64) {
        // Deadline check at the send boundary: dispatch, handler and
        // backoff delays all elapse between ingest and here, and a
        // deadline that has decayed to exactly zero remaining budget
        // must be refused, not forwarded to burn a sibling's dispatch
        // slot before the inevitable failure.
        let now = sys.now();
        if self.rpc.get(id).is_some_and(|r| r.past_deadline(now)) {
            self.obs.with(|r| r.inc(self.obs.deadline_refused));
            self.finish_with_error(
                sys,
                id,
                ErrCode::DeadlineExceeded,
                "deadline expired before forward",
            );
            return;
        }
        let dest = self
            .rpc
            .get(id)
            .expect("sending request exists")
            .dest
            .clone();
        // Direct sibling connection?
        if let Some(&conn) = self.siblings.get(&dest) {
            self.forward_req(sys, id, conn);
            return;
        }
        // Learned route through an existing sibling?
        if self.cfg.route_learning {
            // Reachability moved since the cache was last checked (a
            // fault-plan cut, a crash, a heal): revalidate every leg of
            // every cached path before trusting a lookup. Without this,
            // entries learned before the cut keep relaying into the
            // severed link until each one burns a full retry cycle.
            let epoch = sys.net_epoch();
            if epoch != self.route_epoch {
                self.route_epoch = epoch;
                let evicted = self.route_cache.validate(|a, b| sys.edge_up(a, b));
                if evicted > 0 {
                    self.note(
                        sys,
                        format!("reachability changed; {evicted} cached route(s) evicted"),
                    );
                }
            }
            if let Some(next) = self.route_cache.lookup(&dest) {
                if let Some(&conn) = self.siblings.get(next) {
                    // Validate the cached hop against link liveness: a
                    // route learned during a brief heal can survive a
                    // second cut (`evict_via` only fires on the closed
                    // notification, which lags the cut), and sending into
                    // it blackholes a whole retry cycle.
                    if sys.conn_alive(conn) {
                        self.stats.route_cache_hits += 1;
                        self.forward_req(sys, id, conn);
                        return;
                    }
                    let next = next.to_string();
                    self.route_cache.evict_via(&next);
                    self.note(sys, format!("route via {next} is dead; evicted"));
                }
            }
        }
        // Establish a direct channel (the expensive path: Figure 2 chain).
        match self.ensure_sibling(sys, &dest) {
            SiblingStatus::Connected(conn) => self.forward_req(sys, id, conn),
            SiblingStatus::Pending => {
                let msg = self.req_wire_msg(id);
                self.outbox.entry(dest).or_default().push((msg, Some(id)));
                if let Some(r) = self.rpc.get_mut(id) {
                    r.phase = ReqPhase::AwaitChannel;
                }
            }
            SiblingStatus::Unavailable => {
                self.finish_with_error(sys, id, ErrCode::NoRoute, "unknown host");
            }
        }
    }

    /// The wire form of a pending request. The correlation id — not the
    /// local table id — goes on the wire, and the route extends the
    /// origin's accumulated route, so the request keeps one identity
    /// end-to-end.
    fn req_wire_msg(&self, id: u64) -> Msg {
        let r = self.rpc.get(id).expect("wire msg of live request");
        let mut route = r.route.clone();
        route.push(self.host.clone());
        Msg::Req {
            id: r.corr.1,
            user: r.user,
            dest: r.dest.clone(),
            op: r.op.clone(),
            route,
            hops_left: r.hops_left,
            deadline_us: r.deadline.map_or(0, SimTime::as_micros),
            attempt: r.attempt,
            boot: r.boot,
        }
    }

    fn forward_req(&mut self, sys: &mut dyn Sys, id: u64, conn: ConnId) {
        let msg = self.req_wire_msg(id);
        match self.send_msg(sys, conn, &msg) {
            Ok(()) => self.mark_sent(sys, id, conn),
            Err(e) => {
                // A synchronous send error means the connection is dead
                // even if the kernel's closed notification has not fired
                // yet. Reap it now so retries rebuild the channel instead
                // of burning their budget on the same corpse.
                self.on_conn_closed(sys, conn);
                self.fail_request_transport(sys, id, &format!("send failed: {e}"));
            }
        }
    }

    /// Records that a request went out on `conn` and arms its per-attempt
    /// timer (clipped to the remaining deadline, so an expiring request
    /// fails as `DeadlineExceeded` rather than idling a full timeout).
    pub(crate) fn mark_sent(&mut self, sys: &mut dyn Sys, id: u64, conn: ConnId) {
        let now = sys.now();
        let mut timeout = self.cfg.req_timeout;
        if let Some(r) = self.rpc.get(id) {
            if let Some(d) = r.deadline {
                timeout = timeout.min(d.saturating_since(now));
            }
        }
        let token = self.arm(sys, timeout, TimerKind::ReqTimeout(id));
        if let Some(r) = self.rpc.get_mut(id) {
            r.phase = ReqPhase::Sent;
            r.sent_conn = Some(conn);
            r.timeout_token = Some(token);
        }
    }

    /// A `Resp` arrived for a request we sent (or relayed), addressed by
    /// its correlation key `(route origin, wire id)`.
    fn handle_resp(&mut self, sys: &mut dyn Sys, id: u64, reply: Reply, route: Route) {
        let Some(origin) = route.origin() else {
            return;
        };
        let key: RpcKey = (std::sync::Arc::from(origin), id);
        let Some(local_id) = self.rpc.resolve(&key) else {
            return; // timed out, refused or duplicate
        };
        // A reply settles the request in any remote phase — including a
        // late first-attempt reply arriving during a retry backoff (the
        // parked `ReqRetry` timer then fires on a dead id, a no-op).
        self.learn_route(&route);
        // Relays pass the responder's fuller route upstream so the origin
        // learns the whole path, not just its first hop.
        self.finish_req_via(sys, local_id, reply, Some(route));
    }

    /// Route learning: a reply's source-destination route teaches us the
    /// next hop toward every host on it (see
    /// [`RouteCache::learn`](crate::locator::RouteCache::learn)).
    pub(crate) fn learn_route(&mut self, route: &Route) {
        if !self.cfg.route_learning {
            return;
        }
        self.route_cache.learn(route, &self.host);
    }

    // ---- retries and timeouts ---------------------------------------------------

    /// A transport failure (connection loss, channel failure, send error)
    /// hit an in-flight request. Origin-side requests with budget left
    /// retry with backoff under the same correlation id; everything else
    /// fails upstream.
    pub(crate) fn fail_request_transport(&mut self, sys: &mut dyn Sys, id: u64, detail: &str) {
        let now = sys.now();
        let Some(r) = self.rpc.get_mut(id) else {
            return;
        };
        let token = r.timeout_token.take();
        let verdict = r.retry_verdict(now, false);
        if let Some(tok) = token {
            self.rpc.cancel(tok);
        }
        match verdict {
            TransportVerdict::Retry { delay } => self.schedule_retry(sys, id, delay, detail),
            TransportVerdict::Fail(code) => self.finish_with_error(sys, id, code, detail),
        }
    }

    /// A directed request's per-attempt timer expired.
    pub(crate) fn req_timeout(&mut self, sys: &mut dyn Sys, id: u64) {
        let now = sys.now();
        let Some(r) = self.rpc.get_mut(id) else {
            return;
        };
        r.timeout_token = None;
        match r.retry_verdict(now, true) {
            TransportVerdict::Retry { delay } => self.schedule_retry(sys, id, delay, "no response"),
            TransportVerdict::Fail(ErrCode::DeadlineExceeded) => {
                self.finish_with_error(sys, id, ErrCode::DeadlineExceeded, "deadline exceeded")
            }
            TransportVerdict::Fail(_) => {
                self.finish_with_error(sys, id, ErrCode::Timeout, "no response")
            }
        }
    }

    /// Parks a request for its backoff delay before the next attempt.
    fn schedule_retry(&mut self, sys: &mut dyn Sys, id: u64, delay: SimDuration, why: &str) {
        self.stats.retries += 1;
        self.obs.with(|r| {
            r.inc(self.obs.retries);
            r.record(self.obs.backoff_us, delay.as_micros());
        });
        let (key, attempt) = {
            let r = self.rpc.get_mut(id).expect("retrying request exists");
            r.phase = ReqPhase::RetryWait;
            r.sent_conn = None;
            (fmt_key(&r.corr), r.attempt)
        };
        self.note(
            sys,
            format!("request {key} retry attempt {attempt} in {delay} ({why})"),
        );
        self.arm(sys, delay, TimerKind::ReqRetry(id));
    }

    /// A retry backoff elapsed: re-send under the same correlation id.
    /// The handler acquired for the first attempt is still held.
    pub(crate) fn req_retry(&mut self, sys: &mut dyn Sys, id: u64) {
        let Some(r) = self.rpc.get_mut(id) else {
            return;
        };
        if r.phase != ReqPhase::RetryWait {
            return;
        }
        r.phase = ReqPhase::HandlerForRemote;
        self.send_remote(sys, id);
    }

    // ---- local execution ----------------------------------------------------------

    /// Op-cost elapsed: apply the operation's effects.
    fn exec_local(&mut self, sys: &mut dyn Sys, id: u64) {
        self.stats.executed += 1;
        let op = self
            .rpc
            .get(id)
            .expect("executing request exists")
            .op
            .clone();
        let reply = match op {
            Op::Ping => Some(Reply::Pong),
            Op::Status => Some(self.status_reply(sys)),
            Op::Control { pid, action } => Some(self.do_control(sys, pid, action)),
            Op::Spawn {
                command,
                logical_parent,
                lifetime_us,
                work_us,
                cpu_bound,
            } => self.do_spawn(
                sys,
                id,
                command,
                logical_parent,
                lifetime_us,
                work_us,
                cpu_bound,
            ),
            Op::Snapshot => Some(Reply::Snapshot {
                host: self.host.clone(),
                procs: self.tree.snapshot(),
            }),
            Op::Rusage { pid } => Some(Reply::Rusage {
                records: self.history.exited(pid),
            }),
            Op::History { since_us, max } => Some(Reply::History {
                events: self.history.query(since_us, max as usize),
            }),
            Op::OpenFiles { pid } => Some(self.do_open_files(sys, pid)),
            Op::Adopt { pid, flags } => Some(self.do_adopt(sys, pid, flags)),
            Op::SetTraceFlags { pid, flags } => Some(
                match sys.set_trace_flags(Pid(pid), TraceFlags::from_bits(flags)) {
                    Ok(()) => Reply::Ok,
                    Err(e) => err_reply(e),
                },
            ),
            Op::AddTrigger { spec } => {
                self.triggers.add(spec);
                Some(Reply::Ok)
            }
            Op::DelTrigger { id: tid } => Some(if self.triggers.remove(tid) {
                Reply::Ok
            } else {
                Reply::Err {
                    code: ErrCode::NotFound,
                    detail: format!("no trigger {tid}"),
                }
            }),
            Op::ListTriggers => Some(Reply::Triggers {
                entries: self.triggers.list().to_vec(),
            }),
            Op::Stats => {
                let pool = self.pool.stats();
                Some(Reply::Stats {
                    requests: self.stats.requests,
                    bcasts: (
                        self.stats.bcasts_originated,
                        self.stats.bcasts_forwarded,
                        self.stats.bcasts_suppressed,
                    ),
                    relays: self.stats.relays,
                    route_cache_hits: self.stats.route_cache_hits,
                    auth_failures: self.stats.auth_failures,
                    handlers: (pool.forks, pool.reuses, pool.reaped),
                })
            }
            Op::Metrics => Some(Reply::Metrics {
                host: self.host.clone(),
                at_us: sys.now().as_micros(),
                rows: self.obs.rows(),
            }),
        };
        match reply {
            Some(reply) => self.finish_req(sys, id, reply),
            None => {
                // Spawn: reply deferred until the child's exec event.
                if let Some(r) = self.rpc.get_mut(id) {
                    r.phase = ReqPhase::AwaitSpawn;
                }
            }
        }
    }

    pub(crate) fn status_reply(&self, sys: &dyn Sys) -> Reply {
        Reply::Status {
            host: self.host.clone(),
            load_milli: (sys.load_avg() * 1000.0) as u32,
            managed: self.tree.live_count() as u32,
            siblings: self.siblings.keys().cloned().collect(),
            ccs: self.ccs.clone(),
            epoch: self.epoch,
        }
    }

    fn do_control(&mut self, sys: &mut dyn Sys, pid: u32, action: ControlAction) -> Reply {
        let signal = match action {
            ControlAction::Stop => Signal::Stop,
            ControlAction::Foreground | ControlAction::Background => Signal::Cont,
            ControlAction::Kill => Signal::Kill,
            ControlAction::Signal(n) => match Signal::from_number(n) {
                Some(s) => s,
                None => {
                    return Reply::Err {
                        code: ErrCode::BadRequest,
                        detail: format!("unknown signal {n}"),
                    }
                }
            },
        };
        let verb = match action {
            ControlAction::Stop => "stop",
            ControlAction::Foreground => "foreground",
            ControlAction::Background => "background",
            ControlAction::Kill => "kill",
            ControlAction::Signal(_) => "signal",
        };
        match sys.kill(Pid(pid), signal) {
            Ok(()) => {
                let at = sys.now();
                self.history.record(
                    at,
                    Gpid::new(self.host.clone(), pid),
                    verb,
                    signal.to_string(),
                );
                Reply::Ok
            }
            Err(e) => err_reply(e),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn do_spawn(
        &mut self,
        sys: &mut dyn Sys,
        id: u64,
        command: String,
        logical_parent: Option<Gpid>,
        lifetime_us: Option<u64>,
        work_us: u64,
        cpu_bound: bool,
    ) -> Option<Reply> {
        let spec = match lifetime_us {
            Some(life) => SpawnSpec::new(
                command.clone(),
                Box::new(Worker::new(
                    SimDuration::from_micros(life),
                    SimDuration::from_micros(work_us),
                )),
            )
            .cpu_bound(cpu_bound),
            None => SpawnSpec::inert(command.clone()).cpu_bound(cpu_bound),
        };
        let pid = match sys.spawn(spec) {
            Ok(pid) => pid,
            Err(e) => return Some(err_reply(e)),
        };
        let flags = self.cfg.default_trace_flags;
        if let Err(e) = sys.adopt(pid, flags) {
            return Some(err_reply(e));
        }
        // Tree: link locally when the logical parent is here, otherwise
        // record the cross-host logical edge.
        let (ppid, logical) = match &logical_parent {
            Some(g) if g.host == self.host => (g.pid, None),
            other => (1, other.clone()),
        };
        let now = sys.now();
        self.tree
            .track(pid.0, ppid, logical, command.clone(), now.as_micros(), true);
        self.history.record(
            now,
            Gpid::new(self.host.clone(), pid.0),
            "create",
            format!("spawned {command} for request"),
        );
        self.rpc.add_spawn_wait(pid.0, id);
        if let Some(r) = self.rpc.get_mut(id) {
            r.spawn_pid = Some(pid.0);
        }
        None
    }

    fn do_adopt(&mut self, sys: &mut dyn Sys, pid: u32, flags: u8) -> Reply {
        let flags = TraceFlags::from_bits(flags);
        match sys.adopt(Pid(pid), flags) {
            Ok(()) => {}
            Err(e) => return err_reply(e),
        }
        let now = sys.now();
        // Track the target and all its live same-user descendants
        // ("Adoption allows the LPM to keep track of a process and its
        // descendants").
        let mine = sys.user_processes(sys.uid());
        let mut frontier = vec![pid];
        let mut members = vec![pid];
        while let Some(p) = frontier.pop() {
            for info in mine.iter().filter(|i| i.ppid.0 == p && i.pid.0 != p) {
                if !members.contains(&info.pid.0) {
                    members.push(info.pid.0);
                    frontier.push(info.pid.0);
                }
            }
        }
        members.sort_unstable();
        for m in members {
            if m != pid {
                let _ = sys.adopt(Pid(m), flags);
            }
            if !self.tree.contains(m) {
                if let Some(info) = sys.proc_info(Pid(m)) {
                    self.tree.track(
                        m,
                        info.ppid.0,
                        None,
                        info.command.clone(),
                        info.started_at.as_micros(),
                        true,
                    );
                    self.tree.set_exec(m, info.command);
                    self.tree.set_cpu(m, info.rusage.cpu.as_micros());
                }
            }
        }
        self.history.record(
            now,
            Gpid::new(self.host.clone(), pid),
            "adopt",
            format!("flags {flags}"),
        );
        Reply::Ok
    }

    fn do_open_files(&mut self, sys: &mut dyn Sys, pid: u32) -> Reply {
        match sys.open_fds(Pid(pid)) {
            Ok(entries) => Reply::Files {
                entries: entries
                    .into_iter()
                    .map(|(fd, kind)| {
                        let detail = match &kind {
                            FdKind::File { path, mode } => format!("{path} ({mode})"),
                            FdKind::Socket { conn } => format!("stream {conn}"),
                            FdKind::Listener { port } => format!("listening {port}"),
                            FdKind::KernelSocket => "kernel event socket".to_string(),
                        };
                        FileRecord {
                            fd: fd.0,
                            kind: kind.kind_name().to_string(),
                            detail,
                        }
                    })
                    .collect(),
            },
            Err(e) => err_reply(e),
        }
    }

    // ---- completion ------------------------------------------------------------

    /// Completes a request with a reply, releasing its resources.
    pub(crate) fn finish_req(&mut self, sys: &mut dyn Sys, id: u64, reply: Reply) {
        self.finish_req_via(sys, id, reply, None);
    }

    /// Completes a request; `resp_route` (when a downstream `Resp`
    /// supplied one) replaces the locally recorded route in the reply
    /// sent upstream, so origins see whole paths.
    fn finish_req_via(
        &mut self,
        sys: &mut dyn Sys,
        id: u64,
        reply: Reply,
        resp_route: Option<Route>,
    ) {
        let Some(req) = self.rpc.remove(id) else {
            return;
        };
        // Remember cross-host logical edges of spawns we saw succeed (as
        // origin or relay): a respawned sibling pulls them back when it
        // rebuilds its forest after a crash ([`Msg::ForestPull`]).
        if let (
            Op::Spawn {
                logical_parent: Some(parent),
                ..
            },
            Reply::Spawned { gpid },
        ) = (&req.op, &reply)
        {
            if gpid.host != self.host {
                let known = self.remote_children.entry(gpid.host.clone()).or_default();
                if known.len() < 4096 {
                    known.insert(gpid.pid, parent.clone());
                }
            }
        }
        if sys.spans_enabled() {
            sys.span("req", fmt_key(&req.corr), SpanPhase::End);
        }
        if let Some(tok) = req.timeout_token {
            self.rpc.cancel(tok);
        }
        // A relay's respond handler blocks until the node's whole wave
        // participation completes ("handler processes may block while
        // waiting for a response from a remote process"); it is parked in
        // the broadcast state rather than released here.
        let mut handler = req.handler;
        if let ReplyTo::BcastLocal { key } = &req.reply_to {
            if let Some(b) = self.bcasts.get_mut(key) {
                if b.upstream.is_some() {
                    b.respond_handler = handler.take();
                }
            }
        }
        self.release_handler(sys, handler);
        match req.reply_to {
            ReplyTo::Tool { conn, external_id } => {
                let route = resp_route.unwrap_or(req.route);
                // Registry pulls get their own frame so tools stream them
                // without unwrapping a generic response.
                let msg = match reply {
                    Reply::Metrics { host, at_us, rows } => Msg::MetricsSnapshot {
                        id: external_id,
                        host,
                        at_us,
                        rows,
                        route,
                    },
                    reply => Msg::Resp {
                        id: external_id,
                        reply,
                        route,
                    },
                };
                let _ = self.send_msg(sys, conn, &msg);
            }
            ReplyTo::Sibling {
                conn,
                external_id,
                route_in,
            } => {
                let route = resp_route.unwrap_or(route_in);
                // Idempotent dedup: park the reply in the retention
                // window so a retried delivery of the same correlation
                // id is answered without re-execution.
                self.rpc
                    .note_done(req.corr, sys.now(), reply.clone(), route.clone());
                let msg = Msg::Resp {
                    id: external_id,
                    reply,
                    route,
                };
                let _ = self.send_msg(sys, conn, &msg);
            }
            ReplyTo::Internal => {
                if let Reply::Err { code, detail } = reply {
                    let at = sys.now();
                    self.history.record(
                        at,
                        Gpid::new(self.host.clone(), 0),
                        "internal-error",
                        format!("{code:?}: {detail}"),
                    );
                }
            }
            ReplyTo::BcastLocal { key } => {
                self.bcast_local_complete(sys, &key, reply);
            }
        }
    }

    /// Completes a request with an error.
    pub(crate) fn finish_with_error(
        &mut self,
        sys: &mut dyn Sys,
        id: u64,
        code: ErrCode,
        detail: &str,
    ) {
        self.finish_req(
            sys,
            id,
            Reply::Err {
                code,
                detail: detail.to_string(),
            },
        );
    }
}

/// Maps a syscall error onto a wire error reply.
pub(crate) fn err_reply(e: SysError) -> Reply {
    let code = match e {
        SysError::NoSuchProcess => ErrCode::NoSuchProcess,
        SysError::PermissionDenied | SysError::AlreadyTraced => ErrCode::Permission,
        SysError::NoSuchHost | SysError::Unreachable => ErrCode::NoRoute,
        SysError::HostDown => ErrCode::HostDown,
        _ => ErrCode::Internal,
    };
    Reply::Err {
        code,
        detail: e.to_string(),
    }
}
