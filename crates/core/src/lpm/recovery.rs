//! Crash recovery: the crash coordinator site machinery of Section 5.
//!
//! "At all times in normal operation, one LPM has the distinguished role
//! of being the crash coordinator site, CCS. ... The crash of a host (or a
//! LPM) in the network results in LPMs trying to establish connections
//! with the (known) CCS. If the CCS were found to be down ... the LPM that
//! has detected the failure would try to connect in descending order of
//! priority with the hosts listed in the user's .recovery file. If none of
//! these hosts is available, a time-to-die interval exists that tells the
//! LPM when to exit after having terminated all of the user's processes in
//! that host. ... those new CCSs that are not at the top of the list keep
//! probing, at a low frequency, the hosts higher on the list."

use ppm_proto::msg::Msg;
use ppm_proto::types::Gpid;
use ppm_runtime::ids::Pid;
use ppm_runtime::obs::SpanPhase;
use ppm_runtime::signal::Signal;
use ppm_runtime::sys::Sys;

use crate::config::RecoveryPolicy;
use crate::locator::{PmdExchange, PmdProgress};
use ppm_runtime::program::ConnEvent;

use super::{ChanPurpose, Lpm, RecovMode, TimerKind};

impl Lpm {
    // ---- CCS view management ------------------------------------------------

    /// Considers adopting another LPM's CCS view. Higher epochs win; equal
    /// epochs prefer the higher-priority (earlier `.recovery`) host.
    pub(crate) fn consider_ccs(&mut self, sys: &mut dyn Sys, ccs: &str, epoch: u64) {
        if ccs.is_empty() {
            return;
        }
        let adopt = match epoch.cmp(&self.epoch) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => {
                ccs != self.ccs && self.rank_of(ccs) < self.rank_of(&self.ccs)
            }
        };
        if adopt {
            self.ccs = ccs.to_string();
            self.epoch = epoch;
            self.note_recovery(sys, format!("adopted CCS {ccs} (epoch {epoch})"));
            self.after_ccs_change(sys);
        }
    }

    fn rank_of(&self, host: &str) -> usize {
        self.recovery_list
            .iter()
            .position(|h| h == host)
            .unwrap_or(usize::MAX)
    }

    fn after_ccs_change(&mut self, sys: &mut dyn Sys) {
        // Leaving orphanhood if we were there.
        if matches!(
            self.recov,
            RecovMode::Orphan { .. } | RecovMode::Seeking { .. }
        ) {
            self.recov = RecovMode::Normal;
        }
        // If we are the acting CCS but not the top-priority host, probe
        // upward at low frequency.
        self.maybe_arm_probe(sys);
    }

    fn maybe_arm_probe(&mut self, sys: &mut dyn Sys) {
        if matches!(self.cfg.recovery_policy, RecoveryPolicy::NameServer { .. }) {
            // Assignments are stable until the name server reassigns;
            // there is no priority list to probe upward.
            return;
        }
        let acting_ccs = self.ccs == self.host;
        let top_priority = self.rank_of(&self.host) == 0 || self.recovery_list.is_empty();
        if acting_ccs && !top_priority && !self.probe_armed {
            self.probe_armed = true;
            let d = self.cfg.probe_interval;
            self.arm(sys, d, TimerKind::Probe);
        }
    }

    /// Announces the current CCS view on all sibling channels.
    pub(crate) fn announce_ccs(&mut self, sys: &mut dyn Sys) {
        let msg = Msg::CcsAnnounce {
            user: self.auth.uid().0,
            ccs: self.ccs.clone(),
            epoch: self.epoch,
        };
        let conns: Vec<_> = self.siblings.values().copied().collect();
        for conn in conns {
            let _ = self.send_msg(sys, conn, &msg);
        }
    }

    // ---- failure detection entry points --------------------------------------

    /// A sibling connection was lost: Section 5's trigger for recovery.
    pub(crate) fn on_sibling_lost(&mut self, sys: &mut dyn Sys, host: &str) {
        if matches!(self.recov, RecovMode::Seeking { .. }) {
            return; // already walking the list
        }
        if host == self.ccs {
            self.note_recovery(sys, format!("lost contact with CCS {host}; seeking"));
            self.start_seek(sys);
        } else if self.ccs != self.host && !self.siblings.contains_key(&self.ccs) {
            // Re-establish contact with the CCS on any failure.
            let ccs = self.ccs.clone();
            let _ = self.start_channel_if_absent(sys, &ccs, ChanPurpose::Sibling);
        }
    }

    fn start_channel_if_absent(
        &mut self,
        sys: &mut dyn Sys,
        host: &str,
        purpose: ChanPurpose,
    ) -> bool {
        if self.siblings.contains_key(host) || self.channels.contains_key(host) {
            return true;
        }
        self.start_channel(sys, host, purpose)
    }

    /// Locates a new CCS: walks the `.recovery` list, or asks the name
    /// server, per the configured policy.
    pub(crate) fn start_seek(&mut self, sys: &mut dyn Sys) {
        match self.cfg.recovery_policy.clone() {
            RecoveryPolicy::RecoveryFile => {
                self.recov = RecovMode::Seeking { rank: 0 };
                self.try_seek_candidate(sys);
            }
            RecoveryPolicy::NameServer { .. } => {
                self.recov = RecovMode::Seeking { rank: 0 };
                let dead = Some(self.ccs.clone()).filter(|c| !c.is_empty());
                self.begin_ns_query(sys, dead);
            }
        }
    }

    // ---- name-server CCS policy (Section 5 alternative) ---------------------

    /// Starts (or restarts) a CCS query toward the name server's pmd.
    pub(crate) fn begin_ns_query(&mut self, sys: &mut dyn Sys, dead: Option<String>) {
        let RecoveryPolicy::NameServer { host } = self.cfg.recovery_policy.clone() else {
            return;
        };
        let Ok(target) = sys.resolve_host(&host) else {
            self.enter_orphanhood(sys);
            return;
        };
        let request = ppm_proto::msg::Msg::CcsQuery {
            user: self.auth.uid().0,
            claimant: self.host.clone(),
            dead,
        };
        let retry = self.cfg.connect_retry;
        let attempts = self.cfg.connect_attempts;
        let x = PmdExchange::start(sys, target, request, retry, attempts);
        self.ns_query = Some(x);
    }

    /// Routes a connection event into the in-flight name-server exchange.
    pub(crate) fn ns_conn_event(&mut self, sys: &mut dyn Sys, ev: ConnEvent) {
        let Some(mut x) = self.ns_query.take() else {
            return;
        };
        let progress = x.on_conn_event(sys, ev);
        self.ns_query = Some(x);
        self.apply_ns_progress(sys, progress);
    }

    /// Routes a message into the in-flight name-server exchange.
    pub(crate) fn ns_message(&mut self, sys: &mut dyn Sys, data: bytes::Bytes) {
        let Some(mut x) = self.ns_query.take() else {
            return;
        };
        let progress = x.on_message(sys, data);
        self.ns_query = Some(x);
        self.apply_ns_progress(sys, progress);
    }

    /// The NsRetry timer fired.
    pub(crate) fn ns_retry(&mut self, sys: &mut dyn Sys) {
        let Some(mut x) = self.ns_query.take() else {
            return;
        };
        if x.is_terminal() {
            return;
        }
        let progress = x.retry(sys);
        self.ns_query = Some(x);
        self.apply_ns_progress(sys, progress);
    }

    fn apply_ns_progress(&mut self, sys: &mut dyn Sys, progress: PmdProgress) {
        match progress {
            PmdProgress::Pending => {}
            PmdProgress::RetryAfter(d) => {
                self.arm(sys, d, TimerKind::NsRetry);
            }
            PmdProgress::Answer(ppm_proto::msg::Msg::CcsInfo { ccs, epoch, .. }) => {
                self.ns_query = None;
                if epoch >= self.epoch {
                    let changed = self.ccs != ccs || self.epoch != epoch;
                    self.ccs = ccs.clone();
                    self.epoch = epoch;
                    if changed {
                        self.note_recovery(
                            sys,
                            format!("name server assigned CCS {ccs} (epoch {epoch})"),
                        );
                        self.announce_ccs(sys);
                    }
                }
                self.recov = RecovMode::Normal;
                self.orphan_deadline = None;
                // Keep a channel to the coordinator so its failure is
                // observable.
                if self.ccs != self.host && !self.siblings.contains_key(&self.ccs) {
                    let ccs = self.ccs.clone();
                    let _ = self.start_channel_if_absent(sys, &ccs, ChanPurpose::Sibling);
                }
            }
            PmdProgress::Answer(_) => {
                self.ns_query = None;
                self.enter_orphanhood(sys);
            }
            PmdProgress::Failed(err) => {
                self.ns_query = None;
                self.note_recovery(sys, format!("name server unreachable: {err}"));
                self.enter_orphanhood(sys);
            }
        }
    }

    fn try_seek_candidate(&mut self, sys: &mut dyn Sys) {
        let RecovMode::Seeking { rank } = self.recov else {
            return;
        };
        let candidates: Vec<String> = if self.recovery_list.is_empty() {
            vec![self.host.clone()]
        } else {
            self.recovery_list.clone()
        };
        if rank >= candidates.len() {
            self.enter_orphanhood(sys);
            return;
        }
        let candidate = candidates[rank].clone();
        if candidate == self.host {
            self.become_ccs(sys);
            return;
        }
        if self.siblings.contains_key(&candidate) {
            // Already connected: adopt it directly.
            self.adopt_candidate(sys, &candidate);
            return;
        }
        if !self.start_channel_if_absent(sys, &candidate, ChanPurpose::Seek { rank }) {
            // Unresolvable name; next candidate.
            self.recov = RecovMode::Seeking { rank: rank + 1 };
            self.try_seek_candidate(sys);
        }
    }

    fn adopt_candidate(&mut self, sys: &mut dyn Sys, candidate: &str) {
        self.epoch += 1;
        self.obs.with(|r| r.inc(self.obs.ccs_elections));
        self.ccs = candidate.to_string();
        self.recov = RecovMode::Normal;
        self.orphan_deadline = None;
        self.note_recovery(
            sys,
            format!("recovered: CCS is {candidate} (epoch {})", self.epoch),
        );
        self.announce_ccs(sys);
        self.maybe_arm_probe(sys);
    }

    /// This LPM assumes the CCS role.
    pub(crate) fn become_ccs(&mut self, sys: &mut dyn Sys) {
        self.epoch += 1;
        self.obs.with(|r| r.inc(self.obs.ccs_elections));
        self.ccs = self.host.clone();
        self.recov = RecovMode::Normal;
        self.orphan_deadline = None;
        self.note_recovery(sys, format!("acting as CCS (epoch {})", self.epoch));
        self.announce_ccs(sys);
        self.maybe_arm_probe(sys);
    }

    /// Outcome of a channel started for recovery purposes.
    pub(crate) fn channel_purpose_done(
        &mut self,
        sys: &mut dyn Sys,
        host: &str,
        purpose: ChanPurpose,
        success: bool,
    ) {
        match purpose {
            ChanPurpose::Sibling => {}
            ChanPurpose::Seek { rank } => {
                if !matches!(self.recov, RecovMode::Seeking { rank: r } if r == rank) {
                    return; // stale
                }
                if success {
                    self.adopt_candidate(sys, host);
                } else {
                    self.recov = RecovMode::Seeking { rank: rank + 1 };
                    self.try_seek_candidate(sys);
                }
            }
            ChanPurpose::Probe => {
                if success {
                    // A higher-priority host answered: it resumes as CCS.
                    self.adopt_candidate(sys, host);
                }
                // Failure: keep probing at the next tick.
            }
        }
    }

    // ---- orphanhood and time-to-die ------------------------------------------

    fn enter_orphanhood(&mut self, sys: &mut dyn Sys) {
        let now = sys.now();
        let ttd = self.cfg.time_to_die;
        // The deadline is set once, when contact is first lost; failed
        // retries do not push it back.
        let deadline = match self.orphan_deadline {
            Some(deadline) => deadline,
            None => {
                let deadline = now + ttd;
                self.orphan_deadline = Some(deadline);
                self.obs.with(|r| r.inc(self.obs.orphan_entries));
                self.note_recovery(
                    sys,
                    format!("no recovery host reachable; time-to-die at {deadline}"),
                );
                deadline
            }
        };
        self.recov = RecovMode::Orphan { deadline };
        if !self.ttd_armed {
            self.ttd_armed = true;
            let remaining = deadline.saturating_since(now);
            self.arm(sys, remaining, TimerKind::TimeToDie);
        }
        let retry = self.cfg.reconnect_interval;
        self.arm(sys, retry, TimerKind::SeekRetry);
    }

    /// Contact with a healthy sibling or the CCS ends orphanhood: "a LPM
    /// not in contact with a CCS resumes the normal mode of operation if
    /// it manages to connect to the CCS at any future retry, or gets a
    /// communication request from a LPM in contact with a valid CCS."
    pub(crate) fn recovered_contact(&mut self, sys: &mut dyn Sys) {
        if matches!(self.recov, RecovMode::Orphan { .. }) {
            self.recov = RecovMode::Normal;
            self.note_recovery(
                sys,
                "contact re-established; normal operation resumed".to_string(),
            );
        }
        self.orphan_deadline = None;
    }

    /// Periodic retry while orphaned.
    pub(crate) fn seek_retry(&mut self, sys: &mut dyn Sys) {
        if matches!(self.recov, RecovMode::Orphan { .. }) {
            self.start_seek(sys);
        }
    }

    /// The time-to-die deadline fired.
    pub(crate) fn time_to_die(&mut self, sys: &mut dyn Sys) {
        self.ttd_armed = false;
        // Still disconnected? (Seeking counts: the walk is failing.)
        let Some(deadline) = self.orphan_deadline else {
            return;
        };
        if matches!(self.recov, RecovMode::Normal) {
            return;
        }
        if sys.now() < deadline {
            let remaining = deadline.saturating_since(sys.now());
            self.ttd_armed = true;
            self.arm(sys, remaining, TimerKind::TimeToDie);
            return;
        }
        self.note_recovery(
            sys,
            "time-to-die expired: terminating local processes and exiting".to_string(),
        );
        // "the appropriate action is to close down all the activities."
        let snapshot = self.tree.snapshot();
        let at = sys.now();
        for rec in snapshot {
            if rec.state != ppm_proto::types::WireProcState::Dead {
                let _ = sys.kill(Pid(rec.gpid.pid), Signal::Kill);
                self.history.record(
                    at,
                    Gpid::new(self.host.clone(), rec.gpid.pid),
                    "ttd-kill",
                    "killed at time-to-die",
                );
            }
        }
        self.shutdown(sys, 2);
    }

    /// Low-frequency probe of higher-priority recovery hosts.
    pub(crate) fn probe_tick(&mut self, sys: &mut dyn Sys) {
        self.probe_armed = false;
        if self.ccs != self.host {
            return; // no longer acting CCS
        }
        let my_rank = self.rank_of(&self.host);
        let higher: Vec<String> = self
            .recovery_list
            .iter()
            .take(my_rank.min(self.recovery_list.len()))
            .cloned()
            .collect();
        if higher.is_empty() {
            return;
        }
        for host in higher {
            if let Some(&conn) = self.siblings.get(&host) {
                // Connected: ask directly whether it is back.
                let probe = Msg::Probe {
                    user: self.auth.uid().0,
                    from: self.host.clone(),
                };
                self.note_probe_sent(sys, &host);
                let _ = self.send_msg(sys, conn, &probe);
            } else {
                let _ = self.start_channel_if_absent(sys, &host, ChanPurpose::Probe);
            }
        }
        self.maybe_arm_probe(sys);
    }

    /// A probed host answered.
    pub(crate) fn handle_probe_ack(
        &mut self,
        sys: &mut dyn Sys,
        from: &str,
        ccs: &str,
        epoch: u64,
    ) {
        if let Some(sent) = self.probe_sent.remove(from) {
            let rtt = sys.now().saturating_since(sent);
            self.obs
                .with(|r| r.record(self.obs.probe_rtt_us, rtt.as_micros()));
            if sys.spans_enabled() {
                sys.span("probe", format!("{}>{from}", self.host), SpanPhase::End);
            }
        }
        self.consider_ccs(sys, ccs, epoch);
        // The probed host is alive; if it outranks the current CCS, it
        // resumes the coordinator role.
        if self.ccs == self.host && self.rank_of(from) < self.rank_of(&self.host) {
            self.adopt_candidate(sys, from);
        }
    }

    /// Housekeeping hook: keep the probe timer alive while acting CCS,
    /// and keepalive the CCS channel so partitions are discovered — a
    /// break is only observable on send, like TCP.
    pub(crate) fn recovery_housekeeping(&mut self, sys: &mut dyn Sys) {
        self.maybe_arm_probe(sys);
        let now = sys.now();
        let interval = self.cfg.probe_interval;
        if self.ccs != self.host && now.saturating_since(self.last_keepalive) >= interval {
            if let Some(&conn) = self.siblings.get(&self.ccs.clone()) {
                self.last_keepalive = now;
                let probe = Msg::Probe {
                    user: self.auth.uid().0,
                    from: self.host.clone(),
                };
                let ccs = self.ccs.clone();
                self.note_probe_sent(sys, &ccs);
                let _ = self.send_msg(sys, conn, &probe);
            }
        }
    }

    /// Stamps an outgoing probe for RTT measurement. An unanswered probe
    /// keeps its original stamp so the eventual ack measures the full gap.
    fn note_probe_sent(&mut self, sys: &mut dyn Sys, host: &str) {
        if !self.probe_sent.contains_key(host) {
            self.probe_sent.insert(host.to_string(), sys.now());
            if sys.spans_enabled() {
                sys.span("probe", format!("{}>{host}", self.host), SpanPhase::Begin);
            }
        }
    }

    // ---- crash respawn: re-adoption and forest gossip ------------------------

    /// Respawn-mode start: adopt every surviving same-user process and
    /// rebuild the local genealogy from kernel truth ("the LPM can regain
    /// control of already-running processes via adoption"). Cross-host
    /// logical edges are not recoverable locally; sibling gossip restores
    /// them ([`Msg::ForestPull`]).
    pub(crate) fn readopt_survivors(
        &mut self,
        sys: &mut dyn Sys,
        crashed_at: ppm_runtime::time::SimTime,
    ) {
        let me = sys.pid();
        let flags = self.cfg.default_trace_flags;
        let mut readopted = 0u64;
        for info in sys.user_processes(sys.uid()) {
            // Skip ourselves and any other manager; a dead predecessor's
            // claim on a survivor lapses, so adoption takes over.
            if info.pid == me || info.command.starts_with("lpm") {
                continue;
            }
            if sys.adopt(info.pid, flags).is_err() {
                continue;
            }
            // A survivor reparented to init lost its real parent to the
            // crash; record ppid 0 ("parent lost") so such roots stay
            // distinguishable from ordinary root spawns, which the tree
            // records with ppid 1.
            let ppid = if info.ppid.0 <= 1 { 0 } else { info.ppid.0 };
            self.tree.track(
                info.pid.0,
                ppid,
                None,
                info.command.clone(),
                info.started_at.as_micros(),
                true,
            );
            self.tree.set_cpu(info.pid.0, info.rusage.cpu.as_micros());
            // Survivors already executed; there will be no exec event.
            self.tree
                .set_state(info.pid.0, ppm_proto::types::WireProcState::Running);
            readopted += 1;
        }
        let now = sys.now();
        let mttr = now.saturating_since(crashed_at);
        self.obs.with(|r| {
            r.inc(self.obs.restarts);
            r.add(self.obs.readopted, readopted);
            r.record(self.obs.mttr_us, mttr.as_micros());
        });
        self.rebuilding = readopted > 0;
        self.note_recovery(
            sys,
            format!("respawned LPM re-adopted {readopted} survivor(s), mttr {mttr}"),
        );
        if readopted > 0 {
            self.history.record(
                now,
                Gpid::new(self.host.clone(), 0),
                "readopt",
                format!("{readopted} survivors after crash"),
            );
        }
        // Rejoin the computation: the predecessor's sibling channels died
        // with it, and nobody dials a host they believe is still up. The
        // recovery-list walk (Section 5's trigger) reconnects us — and the
        // first channel to come up carries the forest pull.
        self.start_seek(sys);
    }

    /// Survivors whose place in the forest is unexplained: re-adopted,
    /// alive, with the "parent lost" marker and no cross-host logical
    /// edge. These are the forest roots the crash manufactured.
    pub(crate) fn failure_roots(&self) -> Vec<u32> {
        self.tree
            .snapshot()
            .iter()
            .filter(|p| {
                p.adopted
                    && p.state != ppm_proto::types::WireProcState::Dead
                    && p.logical_parent.is_none()
                    && p.ppid == 0
            })
            .map(|p| p.gpid.pid)
            .collect()
    }

    /// While rebuilding, ask a freshly connected sibling for the logical
    /// parents of the survivors that still look like failure roots.
    pub(crate) fn maybe_pull_forest(&mut self, sys: &mut dyn Sys, conn: ppm_runtime::ids::ConnId) {
        if !self.rebuilding {
            return;
        }
        let live = self.failure_roots();
        if live.is_empty() {
            self.rebuilding = false;
            return;
        }
        let msg = Msg::ForestPull {
            user: self.auth.uid().0,
            host: self.host.clone(),
            live,
            // Announce our incarnation so receivers fence the
            // predecessor's correlation ids when they purge its dedup
            // entries below.
            boot: self.boot_epoch(),
        };
        let _ = self.send_msg(sys, conn, &msg);
    }

    /// A respawned sibling asked which of its survivors we know remote
    /// parents for. Answer only with edges we actually recorded; silence
    /// means we have nothing to contribute.
    pub(crate) fn handle_forest_pull(
        &mut self,
        sys: &mut dyn Sys,
        conn: ppm_runtime::ids::ConnId,
        from: &str,
        live: Vec<u32>,
        boot: u64,
    ) {
        // A pull proves the peer's LPM is a fresh incarnation: its
        // correlation counter restarted, so stale dedup entries from its
        // predecessor would wrongly suppress (and mis-answer) new ids.
        // Fence the predecessor's boot epoch *before* purging: once the
        // cached replies are gone, a late retry stamped by the dead
        // incarnation must classify Stale, never New.
        self.rpc.fence_origin(from, boot);
        let purged = self.rpc.purge_peer(from);
        if purged > 0 {
            self.note_recovery(
                sys,
                format!("peer {from} restarted: purged {purged} dedup entries"),
            );
        }
        let edges: Vec<(u32, Gpid)> = match self.remote_children.get(from) {
            Some(known) => live
                .iter()
                .filter_map(|pid| known.get(pid).map(|g| (*pid, g.clone())))
                .collect(),
            None => Vec::new(),
        };
        if edges.is_empty() {
            return;
        }
        self.note_recovery(
            sys,
            format!("forest gossip: sending {} edge(s) to {from}", edges.len()),
        );
        let msg = Msg::ForestInfo {
            user: self.auth.uid().0,
            host: from.to_string(),
            edges,
        };
        let _ = self.send_msg(sys, conn, &msg);
    }

    /// Sibling gossip answering our pull: graft the remembered logical
    /// edges onto the rebuilt forest, undoing the crash's degeneration.
    pub(crate) fn handle_forest_info(
        &mut self,
        sys: &mut dyn Sys,
        host: &str,
        edges: Vec<(u32, Gpid)>,
    ) {
        if host != self.host {
            return;
        }
        let mut applied = 0usize;
        for (pid, parent) in edges {
            let known = self
                .tree
                .get(pid)
                .is_some_and(|n| n.logical_parent.is_none());
            if known {
                self.tree.set_logical_parent(pid, parent);
                applied += 1;
            }
        }
        if applied > 0 {
            self.note_recovery(
                sys,
                format!("forest gossip restored {applied} logical edge(s)"),
            );
        }
        // If the gossip explained every failure root, the rebuild is
        // done *now*. Waiting for the next sibling connect to notice
        // (via `maybe_pull_forest`) leaves the LPM rebuilding forever
        // when the only sibling channel is already up — the model
        // checker's `no-orphans` counterexample.
        if self.rebuilding && self.failure_roots().is_empty() {
            self.rebuilding = false;
            self.note_recovery(sys, "forest rebuild complete".to_string());
        }
    }
}
