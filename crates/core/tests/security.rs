//! Authentication and isolation tests — Section 3: "Our current
//! authentication scheme can only prevent user-level masquerade" — plus
//! per-user isolation of the management domain.

use bytes::Bytes;
use ppm_core::auth::UserCred;
use ppm_core::client::{Tool, ToolStep};
use ppm_core::config::PpmConfig;
use ppm_harness::harness::PpmHarness;
use ppm_proto::msg::Op;
use ppm_runtime::sys::Sys;
use ppm_simnet::time::SimDuration;
use ppm_simnet::topology::CpuClass;
use ppm_simos::ids::{ConnId, Uid};
use ppm_simos::program::{ConnEvent, Program, SpawnSpec};

const ALICE: Uid = Uid(100);
const BOB: Uid = Uid(200);
const ALICE_SECRET: u64 = 0xA11CE;
const BOB_SECRET: u64 = 0xB0B;

fn harness() -> PpmHarness {
    PpmHarness::builder()
        .host("shared", CpuClass::Vax780)
        .host("other", CpuClass::Vax750)
        .link("shared", "other")
        .user(ALICE, ALICE_SECRET, &["shared"], PpmConfig::default())
        .user(BOB, BOB_SECRET, &["shared"], PpmConfig::default())
        .build()
}

#[test]
fn masquerading_tool_with_wrong_secret_is_rejected() {
    let mut ppm = harness();
    // Alice's LPM exists.
    ppm.spawn_remote("shared", ALICE, "shared", "job", None, None)
        .unwrap();

    // An attacker claims to be Alice but only knows Bob's secret.
    let forged = UserCred::new(ALICE, BOB_SECRET);
    let (tool, handle) = Tool::new(
        forged,
        PpmConfig::default(),
        vec![ToolStep::new("shared", Op::Snapshot)],
    );
    let host = ppm.host("shared").unwrap();
    ppm.world_mut()
        .spawn_user(host, ALICE, SpawnSpec::new("evil-tool", Box::new(tool)))
        .unwrap();
    ppm.run_for(SimDuration::from_secs(10));

    let outcome = handle.lock().unwrap().clone();
    assert!(outcome.done);
    let err = outcome.error.expect("authentication must fail");
    assert!(err.contains("permission denied"), "{err}");
    assert!(outcome.replies.is_empty(), "no data leaked");
}

#[test]
fn users_have_separate_lpms_and_views() {
    let mut ppm = harness();
    let a = ppm
        .spawn_remote("shared", ALICE, "shared", "alice-job", None, None)
        .unwrap();
    let b = ppm
        .spawn_remote("shared", BOB, "shared", "bob-job", None, None)
        .unwrap();

    let alices = ppm.snapshot("shared", ALICE, "*").unwrap();
    assert!(alices.iter().any(|p| p.gpid == a));
    assert!(
        !alices.iter().any(|p| p.gpid == b),
        "Bob's processes invisible to Alice"
    );

    let bobs = ppm.snapshot("shared", BOB, "*").unwrap();
    assert!(bobs.iter().any(|p| p.gpid == b));
    assert!(!bobs.iter().any(|p| p.gpid == a));

    // Two LPM processes exist on the shared host, one per user.
    let host = ppm.host("shared").unwrap();
    let lpms = ppm
        .world()
        .core()
        .kernel(host)
        .processes()
        .filter(|p| p.command.starts_with("lpm") && p.is_alive())
        .count();
    assert_eq!(lpms, 2);
}

#[test]
fn cross_user_control_is_denied_end_to_end() {
    let mut ppm = harness();
    let a = ppm
        .spawn_remote("shared", ALICE, "shared", "alice-job", None, None)
        .unwrap();
    // Bob (with his own valid credentials) asks *his* LPM to kill Alice's
    // process; the kernel-level uid check refuses.
    let err = ppm
        .control("shared", BOB, &a, ppm_proto::msg::ControlAction::Kill)
        .unwrap_err();
    assert!(err.to_string().contains("Permission"), "{err}");
    let host = ppm.host("shared").unwrap();
    assert!(ppm
        .world()
        .core()
        .kernel(host)
        .get(ppm_simos::ids::Pid(a.pid))
        .unwrap()
        .is_alive());
}

/// A program that connects straight to an LPM accept port and sends
/// garbage instead of a `Hello`.
struct GarbageSender {
    port: ppm_simos::ids::Port,
    conn: Option<ConnId>,
    closed: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl Program for GarbageSender {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        self.conn = sys.connect(sys.host(), self.port).ok();
    }
    fn on_conn_event(&mut self, sys: &mut dyn Sys, _conn: ConnId, event: ConnEvent) {
        match event {
            ConnEvent::Established => {
                let conn = self.conn.expect("connected");
                let _ = sys.send(conn, Bytes::from_static(b"\xFF\xFFnot a hello"));
            }
            ConnEvent::Closed | ConnEvent::Failed(_) => {
                self.closed.store(true, std::sync::atomic::Ordering::SeqCst);
                sys.exit(0);
            }
            _ => {}
        }
    }
    fn name(&self) -> &str {
        "garbage"
    }
}

#[test]
fn protocol_violation_before_hello_drops_the_channel() {
    let mut ppm = harness();
    ppm.spawn_remote("shared", ALICE, "shared", "job", None, None)
        .unwrap();
    let closed = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let prog = GarbageSender {
        port: ppm_core::config::lpm_port(ALICE),
        conn: None,
        closed: std::sync::Arc::clone(&closed),
    };
    let host = ppm.host("shared").unwrap();
    ppm.world_mut()
        .spawn_user(host, BOB, SpawnSpec::new("garbage", Box::new(prog)))
        .unwrap();
    ppm.run_for(SimDuration::from_secs(5));
    assert!(
        closed.load(std::sync::atomic::Ordering::SeqCst),
        "LPM closed the unauthenticated channel"
    );

    // The LPM is unharmed.
    let procs = ppm.snapshot("shared", ALICE, "shared").unwrap();
    assert!(!procs.is_empty());
}

#[test]
fn unknown_user_cannot_create_an_lpm() {
    let mut ppm = harness();
    // uid 999 is not in the directory; pmd answers NoLpm and the channel
    // reports a permanent failure.
    let ghost = UserCred::new(Uid(999), 1234);
    let (tool, handle) = Tool::new(
        ghost,
        PpmConfig::default(),
        vec![ToolStep::new("shared", Op::Ping)],
    );
    let host = ppm.host("shared").unwrap();
    ppm.world_mut()
        .spawn_user(host, Uid(999), SpawnSpec::new("ghost-tool", Box::new(tool)))
        .unwrap();
    ppm.run_for(SimDuration::from_secs(10));
    let outcome = handle.lock().unwrap().clone();
    assert!(outcome.done);
    assert!(outcome.error.is_some());
}
