//! End-to-end crash/recovery under the scripted fault-injection
//! subsystem.
//!
//! These tests exercise the full loop the paper's Section 5 sketches but
//! never implemented: an LPM dies while its computation is live, the pmd
//! respawns it, the replacement re-adopts the surviving processes, and
//! sibling gossip rebuilds the logical (cross-host) edges of the
//! genealogy forest that died with the old LPM's memory.

use std::collections::BTreeSet;

use ppm_core::config::PpmConfig;
use ppm_core::pmd::PmdOptions;
use ppm_harness::harness::PpmHarness;
use ppm_proto::types::{Gpid, WireProcState};
use ppm_simnet::fault::FaultPlan;
use ppm_simnet::time::SimDuration;
use ppm_simnet::topology::CpuClass;
use ppm_simos::ids::{Pid, Uid};
use ppm_simos::signal::Signal;

const USER: Uid = Uid(100);
const OTHER: Uid = Uid(200);

fn harness() -> PpmHarness {
    PpmHarness::builder()
        .seed(0xFA017)
        .host("home", CpuClass::Vax780)
        .host("work", CpuClass::Sun2)
        .host("far", CpuClass::Sun2)
        .link("home", "work")
        .link("work", "far")
        .pmd_options(PmdOptions {
            stable_storage: true,
            respawn_lpms: true,
        })
        .user(USER, 0xFA017, &["home", "work"], PpmConfig::fast_recovery())
        .build()
}

/// The same network with a second, unrelated tenant sharing every host.
fn two_user_harness() -> PpmHarness {
    PpmHarness::builder()
        .seed(0xFA017)
        .host("home", CpuClass::Vax780)
        .host("work", CpuClass::Sun2)
        .host("far", CpuClass::Sun2)
        .link("home", "work")
        .link("work", "far")
        .pmd_options(PmdOptions {
            stable_storage: true,
            respawn_lpms: true,
        })
        .user(USER, 0xFA017, &["home", "work"], PpmConfig::fast_recovery())
        .user(
            OTHER,
            0xFA200,
            &["home", "work"],
            PpmConfig::fast_recovery(),
        )
        .build()
}

/// The pid of the live LPM process on `host`, if any.
fn lpm_pid(ppm: &PpmHarness, host: &str) -> Option<Pid> {
    let h = ppm.world().core().host_by_name(host)?;
    ppm.world()
        .core()
        .kernel(h)
        .processes()
        .find(|p| p.command.starts_with("lpm") && p.is_alive())
        .map(|p| p.pid)
}

/// The pid of `uid`'s live LPM on `host` — the per-tenant variant for
/// networks where several users keep LPMs on the same host.
fn lpm_pid_of(ppm: &PpmHarness, host: &str, uid: Uid) -> Option<Pid> {
    let h = ppm.world().core().host_by_name(host)?;
    let name = format!("lpm-{}", uid.0);
    ppm.world()
        .core()
        .kernel(h)
        .processes()
        .find(|p| p.command == name && p.is_alive())
        .map(|p| p.pid)
}

/// Adopted, live user processes on `host` as seen by a sweep from
/// `from`: the forest's node set for that host.
fn forest_nodes(ppm: &mut PpmHarness, from: &str, host: &str) -> BTreeSet<u32> {
    ppm.snapshot(from, USER, "*")
        .expect("snapshot")
        .into_iter()
        .filter(|p| p.gpid.host == host && p.adopted && p.state != WireProcState::Dead)
        .map(|p| p.gpid.pid)
        .collect()
}

/// Killing the LPM out from under a live computation: the pmd notices the
/// unclean exit, respawns the LPM, and the replacement re-adopts every
/// surviving process — the forest's node set is exactly the pre-crash
/// live set, and the recovery metrics are visible in the registry.
#[test]
fn killed_lpm_is_respawned_and_readopts_survivors() {
    let mut ppm = harness();

    // A computation with live children on work, driven from home.
    for i in 0..3 {
        ppm.spawn_remote("home", USER, "work", &format!("job-{i}"), None, None)
            .expect("spawn");
    }
    ppm.run_for(SimDuration::from_secs(1));
    let before = forest_nodes(&mut ppm, "home", "work");
    assert_eq!(before.len(), 3, "three live managed jobs before the crash");

    // SIGKILL the LPM process itself; the jobs survive it.
    let victim = lpm_pid(&ppm, "work").expect("work has an LPM");
    let h = ppm.host("work").unwrap();
    ppm.world_mut()
        .post_signal(Uid::ROOT, (h, victim), Signal::Kill)
        .expect("kill LPM");
    ppm.run_for(SimDuration::from_secs(5));

    // A replacement LPM exists and it is a different process.
    let respawned = lpm_pid(&ppm, "work").expect("LPM was respawned");
    assert_ne!(respawned, victim, "a fresh LPM process");

    // The forest was reconstructed: same node set as before the crash.
    let after = forest_nodes(&mut ppm, "home", "work");
    assert_eq!(after, before, "re-adoption restored the forest node set");

    // Recovery metrics are in the respawned LPM's registry section.
    let report = ppm.metrics_report();
    assert!(
        report.contains("work/uid100 lpm.restarts 1"),
        "one restart counted:\n{report}"
    );
    assert!(
        report.contains("work/uid100 lpm.readopted 3"),
        "three survivors re-adopted:\n{report}"
    );
    assert!(
        report.contains("work/uid100 lpm.mttr_us count=1"),
        "recovery time recorded"
    );

    // And the PPM still serves requests on the respawned LPM.
    ppm.spawn_remote("home", USER, "work", "after", None, None)
        .expect("respawned LPM serves spawns");
}

/// Logical (cross-host) parent edges live only in LPM memory, so they
/// die with the killed LPM — and come back through sibling gossip: the
/// respawned LPM pulls from the sibling that originated the spawns, which
/// remembers the logical parent of every child it created remotely.
#[test]
fn sibling_gossip_rebuilds_logical_edges_after_lpm_death() {
    let mut ppm = harness();

    // A parent on home with two logical children on work.
    let parent = ppm
        .spawn_remote("home", USER, "home", "parent", None, None)
        .expect("spawn parent");
    let mut children = Vec::new();
    for i in 0..2 {
        let g = ppm
            .spawn_remote(
                "home",
                USER,
                "work",
                &format!("child-{i}"),
                Some(parent.clone()),
                None,
            )
            .expect("spawn child");
        children.push(g);
    }
    ppm.run_for(SimDuration::from_secs(1));

    let edge_of = |procs: &[ppm_proto::types::ProcRecord], g: &Gpid| -> Option<Gpid> {
        procs
            .iter()
            .find(|p| &p.gpid == g)
            .and_then(|p| p.logical_parent.clone())
    };
    let procs = ppm.snapshot("home", USER, "*").expect("snapshot");
    for c in &children {
        assert_eq!(
            edge_of(&procs, c).as_ref(),
            Some(&parent),
            "logical edge present before the crash"
        );
    }

    // Kill work's LPM; its forest (and the logical edges) die with it.
    let victim = lpm_pid(&ppm, "work").expect("work has an LPM");
    let h = ppm.host("work").unwrap();
    ppm.world_mut()
        .post_signal(Uid::ROOT, (h, victim), Signal::Kill)
        .expect("kill LPM");
    ppm.run_for(SimDuration::from_secs(5));

    // Traffic from home re-opens the sibling channel; the respawned LPM
    // answers the hello with a forest pull and grafts the reply.
    let procs = ppm
        .snapshot("home", USER, "*")
        .expect("post-crash snapshot");
    ppm.run_for(SimDuration::from_secs(2));
    for c in &children {
        assert!(
            procs.iter().any(|p| &p.gpid == c),
            "child {c} was re-adopted"
        );
    }
    let procs = ppm
        .snapshot("home", USER, "*")
        .expect("post-gossip snapshot");
    for c in &children {
        assert_eq!(
            edge_of(&procs, c).as_ref(),
            Some(&parent),
            "sibling gossip restored the logical edge of {c}"
        );
    }
}

/// The same recovery driven end-to-end by a scripted plan: `kill work
/// lpm` at 2 s. The subsystem (not the test) schedules the fault, and the
/// faults.injected counter records it.
#[test]
fn scripted_kill_plan_drives_respawn() {
    let mut ppm = harness();
    for i in 0..2 {
        ppm.spawn_remote("home", USER, "work", &format!("job-{i}"), None, None)
            .expect("spawn");
    }
    let before = forest_nodes(&mut ppm, "home", "work");
    let victim = lpm_pid(&ppm, "work").expect("work has an LPM");

    let plan = FaultPlan::parse("at 2s kill work lpm\n").expect("plan parses");
    ppm.world_mut()
        .apply_fault_plan(&plan)
        .expect("plan applies");
    ppm.run_for(SimDuration::from_secs(10));

    let respawned = lpm_pid(&ppm, "work").expect("LPM respawned");
    assert_ne!(respawned, victim);
    assert_eq!(forest_nodes(&mut ppm, "home", "work"), before);
    assert!(
        ppm.metrics_report().contains("faults.injected 1"),
        "the scheduled fault was counted"
    );
}

/// A scripted host crash with heal: the host reboots, inetd re-runs the
/// pmd, the pmd's stable-storage registry names an LPM that died in the
/// crash, and respawn brings the user's presence on that host back — new
/// work lands there again.
#[test]
fn scripted_crash_restart_plan_recovers_the_host() {
    let mut ppm = harness();
    ppm.spawn_remote("home", USER, "work", "doomed", None, None)
        .expect("spawn");
    ppm.run_for(SimDuration::from_millis(500));

    let plan = FaultPlan::parse(concat!(
        "seed 11\n",
        "at 1s crash work restart 2s\n",
        "at 1s cut work far heal 4s\n",
    ))
    .expect("plan parses");
    ppm.world_mut()
        .apply_fault_plan(&plan)
        .expect("plan applies");
    ppm.run_for(SimDuration::from_secs(12));

    // The host is back: a pmd answers and an LPM serves a new spawn.
    let g = ppm
        .spawn_remote("home", USER, "work", "reborn", None, None)
        .expect("restarted host serves spawns");
    assert_eq!(g.host, "work");
    // The crash killed the old computation; the sweep must not report
    // ghosts of it.
    let nodes = forest_nodes(&mut ppm, "home", "work");
    assert!(nodes.contains(&g.pid), "the new job is managed");
    // The sugared plan expands to four scheduled faults: crash+restart
    // and cut+heal.
    let report = ppm.metrics_report();
    assert!(report.contains("faults.injected 4"), "{report}");
    assert!(report.contains("work/uid100 lpm.restarts 1"), "{report}");
}

/// Exactly-once under forced duplication: every wire message between
/// home and work is delivered twice, yet each spawn executes once —
/// the dedup window absorbs the duplicates.
#[test]
fn forced_duplication_preserves_exactly_once() {
    let mut ppm = harness();
    let plan = FaultPlan::parse("dup 1.0 from home to work\n").expect("plan parses");
    ppm.world_mut()
        .apply_fault_plan(&plan)
        .expect("plan applies");

    for i in 0..3 {
        ppm.spawn_remote("home", USER, "work", &format!("once-{i}"), None, None)
            .expect("spawn under duplication");
    }
    ppm.run_for(SimDuration::from_secs(2));

    let procs = ppm.snapshot("home", USER, "*").expect("snapshot");
    for i in 0..3 {
        let name = format!("once-{i}");
        assert_eq!(
            procs
                .iter()
                .filter(|p| p.command == name && p.state != WireProcState::Dead)
                .count(),
            1,
            "{name} executed exactly once despite duplicated delivery"
        );
    }
}

/// Two tenants on the same hosts: one user's sweep never observes the
/// other's processes — before a crash, while one tenant's LPM is dead,
/// and after the respawned LPM re-adopts its survivors. The crash of
/// tenant A's LPM must also leave tenant B's LPM process untouched.
#[test]
fn tenant_isolation_holds_across_lpm_crash_and_readoption() {
    let mut ppm = two_user_harness();

    // Each tenant runs a distinctly named computation on work.
    for i in 0..3 {
        ppm.spawn_remote("home", USER, "work", &format!("alpha-{i}"), None, None)
            .expect("spawn for USER");
    }
    for i in 0..2 {
        ppm.spawn_remote("home", OTHER, "work", &format!("beta-{i}"), None, None)
            .expect("spawn for OTHER");
    }
    ppm.run_for(SimDuration::from_secs(1));

    let sweep = |ppm: &mut PpmHarness, uid: Uid| -> Vec<ppm_proto::types::ProcRecord> {
        ppm.snapshot("home", uid, "*").expect("snapshot")
    };
    let disjoint = |ppm: &mut PpmHarness| {
        let a = sweep(ppm, USER);
        let b = sweep(ppm, OTHER);
        assert!(
            a.iter().all(|p| !p.command.starts_with("beta")),
            "USER's sweep leaked OTHER's processes: {a:?}"
        );
        assert!(
            b.iter().all(|p| !p.command.starts_with("alpha")),
            "OTHER's sweep leaked USER's processes: {b:?}"
        );
        let apids: BTreeSet<u32> = a
            .iter()
            .filter(|p| p.gpid.host == "work")
            .map(|p| p.gpid.pid)
            .collect();
        let bpids: BTreeSet<u32> = b
            .iter()
            .filter(|p| p.gpid.host == "work")
            .map(|p| p.gpid.pid)
            .collect();
        assert!(apids.is_disjoint(&bpids), "tenants share pids on work");
    };
    disjoint(&mut ppm);

    let user_before: BTreeSet<u32> = sweep(&mut ppm, USER)
        .into_iter()
        .filter(|p| p.gpid.host == "work" && p.adopted && p.state != WireProcState::Dead)
        .map(|p| p.gpid.pid)
        .collect();
    assert_eq!(user_before.len(), 3);

    // Kill USER's LPM on work; OTHER's LPM on the same host must survive.
    let victim = lpm_pid_of(&ppm, "work", USER).expect("USER has an LPM on work");
    let bystander = lpm_pid_of(&ppm, "work", OTHER).expect("OTHER has an LPM on work");
    let h = ppm.host("work").unwrap();
    ppm.world_mut()
        .post_signal(Uid::ROOT, (h, victim), Signal::Kill)
        .expect("kill USER's LPM");

    // While USER's LPM is down, OTHER's view is unperturbed and clean.
    ppm.run_for(SimDuration::from_millis(200));
    let b = sweep(&mut ppm, OTHER);
    assert_eq!(
        b.iter()
            .filter(|p| p.command.starts_with("beta") && p.state != WireProcState::Dead)
            .count(),
        2,
        "OTHER's computation is intact mid-crash"
    );
    assert!(b.iter().all(|p| !p.command.starts_with("alpha")));

    ppm.run_for(SimDuration::from_secs(5));

    // USER's replacement LPM re-adopted exactly the pre-crash set.
    let respawned = lpm_pid_of(&ppm, "work", USER).expect("USER's LPM respawned");
    assert_ne!(respawned, victim);
    assert_eq!(
        lpm_pid_of(&ppm, "work", OTHER),
        Some(bystander),
        "OTHER's LPM was never restarted"
    );
    let user_after: BTreeSet<u32> = sweep(&mut ppm, USER)
        .into_iter()
        .filter(|p| p.gpid.host == "work" && p.adopted && p.state != WireProcState::Dead)
        .map(|p| p.gpid.pid)
        .collect();
    assert_eq!(
        user_after, user_before,
        "re-adoption restored USER's forest"
    );
    disjoint(&mut ppm);

    // The restart is attributed to USER's registry section only.
    let report = ppm.metrics_report();
    assert!(report.contains("work/uid100 lpm.restarts 1"), "{report}");
    assert!(report.contains("work/uid200 lpm.restarts 0"), "{report}");
}

/// The same plan and seed replayed from scratch produce byte-identical
/// metrics: the fault schedule is deterministic end to end.
#[test]
fn fault_runs_are_deterministic() {
    let run = || {
        let mut ppm = harness();
        let plan = FaultPlan::parse(concat!(
            "seed 7\n",
            "at 1s kill work lpm\n",
            "drop 0.2 from home to work after 500ms until 3s\n",
            "delay 0.3 add 5ms\n",
        ))
        .expect("plan parses");
        ppm.world_mut()
            .apply_fault_plan(&plan)
            .expect("plan applies");
        for i in 0..2 {
            let _ = ppm.spawn_remote("home", USER, "work", &format!("job-{i}"), None, None);
        }
        ppm.run_for(SimDuration::from_secs(8));
        (ppm.now(), ppm.metrics_report())
    };
    let (t1, m1) = run();
    let (t2, m2) = run();
    assert_eq!(t1, t2, "same final clock");
    assert_eq!(m1, m2, "byte-identical metrics");
}
