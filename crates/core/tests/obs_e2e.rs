//! End-to-end observability: spans pair up across hosts, the harness
//! sampler and the wire pull agree on the same registry, and the
//! exporters render loadable documents.

use std::collections::HashMap;

use ppm_core::config::PpmConfig;
use ppm_harness::harness::PpmHarness;
use ppm_simnet::obs::SpanPhase;
use ppm_simnet::time::SimDuration;
use ppm_simnet::topology::CpuClass;
use ppm_simos::ids::Uid;

const USER: Uid = Uid(100);

fn harness() -> PpmHarness {
    PpmHarness::builder()
        .host("a", CpuClass::Vax780)
        .host("b", CpuClass::Vax750)
        .link("a", "b")
        .user(USER, 7, &["a"], PpmConfig::default())
        .build()
}

#[test]
fn request_spans_balance_on_every_host() {
    let mut ppm = harness();
    ppm.enable_spans();
    ppm.spawn_remote("a", USER, "b", "w", None, None).unwrap();
    ppm.run_for(SimDuration::from_secs(1));

    // Every request span opened on a host closes on that host: the same
    // correlation id is spanned independently at the origin and at the
    // executor, and both lifetimes end with the reply.
    let mut open: HashMap<(String, Option<u32>), i64> = HashMap::new();
    let mut req_spans = 0;
    for ev in ppm.span_events() {
        if ev.name != "req" {
            continue;
        }
        req_spans += 1;
        let key = (ev.corr.clone(), ev.host.map(|h| h.0));
        match ev.phase {
            SpanPhase::Begin => *open.entry(key).or_insert(0) += 1,
            SpanPhase::End => *open.entry(key).or_insert(0) -= 1,
        }
    }
    assert!(req_spans >= 4, "spawn must span origin and executor");
    for (key, balance) in open {
        assert_eq!(balance, 0, "unbalanced req span {key:?}");
    }
}

#[test]
fn wire_pull_agrees_with_the_out_of_band_sample() {
    let mut ppm = harness();
    ppm.spawn_remote("a", USER, "b", "w", None, None).unwrap();

    let (host, at_us, rows) = ppm.metrics_pull("a", USER, "b").unwrap();
    assert_eq!(host, "b");
    assert!(at_us > 0);

    // The pull snapshots the identical registry the harness samples
    // out-of-band (nothing ran on b after the pull executed there).
    let sections = ppm.metrics_sections();
    let (_, sampled) = sections
        .iter()
        .find(|(label, _)| label == "b/uid100")
        .expect("b's LPM registered its registry");
    assert_eq!(&rows, sampled);

    let report = ppm.metrics_report();
    assert!(report.contains("world kernel.events"), "{report}");
    assert!(report.contains("world engine.fired"), "{report}");
    assert!(report.contains("a/uid100 rpc.requests"), "{report}");
    assert!(report.contains("b/uid100 rpc.requests"), "{report}");
}

#[test]
fn span_exports_render_both_formats() {
    let mut ppm = harness();
    ppm.enable_spans();
    ppm.spawn_remote("a", USER, "b", "w", None, None).unwrap();

    let jsonl = ppm.spans_jsonl();
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"at_us\":"), "{line}");
    }
    // Host ids resolve to names, never to the placeholder.
    assert!(jsonl.contains("\"host\":\"a\"") || jsonl.contains("\"host\":\"b\""));
    assert!(!jsonl.contains("\"host\":\"-\""));

    let chrome = ppm.spans_chrome();
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.ends_with("]}"));
    assert!(chrome.contains("\"ph\":\"b\"") && chrome.contains("\"ph\":\"e\""));
}

#[test]
fn spans_disabled_by_default_record_nothing() {
    let mut ppm = harness();
    ppm.spawn_remote("a", USER, "b", "w", None, None).unwrap();
    assert!(ppm.span_events().is_empty());
    assert!(ppm.spans_jsonl().is_empty());
}
