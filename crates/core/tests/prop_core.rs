//! Property tests for the PPM's pure data structures: genealogy
//! retention, handler-pool accounting, trigger matching, history bounds.

use proptest::prelude::*;

use ppm_core::genealogy::Genealogy;
use ppm_core::handlers::HandlerPool;
use ppm_core::history::History;
use ppm_core::trigger_engine::{TriggerEngine, TriggerEvent};
use ppm_proto::triggers::{EventPattern, TriggerAction, TriggerSpec};
use ppm_proto::types::{Gpid, WireProcState};
use ppm_simnet::time::{SimDuration, SimTime};

// ---- genealogy --------------------------------------------------------------

#[derive(Debug, Clone)]
enum TreeOp {
    Track { pid: u32, parent_idx: usize },
    Kill { idx: usize },
    Prune,
}

fn arb_tree_ops() -> impl Strategy<Value = Vec<TreeOp>> {
    prop::collection::vec(
        prop_oneof![
            (2u32..200, 0usize..20).prop_map(|(pid, parent_idx)| TreeOp::Track { pid, parent_idx }),
            (0usize..20).prop_map(|idx| TreeOp::Kill { idx }),
            Just(TreeOp::Prune),
        ],
        1..60,
    )
}

proptest! {
    /// After any operation sequence: child lists never dangle, a dead
    /// node with a live local descendant is always retained by prune,
    /// and live nodes are never pruned.
    #[test]
    fn genealogy_invariants(ops in arb_tree_ops()) {
        let mut g = Genealogy::new("h");
        let mut pids: Vec<u32> = Vec::new();
        for op in ops {
            match op {
                TreeOp::Track { pid, parent_idx } => {
                    if g.contains(pid) {
                        continue;
                    }
                    let ppid = pids
                        .get(parent_idx % pids.len().max(1))
                        .copied()
                        .unwrap_or(1);
                    g.track(pid, ppid, None, "cmd", 0, true);
                    g.set_exec(pid, "cmd");
                    pids.push(pid);
                }
                TreeOp::Kill { idx } => {
                    if let Some(&pid) = pids.get(idx % pids.len().max(1)) {
                        g.mark_dead(pid, 0);
                    }
                }
                TreeOp::Prune => {
                    g.prune();
                }
            }

            // Invariant: every child reference points at a tracked node
            // whose ppid points back.
            for &pid in &pids {
                if g.contains(pid) {
                    for c in g.children(pid) {
                        let child = g.get(c);
                        prop_assert!(child.is_some(), "dangling child {c} of {pid}");
                        prop_assert_eq!(child.unwrap().ppid, pid);
                    }
                }
            }
        }
        // Final hard prune: no dead node with all-dead subtree survives,
        // and no live node was lost.
        g.prune();
        for &pid in &pids {
            if let Some(node) = g.get(pid) {
                if node.state == WireProcState::Dead {
                    // Retained dead nodes must have at least one live
                    // descendant.
                    let live_desc = g
                        .descendants(pid)
                        .iter()
                        .any(|&d| g.get(d).is_some_and(|n| n.state != WireProcState::Dead));
                    prop_assert!(live_desc, "dead node {pid} retained without live descendants");
                }
            }
        }
        let snapshot = g.snapshot();
        prop_assert_eq!(snapshot.len(), g.len());
    }
}

// ---- handler pool --------------------------------------------------------------

proptest! {
    /// Acquire/release bookkeeping: live handlers never exceed the cap,
    /// and forks + reuses equals total acquisitions.
    #[test]
    fn handler_pool_accounting(ops in prop::collection::vec(any::<bool>(), 1..200), max in 1usize..8) {
        let mut pool = HandlerPool::new(
            SimDuration::from_millis(70),
            SimDuration::from_millis(4),
            SimDuration::from_secs(10),
            max,
        );
        let mut held = Vec::new();
        let mut acquires = 0u64;
        for (i, acquire) in ops.into_iter().enumerate() {
            let now = SimTime::from_millis(i as u64);
            if acquire {
                let a = pool.acquire(now);
                acquires += 1;
                held.push(a.id);
                prop_assert!(pool.live() <= max, "live {} > max {max}", pool.live());
            } else if let Some(id) = held.pop() {
                pool.release(id, now);
            }
        }
        let stats = pool.stats();
        prop_assert_eq!(stats.forks + stats.reuses, acquires);
    }
}

// ---- trigger engine --------------------------------------------------------------

proptest! {
    /// A once-trigger fires at most once; a persistent trigger fires on
    /// every matching event.
    #[test]
    fn trigger_firing_counts(
        kinds in prop::collection::vec(0u8..4, 1..50),
        once in any::<bool>(),
    ) {
        let names = ["exit", "stop", "fork", "exec"];
        let mut engine = TriggerEngine::new();
        engine.add(TriggerSpec {
            id: 1,
            pattern: EventPattern::kind("exit"),
            action: TriggerAction::Notify { note: "n".into() },
            once,
        });
        let mut fired = 0u64;
        let mut matching = 0u64;
        for k in kinds {
            let kind = names[k as usize % names.len()];
            if kind == "exit" {
                matching += 1;
            }
            fired += engine
                .on_event(TriggerEvent { kind, pid: 1, command: "c", cpu_us: 0 })
                .len() as u64;
        }
        if once {
            prop_assert_eq!(fired, matching.min(1));
        } else {
            prop_assert_eq!(fired, matching);
        }
        prop_assert_eq!(engine.fired_total(), fired);
    }

    /// The cpu threshold is a lower bound: matches iff `cpu >= min`.
    #[test]
    fn trigger_cpu_threshold(min in 0u64..1_000_000, cpu in 0u64..1_000_000) {
        let mut engine = TriggerEngine::new();
        engine.add(TriggerSpec {
            id: 1,
            pattern: EventPattern::default().with_min_cpu_us(min),
            action: TriggerAction::Notify { note: "n".into() },
            once: false,
        });
        let fired = engine
            .on_event(TriggerEvent { kind: "exec", pid: 1, command: "c", cpu_us: cpu })
            .len();
        prop_assert_eq!(fired == 1, cpu >= min);
    }
}

// ---- history --------------------------------------------------------------

proptest! {
    /// The ring respects its capacity, keeps the newest entries, and
    /// queries are time-filtered in order.
    #[test]
    fn history_ring_bounds(cap in 1usize..50, n in 1usize..120, since_idx in 0usize..120) {
        let mut h = History::new(cap, 8);
        for i in 0..n {
            h.record(
                SimTime::from_micros(i as u64 * 10),
                Gpid::new("h", i as u32),
                "ev",
                "",
            );
        }
        prop_assert!(h.len() <= cap);
        prop_assert_eq!(h.len(), n.min(cap));
        prop_assert_eq!(h.dropped(), (n.saturating_sub(cap)) as u64);
        // The retained window is the most recent `cap` entries.
        let all = h.query(0, usize::MAX);
        if let Some(first) = all.first() {
            prop_assert_eq!(first.gpid.pid as usize, n - all.len());
        }
        // Time filter: everything returned is >= the bound, in order.
        let since = since_idx as u64 * 10;
        let filtered = h.query(since, usize::MAX);
        prop_assert!(filtered.iter().all(|e| e.at_us >= since));
        prop_assert!(filtered.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }
}
