//! Robustness and recovery tests — Section 5 of the paper: host and LPM
//! crashes, CCS election over the `.recovery` list, probing and CCS
//! resumption, network partitions, time-to-die, LPM time-to-live, and the
//! pmd stable-storage hardening.

use ppm_core::client::ToolStep;
use ppm_core::config::PpmConfig;
use ppm_core::pmd::PmdOptions;
use ppm_harness::harness::PpmHarness;
use ppm_proto::msg::{ControlAction, Op, Reply};
use ppm_simnet::time::SimDuration;
use ppm_simnet::topology::CpuClass;
use ppm_simos::ids::{Pid, Uid};
use ppm_simos::signal::Signal;

const USER: Uid = Uid(100);
const SECRET: u64 = 0x1986;

/// home — work — far in a line; `.recovery` prefers home, then work.
fn harness(cfg: PpmConfig) -> PpmHarness {
    PpmHarness::builder()
        .host("home", CpuClass::Vax780)
        .host("work", CpuClass::Vax750)
        .host("far", CpuClass::Sun2)
        .link("home", "work")
        .link("work", "far")
        .link("home", "far")
        .user(USER, SECRET, &["home", "work"], cfg)
        .build()
}

fn status_of(ppm: &mut PpmHarness, from: &str, dest: &str) -> (String, u64, Vec<String>) {
    match ppm.status(from, USER, dest).unwrap() {
        Reply::Status {
            ccs,
            epoch,
            siblings,
            ..
        } => (ccs, epoch, siblings),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn ccs_crash_elects_next_recovery_host() {
    let mut ppm = harness(PpmConfig::fast_recovery());
    // Establish LPMs on all three hosts via remote creation from home.
    ppm.spawn_remote("home", USER, "work", "j1", None, None)
        .unwrap();
    ppm.spawn_remote("home", USER, "far", "j2", None, None)
        .unwrap();
    let (ccs, _, _) = status_of(&mut ppm, "work", "work");
    assert_eq!(ccs, "home");

    // The CCS host crashes.
    let home = ppm.host("home").unwrap();
    ppm.world_mut()
        .schedule_crash(home, SimDuration::from_millis(10));
    ppm.run_for(SimDuration::from_secs(20));

    // Survivors converge on the next host in the .recovery list.
    let (ccs_w, epoch_w, _) = status_of(&mut ppm, "work", "work");
    assert_eq!(ccs_w, "work", "second-priority host took over");
    assert!(epoch_w > 0, "election bumped the epoch");
    let (ccs_f, _, _) = status_of(&mut ppm, "far", "far");
    assert_eq!(ccs_f, "work", "announcement reached the third host");
}

#[test]
fn recovered_top_priority_host_resumes_ccs_role() {
    let mut ppm = harness(PpmConfig::fast_recovery());
    ppm.spawn_remote("home", USER, "work", "j1", None, None)
        .unwrap();
    ppm.spawn_remote("home", USER, "far", "j2", None, None)
        .unwrap();

    let home = ppm.host("home").unwrap();
    ppm.world_mut()
        .schedule_crash(home, SimDuration::from_millis(10));
    ppm.run_for(SimDuration::from_secs(20));
    let (ccs, _, _) = status_of(&mut ppm, "work", "work");
    assert_eq!(ccs, "work");

    // home comes back; the acting CCS probes it at low frequency and
    // hands the role back ("whenever such host comes up, they connect").
    ppm.world_mut()
        .schedule_restart(home, SimDuration::from_millis(10));
    ppm.run_for(SimDuration::from_secs(40));
    let (ccs, epoch, _) = status_of(&mut ppm, "work", "work");
    assert_eq!(ccs, "home", "top-priority host resumed as CCS");
    assert!(epoch >= 2);
}

#[test]
fn host_crash_turns_snapshot_into_a_forest() {
    let mut ppm = harness(PpmConfig::fast_recovery());
    let root = ppm
        .spawn_remote("home", USER, "home", "root", None, None)
        .unwrap();
    let _w = ppm
        .spawn_remote("home", USER, "work", "leaf-w", Some(root.clone()), None)
        .unwrap();
    let f = ppm
        .spawn_remote("home", USER, "far", "leaf-f", Some(root.clone()), None)
        .unwrap();

    // work crashes: its slice of the computation is gone; the remainder
    // is a forest (root on home + orphaned view of far's leaf).
    let work = ppm.host("work").unwrap();
    ppm.world_mut()
        .schedule_crash(work, SimDuration::from_millis(10));
    ppm.run_for(SimDuration::from_secs(10));

    let procs = ppm.snapshot("home", USER, "*").unwrap();
    let hosts: std::collections::BTreeSet<&str> =
        procs.iter().map(|p| p.gpid.host.as_str()).collect();
    assert!(hosts.contains("home"));
    assert!(
        hosts.contains("far"),
        "far still reachable via surviving links"
    );
    assert!(!hosts.contains("work"), "crashed host contributes nothing");
    assert!(procs.iter().any(|p| p.gpid == f));
}

#[test]
fn orphaned_lpm_kills_local_processes_after_time_to_die() {
    // far is connected only through work; its .recovery list is
    // home, work — when both are unreachable it must eventually close
    // down the user's local activity.
    let mut cfg = PpmConfig::fast_recovery();
    cfg.time_to_die = SimDuration::from_secs(10);
    let mut ppm = PpmHarness::builder()
        .host("home", CpuClass::Vax780)
        .host("work", CpuClass::Vax750)
        .host("far", CpuClass::Sun2)
        .link("home", "work")
        .link("work", "far")
        .user(USER, SECRET, &["home", "work"], cfg)
        .build();
    let far_job = ppm
        .spawn_remote("home", USER, "far", "lonely", None, None)
        .unwrap();
    let far = ppm.host("far").unwrap();
    let pid = Pid(far_job.pid);
    assert!(ppm.world().core().kernel(far).get(pid).unwrap().is_alive());

    // Cut far off completely and give it a reason to notice (its only
    // sibling connection breaks when home crashes the link path).
    let home = ppm.host("home").unwrap();
    let work = ppm.host("work").unwrap();
    ppm.world_mut()
        .schedule_crash(home, SimDuration::from_millis(10));
    ppm.world_mut()
        .schedule_crash(work, SimDuration::from_millis(10));
    ppm.run_for(SimDuration::from_secs(60));

    let p = ppm.world().core().kernel(far).get(pid).unwrap();
    assert!(!p.is_alive(), "time-to-die terminated the user's processes");
    assert_eq!(
        p.state,
        ppm_simos::process::ProcState::Exited(ppm_simos::signal::ExitStatus::Signaled(
            Signal::Kill
        ))
    );
    // The LPM itself exited too.
    let lpm_alive = ppm
        .world()
        .core()
        .kernel(far)
        .processes()
        .any(|pr| pr.command.starts_with("lpm") && pr.is_alive());
    assert!(!lpm_alive, "orphaned LPM exited after time-to-die");
}

#[test]
fn partitioned_lpm_in_contact_with_a_recovery_host_survives_indefinitely() {
    // "Our current implementation allows connected components of this kind
    // to continue their operations with no bounds in time because they
    // include a host which the user is presumed to log into frequently."
    let mut cfg = PpmConfig::fast_recovery();
    cfg.time_to_die = SimDuration::from_secs(5);
    let mut ppm = harness(cfg);
    ppm.spawn_remote("home", USER, "work", "j1", None, None)
        .unwrap();
    ppm.spawn_remote("home", USER, "far", "j2", None, None)
        .unwrap();

    // Partition {home} from {work, far}: work is itself in the recovery
    // list, so the work/far component continues under work as CCS.
    let home = ppm.host("home").unwrap();
    let work = ppm.host("work").unwrap();
    let far = ppm.host("far").unwrap();
    ppm.world_mut()
        .schedule_link(home, work, false, SimDuration::from_millis(10));
    ppm.world_mut()
        .schedule_link(home, far, false, SimDuration::from_millis(10));
    ppm.run_for(SimDuration::from_secs(30));

    // Far past the (short) time-to-die: everything still runs.
    let (ccs, _, _) = status_of(&mut ppm, "work", "work");
    assert_eq!(ccs, "work");
    let work_jobs = ppm.snapshot("work", USER, "*").unwrap();
    assert!(work_jobs.iter().any(|p| p.gpid.host == "work"));
    assert!(work_jobs.iter().any(|p| p.gpid.host == "far"));

    // Heal the partition: probing reconnects to home, which resumes CCS.
    ppm.world_mut()
        .schedule_link(home, work, true, SimDuration::from_millis(10));
    ppm.world_mut()
        .schedule_link(home, far, true, SimDuration::from_millis(10));
    ppm.run_for(SimDuration::from_secs(40));
    let (ccs, _, _) = status_of(&mut ppm, "work", "work");
    assert_eq!(ccs, "home", "healed partition reunifies under the home CCS");
}

#[test]
fn lpm_outlives_login_session_and_expires_after_ttl() {
    let mut cfg = PpmConfig::fast_recovery();
    cfg.lpm_ttl = SimDuration::from_secs(15);
    let mut ppm = PpmHarness::builder()
        .host("solo", CpuClass::Vax780)
        .user(USER, SECRET, &["solo"], cfg)
        .build();
    let solo = ppm.host("solo").unwrap();

    // A short job managed by the PPM.
    ppm.spawn_remote(
        "solo",
        USER,
        "solo",
        "short",
        None,
        Some(SimDuration::from_secs(3)),
    )
    .unwrap();
    let lpm_running = |ppm: &PpmHarness| {
        ppm.world()
            .core()
            .kernel(solo)
            .processes()
            .any(|p| p.command.starts_with("lpm") && p.is_alive())
    };
    assert!(lpm_running(&ppm));

    // The job exits; the LPM lingers through its time-to-live…
    ppm.run_for(SimDuration::from_secs(10));
    assert!(
        lpm_running(&ppm),
        "LPM outlives the session that created it"
    );

    // …and eventually expires.
    ppm.run_for(SimDuration::from_secs(30));
    assert!(!lpm_running(&ppm), "LPM exits after its time-to-live");

    // A later login simply creates a fresh one.
    let outcome = ppm
        .run_tool(
            "solo",
            USER,
            vec![ToolStep::new("solo", Op::Ping)],
            SimDuration::from_secs(30),
        )
        .unwrap();
    assert!(outcome.created_lpm);
}

#[test]
fn lpm_with_live_processes_does_not_expire() {
    let mut cfg = PpmConfig::fast_recovery();
    cfg.lpm_ttl = SimDuration::from_secs(5);
    let mut ppm = PpmHarness::builder()
        .host("solo", CpuClass::Vax780)
        .user(USER, SECRET, &["solo"], cfg)
        .build();
    let solo = ppm.host("solo").unwrap();
    ppm.spawn_remote("solo", USER, "solo", "long-job", None, None)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(60));
    let lpm_alive = ppm
        .world()
        .core()
        .kernel(solo)
        .processes()
        .any(|p| p.command.starts_with("lpm") && p.is_alive());
    assert!(lpm_alive, "managed processes keep the LPM alive");
}

#[test]
fn pmd_crash_without_stable_storage_spawns_duplicate_lpm() {
    let mut ppm = harness(PpmConfig::default());
    ppm.spawn_remote("home", USER, "home", "j", None, None)
        .unwrap();
    let home = ppm.host("home").unwrap();

    // Kill only the pmd (LPM survives).
    let pmd_pid = ppm
        .world()
        .core()
        .kernel(home)
        .processes()
        .find(|p| p.command == "pmd" && p.is_alive())
        .map(|p| p.pid)
        .expect("pmd running");
    ppm.world_mut()
        .post_signal(Uid::ROOT, (home, pmd_pid), Signal::Kill)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(1));

    // Next tool contact restarts pmd, which — having lost its registry —
    // creates a duplicate LPM. The duplicate finds the accept port taken
    // and yields; the paper calls this out as the broken mode.
    let outcome = ppm
        .run_tool(
            "home",
            USER,
            vec![ToolStep::new("home", Op::Ping)],
            SimDuration::from_secs(30),
        )
        .unwrap();
    assert!(
        outcome.error.is_none(),
        "service still works via the surviving LPM"
    );
    assert!(
        outcome.created_lpm,
        "pmd wrongly believes it created the LPM"
    );
    // Let the duplicate finish its fork+exec and die on the taken port.
    ppm.run_for(SimDuration::from_secs(2));
    let duplicates = ppm
        .world()
        .core()
        .kernel(home)
        .processes()
        .filter(|p| p.command.starts_with("lpm") && !p.is_alive())
        .count();
    assert!(duplicates >= 1, "a duplicate LPM was spawned and died");
}

#[test]
fn pmd_crash_with_stable_storage_finds_existing_lpm() {
    let mut ppm = PpmHarness::builder()
        .host("home", CpuClass::Vax780)
        .user(USER, SECRET, &["home"], PpmConfig::default())
        .pmd_options(PmdOptions {
            stable_storage: true,
            ..PmdOptions::default()
        })
        .build();
    ppm.spawn_remote("home", USER, "home", "j", None, None)
        .unwrap();
    let home = ppm.host("home").unwrap();
    let pmd_pid = ppm
        .world()
        .core()
        .kernel(home)
        .processes()
        .find(|p| p.command == "pmd" && p.is_alive())
        .map(|p| p.pid)
        .expect("pmd running");
    ppm.world_mut()
        .post_signal(Uid::ROOT, (home, pmd_pid), Signal::Kill)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(1));

    let outcome = ppm
        .run_tool(
            "home",
            USER,
            vec![ToolStep::new("home", Op::Ping)],
            SimDuration::from_secs(30),
        )
        .unwrap();
    assert!(outcome.error.is_none());
    assert!(!outcome.created_lpm, "restored registry found the live LPM");
    let duplicates = ppm
        .world()
        .core()
        .kernel(home)
        .processes()
        .filter(|p| p.command.starts_with("lpm") && !p.is_alive())
        .count();
    assert_eq!(duplicates, 0, "no duplicate LPM with stable storage");
}

#[test]
fn in_flight_request_fails_cleanly_when_target_crashes() {
    let mut ppm = harness(PpmConfig::fast_recovery());
    let g = ppm
        .spawn_remote("home", USER, "far", "victim", None, None)
        .unwrap();
    // Crash far, then immediately try to control the process there.
    let far = ppm.host("far").unwrap();
    ppm.world_mut()
        .schedule_crash(far, SimDuration::from_millis(1));
    ppm.run_for(SimDuration::from_millis(100));
    let err = ppm
        .control("home", USER, &g, ControlAction::Kill)
        .unwrap_err();
    let text = err.to_string();
    assert!(
        text.contains("HostDown")
            || text.contains("Timeout")
            || text.contains("NoRoute")
            || text.contains("cannot reach"),
        "crash surfaced as a clean error: {text}"
    );
}

#[test]
fn broadcast_completes_despite_crashed_participant() {
    let mut ppm = harness(PpmConfig::fast_recovery());
    ppm.spawn_remote("home", USER, "work", "a", None, None)
        .unwrap();
    ppm.spawn_remote("home", USER, "far", "b", None, None)
        .unwrap();
    let far = ppm.host("far").unwrap();
    ppm.world_mut()
        .schedule_crash(far, SimDuration::from_millis(10));
    ppm.run_for(SimDuration::from_secs(5));

    // Snapshot still completes with the surviving hosts' slices.
    let procs = ppm.snapshot("home", USER, "*").unwrap();
    assert!(procs.iter().any(|p| p.gpid.host == "work"));
    assert!(!procs.iter().any(|p| p.gpid.host == "far"));
}

#[test]
fn snapshot_after_lpm_kill_loses_that_hosts_information() {
    // "LPM crashes are handled just as host crashes. However, the
    // disappearance of a LPM does mean that information about the
    // processes in that host will be lost."
    let mut ppm = harness(PpmConfig::fast_recovery());
    let g = ppm
        .spawn_remote("home", USER, "work", "job", None, None)
        .unwrap();
    let work = ppm.host("work").unwrap();
    let lpm_pid = ppm
        .world()
        .core()
        .kernel(work)
        .processes()
        .find(|p| p.command.starts_with("lpm") && p.is_alive())
        .map(|p| p.pid)
        .expect("lpm on work");
    ppm.world_mut()
        .post_signal(USER, (work, lpm_pid), Signal::Kill)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(1));

    // The user process itself survives (it belongs to the user, not the
    // LPM), but a fresh LPM no longer knows its genealogy.
    assert!(ppm
        .world()
        .core()
        .kernel(work)
        .get(Pid(g.pid))
        .unwrap()
        .is_alive());
    let procs = ppm.snapshot("home", USER, "*").unwrap();
    assert!(
        !procs.iter().any(|p| p.gpid == g),
        "information about the host's processes was lost with the LPM"
    );
}

#[test]
fn crash_mid_broadcast_still_completes_with_partial_results() {
    let mut ppm = harness(PpmConfig::fast_recovery());
    ppm.spawn_remote("home", USER, "work", "a", None, None)
        .unwrap();
    ppm.spawn_remote("home", USER, "far", "b", None, None)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(25)); // cold pools: slow wave

    // Launch the snapshot asynchronously and crash a participant while
    // the wave is in flight (the cold wave takes ~200 ms).
    let handle = ppm
        .launch_tool(
            "home",
            USER,
            vec![ToolStep::new("*", ppm_proto::msg::Op::Snapshot)],
        )
        .unwrap();
    let far = ppm.host("far").unwrap();
    ppm.world_mut()
        .schedule_crash(far, SimDuration::from_millis(120));
    ppm.run_for(SimDuration::from_secs(10));

    let outcome = handle.lock().unwrap().clone();
    assert!(
        outcome.done,
        "snapshot completed despite the mid-wave crash"
    );
    assert!(outcome.error.is_none(), "{:?}", outcome.error);
    match outcome.reply(0) {
        Some(ppm_proto::msg::Reply::Snapshot { procs, .. }) => {
            assert!(
                procs.iter().any(|p| p.gpid.host == "work"),
                "surviving slice present"
            );
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn dead_processes_age_out_of_snapshots_after_retention() {
    let mut cfg = PpmConfig::fast_recovery();
    cfg.dead_retention = SimDuration::from_secs(5);
    let mut ppm = PpmHarness::builder()
        .host("solo", CpuClass::Vax780)
        .user(USER, SECRET, &["solo"], cfg)
        .build();
    let g = ppm
        .spawn_remote(
            "solo",
            USER,
            "solo",
            "brief",
            None,
            Some(SimDuration::from_secs(1)),
        )
        .unwrap();
    // Keep a long-lived sibling process so the LPM itself stays alive.
    ppm.spawn_remote("solo", USER, "solo", "keeper", None, None)
        .unwrap();

    ppm.run_for(SimDuration::from_secs(2)); // brief has exited
    let procs = ppm.snapshot("solo", USER, "solo").unwrap();
    assert!(
        procs.iter().any(|p| p.gpid == g),
        "freshly dead: still displayed"
    );

    ppm.run_for(SimDuration::from_secs(10)); // past dead_retention
    let procs = ppm.snapshot("solo", USER, "solo").unwrap();
    assert!(
        !procs.iter().any(|p| p.gpid == g),
        "aged out of the genealogy"
    );
    // The statistics tool still remembers it.
    let records = ppm.rusage("solo", USER, "solo", Some(g.pid)).unwrap();
    assert_eq!(records.len(), 1);
}

#[test]
fn ccs_with_siblings_does_not_expire_by_ttl() {
    // "For the CCS, the time-to-live interval has a different meaning: as
    // long as there is any sibling LPM in the networked system,
    // time-to-live is not decremented."
    let mut cfg = PpmConfig::fast_recovery();
    cfg.lpm_ttl = SimDuration::from_secs(5);
    let mut ppm = PpmHarness::builder()
        .host("home", CpuClass::Vax780)
        .host("work", CpuClass::Vax750)
        .link("home", "work")
        .user(USER, SECRET, &["home"], cfg)
        .build();
    // home is the CCS; it manages no local processes of its own, but its
    // sibling on work holds a long-lived job.
    ppm.spawn_remote("home", USER, "work", "long-job", None, None)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(60));

    let home = ppm.host("home").unwrap();
    let work = ppm.host("work").unwrap();
    let lpm_alive = |ppm: &PpmHarness, h| {
        ppm.world()
            .core()
            .kernel(h)
            .processes()
            .any(|p| p.command.starts_with("lpm") && p.is_alive())
    };
    assert!(
        lpm_alive(&ppm, home),
        "the CCS stays alive while any sibling LPM exists"
    );
    assert!(lpm_alive(&ppm, work), "work manages a live process");
}
