//! End-to-end tests of the PPM over the simulated network: LPM creation,
//! adoption, genealogy, distributed control, remote creation, snapshots,
//! history, statistics and triggers — the failure-free operation of
//! Sections 2–4 and 6.

use ppm_core::client::ToolStep;
use ppm_core::config::PpmConfig;
use ppm_harness::harness::{HarnessError, PpmHarness};
use ppm_proto::msg::{ControlAction, Op, Reply};
use ppm_proto::triggers::{EventPattern, TriggerAction, TriggerSpec};
use ppm_proto::types::{Gpid, WireProcState};
use ppm_simnet::time::{SimDuration, SimTime};
use ppm_simnet::topology::CpuClass;
use ppm_simos::events::TraceFlags;
use ppm_simos::ids::Uid;
use ppm_simos::process::ProcState;
use ppm_simos::program::SpawnSpec;
use ppm_simos::workload::TreeSpawner;

const USER: Uid = Uid(100);
const SECRET: u64 = 0x1986;

/// Three Berkeley-ish hosts in a line: calder — ucbarpa — kim.
fn three_hosts() -> PpmHarness {
    PpmHarness::builder()
        .host("calder", CpuClass::Vax780)
        .host("ucbarpa", CpuClass::Vax750)
        .host("kim", CpuClass::Sun2)
        .link("calder", "ucbarpa")
        .link("ucbarpa", "kim")
        .user(USER, SECRET, &["calder", "ucbarpa"], PpmConfig::default())
        .build()
}

#[test]
fn lpm_created_ab_initio_via_inetd_and_pmd() {
    let mut ppm = three_hosts();
    let outcome = ppm
        .run_tool(
            "calder",
            USER,
            vec![ToolStep::new("calder", Op::Ping)],
            SimDuration::from_secs(30),
        )
        .unwrap();
    assert!(outcome.error.is_none());
    assert!(outcome.created_lpm, "first contact creates the LPM");
    assert!(matches!(outcome.reply(0), Some(Reply::Pong)));

    // The Figure-2 chain is visible in the trace: pmd service start and
    // LPM creation on calder.
    let trace = ppm.world().core().trace().render(None);
    assert!(trace.contains("service pmd started"), "inetd started pmd");
    assert!(trace.contains("created LPM"), "pmd created the LPM");

    // Second tool run finds the existing LPM.
    let outcome2 = ppm
        .run_tool(
            "calder",
            USER,
            vec![ToolStep::new("calder", Op::Ping)],
            SimDuration::from_secs(30),
        )
        .unwrap();
    assert!(!outcome2.created_lpm, "LPM persists between tool sessions");
}

#[test]
fn adoption_tracks_existing_process_tree() {
    let mut ppm = three_hosts();
    // A login-session process tree outside PPM control: root + 2 + 4.
    let root = ppm
        .spawn_login_process(
            "calder",
            USER,
            SpawnSpec::new(
                "make",
                Box::new(TreeSpawner::new(2, 2, SimDuration::from_secs(600))),
            ),
        )
        .unwrap();
    ppm.run_for(SimDuration::from_secs(2));

    ppm.adopt("calder", USER, "calder", root.0, TraceFlags::ALL.bits())
        .unwrap();
    let procs = ppm.snapshot("calder", USER, "calder").unwrap();
    assert_eq!(
        procs.len(),
        7,
        "root and all descendants adopted: {procs:?}"
    );
    assert!(procs.iter().all(|p| p.adopted));
    // Genealogy is intact: exactly two children of the root.
    let children = procs.iter().filter(|p| p.ppid == root.0).count();
    assert_eq!(children, 2);
}

#[test]
fn adoption_of_other_users_process_is_denied() {
    let mut ppm = PpmHarness::builder()
        .host("calder", CpuClass::Vax780)
        .user(USER, SECRET, &["calder"], PpmConfig::default())
        .user(Uid(200), 77, &["calder"], PpmConfig::default())
        .build();
    let other = ppm
        .spawn_login_process("calder", Uid(200), SpawnSpec::inert("secret-job"))
        .unwrap();
    ppm.run_for(SimDuration::from_secs(1));
    let err = ppm
        .adopt("calder", USER, "calder", other.0, TraceFlags::ALL.bits())
        .unwrap_err();
    assert!(
        matches!(err, HarnessError::Lpm(ref s) if s.contains("Permission")),
        "{err}"
    );
}

#[test]
fn remote_process_creation_and_logical_parent() {
    let mut ppm = three_hosts();
    // Local anchor process, adopted.
    let anchor = ppm
        .spawn_login_process("calder", USER, SpawnSpec::inert("master"))
        .unwrap();
    ppm.run_for(SimDuration::from_secs(1));
    ppm.adopt("calder", USER, "calder", anchor.0, TraceFlags::ALL.bits())
        .unwrap();

    let logical_parent = Some(Gpid::new("calder", anchor.0));
    let child = ppm
        .spawn_remote(
            "calder",
            USER,
            "ucbarpa",
            "worker",
            logical_parent.clone(),
            None,
        )
        .unwrap();
    assert_eq!(child.host, "ucbarpa");

    let procs = ppm.snapshot("calder", USER, "*").unwrap();
    let rec = procs
        .iter()
        .find(|p| p.gpid == child)
        .expect("remote child visible");
    assert_eq!(rec.logical_parent, logical_parent);
    assert_eq!(rec.state, WireProcState::Running);
    assert_eq!(rec.command, "worker");
}

#[test]
fn control_across_machine_boundaries_stop_continue_kill() {
    let mut ppm = three_hosts();
    // kim is two physical hops from calder.
    let gpid = ppm
        .spawn_remote("calder", USER, "kim", "job", None, None)
        .unwrap();
    let kim = ppm.host("kim").unwrap();
    let pid = ppm_simos::ids::Pid(gpid.pid);

    ppm.control("calder", USER, &gpid, ControlAction::Stop)
        .unwrap();
    ppm.run_for(SimDuration::from_millis(200));
    assert_eq!(
        ppm.world().core().kernel(kim).get(pid).unwrap().state,
        ProcState::Stopped
    );

    ppm.control("calder", USER, &gpid, ControlAction::Background)
        .unwrap();
    ppm.run_for(SimDuration::from_millis(200));
    assert_eq!(
        ppm.world().core().kernel(kim).get(pid).unwrap().state,
        ProcState::Running
    );

    ppm.control("calder", USER, &gpid, ControlAction::Kill)
        .unwrap();
    ppm.run_for(SimDuration::from_millis(200));
    assert!(!ppm.world().core().kernel(kim).get(pid).unwrap().is_alive());

    // The snapshot marks it dead (exit information retained).
    let procs = ppm.snapshot("calder", USER, "kim").unwrap();
    let rec = procs
        .iter()
        .find(|p| p.gpid == gpid)
        .expect("dead process still listed");
    assert_eq!(rec.state, WireProcState::Dead);
}

#[test]
fn control_of_unknown_pid_reports_no_such_process() {
    let mut ppm = three_hosts();
    let err = ppm
        .control(
            "calder",
            USER,
            &Gpid::new("ucbarpa", 9999),
            ControlAction::Kill,
        )
        .unwrap_err();
    assert!(
        matches!(err, HarnessError::Lpm(ref s) if s.contains("NoSuchProcess")),
        "{err}"
    );
}

#[test]
fn snapshot_spanning_three_hosts_is_a_forest_with_exit_retention() {
    let mut ppm = three_hosts();
    let parent = ppm
        .spawn_remote("calder", USER, "calder", "root-proc", None, None)
        .unwrap();
    let c1 = ppm
        .spawn_remote(
            "calder",
            USER,
            "ucbarpa",
            "child-1",
            Some(parent.clone()),
            None,
        )
        .unwrap();
    let c2 = ppm
        .spawn_remote("calder", USER, "kim", "child-2", Some(parent.clone()), None)
        .unwrap();

    // Kill the logical root; children live on — the paper retains exit
    // info while children are alive and marks the process as exited.
    ppm.control("calder", USER, &parent, ControlAction::Kill)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(1));

    let procs = ppm.snapshot("calder", USER, "*").unwrap();
    let root = procs
        .iter()
        .find(|p| p.gpid == parent)
        .expect("dead root retained");
    assert_eq!(root.state, WireProcState::Dead);
    for c in [&c1, &c2] {
        let rec = procs.iter().find(|p| p.gpid == *c).expect("children alive");
        assert_eq!(rec.state, WireProcState::Running);
        assert_eq!(rec.logical_parent.as_ref(), Some(&parent));
    }
}

#[test]
fn rusage_statistics_for_exited_processes() {
    let mut ppm = three_hosts();
    let gpid = ppm
        .spawn_remote(
            "calder",
            USER,
            "ucbarpa",
            "short-job",
            None,
            Some(SimDuration::from_secs(2)),
        )
        .unwrap();
    ppm.run_for(SimDuration::from_secs(5)); // job exits voluntarily

    let records = ppm.rusage("calder", USER, "ucbarpa", None).unwrap();
    let rec = records
        .iter()
        .find(|r| r.gpid == gpid)
        .expect("exit record kept");
    assert_eq!(rec.command, "short-job");
    assert_eq!(rec.status, 0);
    assert!(rec.exited_us > 0);

    // Pid-filtered query.
    let one = ppm
        .rusage("calder", USER, "ucbarpa", Some(gpid.pid))
        .unwrap();
    assert_eq!(one.len(), 1);
    let none = ppm.rusage("calder", USER, "ucbarpa", Some(424242)).unwrap();
    assert!(none.is_empty());
}

#[test]
fn history_records_lifecycle_events() {
    let mut ppm = three_hosts();
    let gpid = ppm
        .spawn_remote("calder", USER, "ucbarpa", "traced", None, None)
        .unwrap();
    ppm.control("calder", USER, &gpid, ControlAction::Stop)
        .unwrap();
    ppm.control("calder", USER, &gpid, ControlAction::Foreground)
        .unwrap();
    ppm.control("calder", USER, &gpid, ControlAction::Kill)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(1));

    let events = ppm
        .history("calder", USER, "ucbarpa", SimTime::ZERO, 500)
        .unwrap();
    let kinds: Vec<&str> = events
        .iter()
        .filter(|e| e.gpid == gpid)
        .map(|e| e.kind.as_str())
        .collect();
    assert!(kinds.contains(&"exec"), "{kinds:?}");
    assert!(kinds.contains(&"stop"), "{kinds:?}");
    assert!(kinds.contains(&"cont"), "{kinds:?}");
    assert!(kinds.contains(&"exit"), "{kinds:?}");
    // Ordering: exec before exit.
    let exec_pos = kinds.iter().position(|k| *k == "exec").unwrap();
    let exit_pos = kinds.iter().position(|k| *k == "exit").unwrap();
    assert!(exec_pos < exit_pos);
}

#[test]
fn broadcast_history_merges_across_hosts() {
    let mut ppm = three_hosts();
    ppm.spawn_remote("calder", USER, "ucbarpa", "a", None, None)
        .unwrap();
    ppm.spawn_remote("calder", USER, "kim", "b", None, None)
        .unwrap();
    let events = ppm
        .history("calder", USER, "*", SimTime::ZERO, 500)
        .unwrap();
    let hosts: std::collections::BTreeSet<&str> =
        events.iter().map(|e| e.gpid.host.as_str()).collect();
    assert!(
        hosts.contains("ucbarpa") && hosts.contains("kim"),
        "{hosts:?}"
    );
    // Merged stream is time-sorted.
    assert!(events.windows(2).all(|w| w[0].at_us <= w[1].at_us));
}

#[test]
fn triggers_fire_on_exit_and_notify() {
    let mut ppm = three_hosts();
    let gpid = ppm
        .spawn_remote("calder", USER, "ucbarpa", "watched", None, None)
        .unwrap();
    let spec = TriggerSpec {
        id: 7,
        pattern: EventPattern::kind("exit").with_pid(gpid.pid),
        action: TriggerAction::Notify {
            note: "watched job finished".into(),
        },
        once: true,
    };
    let outcome = ppm
        .run_tool(
            "calder",
            USER,
            vec![ToolStep::new("ucbarpa", Op::AddTrigger { spec })],
            SimDuration::from_secs(30),
        )
        .unwrap();
    assert!(matches!(outcome.reply(0), Some(Reply::Ok)));

    ppm.control("calder", USER, &gpid, ControlAction::Kill)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(1));

    let events = ppm
        .history("calder", USER, "ucbarpa", SimTime::ZERO, 500)
        .unwrap();
    assert!(
        events
            .iter()
            .any(|e| e.kind == "trigger" && e.detail.contains("watched job finished")),
        "trigger notification recorded"
    );
}

#[test]
fn trigger_signals_a_remote_process_event_driven() {
    let mut ppm = three_hosts();
    // Two processes on different hosts; when A exits, B must be killed.
    let a = ppm
        .spawn_remote("calder", USER, "ucbarpa", "job-a", None, None)
        .unwrap();
    let b = ppm
        .spawn_remote("calder", USER, "kim", "job-b", None, None)
        .unwrap();
    let spec = TriggerSpec {
        id: 1,
        pattern: EventPattern::kind("exit").with_pid(a.pid),
        action: TriggerAction::Signal {
            target: b.clone(),
            signal: 9,
        },
        once: true,
    };
    ppm.run_tool(
        "calder",
        USER,
        vec![ToolStep::new("ucbarpa", Op::AddTrigger { spec })],
        SimDuration::from_secs(30),
    )
    .unwrap();

    ppm.control("calder", USER, &a, ControlAction::Kill)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(3));

    let kim = ppm.host("kim").unwrap();
    let alive = ppm
        .world()
        .core()
        .kernel(kim)
        .get(ppm_simos::ids::Pid(b.pid))
        .unwrap()
        .is_alive();
    assert!(
        !alive,
        "exit of job-a triggered the kill of job-b across hosts"
    );
}

#[test]
fn list_and_delete_triggers() {
    let mut ppm = three_hosts();
    let mk = |id| Op::AddTrigger {
        spec: TriggerSpec {
            id,
            pattern: EventPattern::kind("exit"),
            action: TriggerAction::Notify {
                note: format!("t{id}"),
            },
            once: false,
        },
    };
    let outcome = ppm
        .run_tool(
            "calder",
            USER,
            vec![
                ToolStep::new("calder", mk(1)),
                ToolStep::new("calder", mk(2)),
                ToolStep::new("calder", Op::DelTrigger { id: 1 }),
                ToolStep::new("calder", Op::ListTriggers),
                ToolStep::new("calder", Op::DelTrigger { id: 99 }),
            ],
            SimDuration::from_secs(30),
        )
        .unwrap();
    match outcome.reply(3) {
        Some(Reply::Triggers { entries }) => {
            assert_eq!(entries.len(), 1);
            assert_eq!(entries[0].id, 2);
        }
        other => panic!("unexpected {other:?}"),
    }
    assert!(
        matches!(outcome.reply(4), Some(Reply::Err { .. })),
        "deleting unknown trigger errs"
    );
}

#[test]
fn open_files_listing_shows_descriptors() {
    let mut ppm = three_hosts();
    let gpid = ppm
        .spawn_remote("calder", USER, "ucbarpa", "editor", None, None)
        .unwrap();
    let outcome = ppm
        .run_tool(
            "calder",
            USER,
            vec![ToolStep::new("ucbarpa", Op::OpenFiles { pid: gpid.pid })],
            SimDuration::from_secs(30),
        )
        .unwrap();
    match outcome.reply(0) {
        Some(Reply::Files { entries }) => {
            // A plain worker has no descriptors; the call itself must work.
            assert!(entries.is_empty());
        }
        other => panic!("unexpected {other:?}"),
    }

    // The LPM's own descriptor table shows the Figure-4 endpoint types.
    let ucbarpa = ppm.host("ucbarpa").unwrap();
    let lpm_pid = ppm
        .world()
        .core()
        .kernel(ucbarpa)
        .processes()
        .find(|p| p.command.starts_with("lpm") && p.is_alive())
        .map(|p| p.pid)
        .expect("LPM running on ucbarpa");
    let outcome = ppm
        .run_tool(
            "calder",
            USER,
            vec![ToolStep::new("ucbarpa", Op::OpenFiles { pid: lpm_pid.0 })],
            SimDuration::from_secs(30),
        )
        .unwrap();
    match outcome.reply(0) {
        Some(Reply::Files { entries }) => {
            let kinds: Vec<&str> = entries.iter().map(|e| e.kind.as_str()).collect();
            assert!(kinds.contains(&"kernel"), "kernel socket: {kinds:?}");
            assert!(kinds.contains(&"listener"), "accept socket: {kinds:?}");
            assert!(kinds.contains(&"socket"), "tool/sibling sockets: {kinds:?}");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn status_reports_siblings_and_ccs() {
    let mut ppm = three_hosts();
    ppm.spawn_remote("calder", USER, "ucbarpa", "x", None, None)
        .unwrap();
    match ppm.status("calder", USER, "calder").unwrap() {
        Reply::Status {
            host,
            siblings,
            ccs,
            ..
        } => {
            assert_eq!(host, "calder");
            assert!(siblings.contains(&"ucbarpa".to_string()), "{siblings:?}");
            assert_eq!(ccs, "calder", "top of the recovery list");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn tracing_granularity_is_user_settable() {
    let mut ppm = three_hosts();
    // Spawn, then restrict tracing to signals only.
    let gpid = ppm
        .spawn_remote("calder", USER, "ucbarpa", "quiet", None, None)
        .unwrap();
    let t0 = ppm.now();
    let outcome = ppm
        .run_tool(
            "calder",
            USER,
            vec![ToolStep::new(
                "ucbarpa",
                Op::SetTraceFlags {
                    pid: gpid.pid,
                    flags: TraceFlags::SIGNALS.bits(),
                },
            )],
            SimDuration::from_secs(30),
        )
        .unwrap();
    assert!(matches!(outcome.reply(0), Some(Reply::Ok)));

    // Kill it: the signal is reported (SIGNALS flag), and the exit event
    // is suppressed (PROC flag cleared).
    ppm.control("calder", USER, &gpid, ControlAction::Kill)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(1));
    let events = ppm.history("calder", USER, "ucbarpa", t0, 500).unwrap();
    let mine: Vec<&str> = events
        .iter()
        .filter(|e| e.gpid == gpid)
        .map(|e| e.kind.as_str())
        .collect();
    assert!(mine.contains(&"signal"), "{mine:?}");
    assert!(
        !mine.contains(&"exit"),
        "exit suppressed at signal-only granularity: {mine:?}"
    );
}

#[test]
fn deterministic_runs_with_same_seed() {
    let run = |seed: u64| {
        let mut ppm = PpmHarness::builder()
            .seed(seed)
            .host("a", CpuClass::Vax780)
            .host("b", CpuClass::Vax750)
            .link("a", "b")
            .user(USER, SECRET, &["a"], PpmConfig::default())
            .build();
        let g = ppm.spawn_remote("a", USER, "b", "j", None, None).unwrap();
        let o = ppm
            .run_tool(
                "a",
                USER,
                vec![ToolStep::new("*", Op::Snapshot)],
                SimDuration::from_secs(30),
            )
            .unwrap();
        (g, o.replies.last().map(|(_, t)| *t), ppm.now())
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1, "identical reply timing for identical seeds");
    let c = run(8);
    assert!(a.1 != c.1 || a.0 != c.0, "different seed perturbs the run");
}

#[test]
fn lpm_stats_expose_internal_counters() {
    let mut ppm = three_hosts();
    // Exercise the pipeline: two remote creations and one broadcast.
    ppm.spawn_remote("calder", USER, "ucbarpa", "a", None, None)
        .unwrap();
    ppm.spawn_remote("calder", USER, "kim", "b", None, None)
        .unwrap();
    ppm.snapshot("calder", USER, "*").unwrap();

    match ppm.lpm_stats("calder", USER, "calder").unwrap() {
        Reply::Stats {
            requests,
            bcasts,
            handlers,
            ..
        } => {
            assert!(
                requests >= 4,
                "spawns + snapshot + stats itself: {requests}"
            );
            assert_eq!(bcasts.0, 1, "one broadcast originated");
            assert!(handlers.0 >= 1, "remote legs forked handlers");
        }
        other => panic!("unexpected {other:?}"),
    }
    // The remote LPM saw the wave but originated nothing.
    match ppm.lpm_stats("calder", USER, "ucbarpa").unwrap() {
        Reply::Stats { bcasts, .. } => {
            assert_eq!(bcasts.0, 0);
            assert_eq!(bcasts.1, 1, "participated in one broadcast");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn route_cache_hits_are_counted() {
    // Chain with sibling edges calder-ucbarpa and ucbarpa-kim only; a
    // broadcast teaches calder the route to kim, and a directed request
    // then relays through ucbarpa (a route-cache hit at calder).
    let mut ppm = three_hosts();
    ppm.spawn_remote("calder", USER, "ucbarpa", "a", None, None)
        .unwrap();
    let far = ppm
        .spawn_remote("ucbarpa", USER, "kim", "b", None, None)
        .unwrap();
    ppm.snapshot("calder", USER, "*").unwrap();
    ppm.control("calder", USER, &far, ControlAction::Stop)
        .unwrap();

    match ppm.lpm_stats("calder", USER, "calder").unwrap() {
        Reply::Stats {
            route_cache_hits, ..
        } => {
            assert!(
                route_cache_hits >= 1,
                "directed request used the learned route"
            );
        }
        other => panic!("unexpected {other:?}"),
    }
    // The relay is counted at the intermediate LPM.
    match ppm.lpm_stats("calder", USER, "ucbarpa").unwrap() {
        Reply::Stats { relays, .. } => {
            assert!(relays >= 1, "ucbarpa relayed for calder");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn hop_budget_limits_relaying_but_not_delivery() {
    // Sibling edges calder-ucbarpa and ucbarpa-kim; requests from calder
    // to kim must relay through ucbarpa once the route is learned.
    let build = |max_hops: u8| {
        let cfg = PpmConfig {
            max_hops,
            ..PpmConfig::default()
        };
        let mut ppm = PpmHarness::builder()
            .host("calder", CpuClass::Vax780)
            .host("ucbarpa", CpuClass::Vax750)
            .host("kim", CpuClass::Sun2)
            .link("calder", "ucbarpa")
            .link("ucbarpa", "kim")
            .user(USER, SECRET, &["calder"], cfg)
            .build();
        ppm.spawn_remote("calder", USER, "ucbarpa", "a", None, None)
            .unwrap();
        let far = ppm
            .spawn_remote("ucbarpa", USER, "kim", "b", None, None)
            .unwrap();
        ppm.snapshot("calder", USER, "*").unwrap(); // teach the route
        (ppm, far)
    };

    // Budget 1: one relay allowed; the request reaches kim.
    let (mut ppm, far) = build(1);
    ppm.control("calder", USER, &far, ControlAction::Stop)
        .unwrap();

    // Budget 0: the relay at ucbarpa refuses.
    let (mut ppm, far) = build(0);
    let err = ppm
        .control("calder", USER, &far, ControlAction::Stop)
        .unwrap_err();
    assert!(
        err.to_string().contains("NoRoute") || err.to_string().contains("hop"),
        "{err}"
    );

    // Budget 0 does not block direct delivery to an adjacent sibling.
    let (mut ppm, _) = build(0);
    let near = ppm
        .spawn_remote("calder", USER, "ucbarpa", "near", None, None)
        .unwrap();
    ppm.control("calder", USER, &near, ControlAction::Stop)
        .unwrap();
}

#[test]
fn concurrent_tools_are_all_served() {
    let mut ppm = three_hosts();
    ppm.spawn_remote("calder", USER, "ucbarpa", "job", None, None)
        .unwrap();
    // Three tools fire at once at the same LPM: a broadcast snapshot, a
    // status query and a history query.
    let h1 = ppm
        .launch_tool("calder", USER, vec![ToolStep::new("*", Op::Snapshot)])
        .unwrap();
    let h2 = ppm
        .launch_tool("calder", USER, vec![ToolStep::new("calder", Op::Status)])
        .unwrap();
    let h3 = ppm
        .launch_tool(
            "calder",
            USER,
            vec![ToolStep::new(
                "ucbarpa",
                Op::History {
                    since_us: 0,
                    max: 50,
                },
            )],
        )
        .unwrap();
    ppm.run_for(SimDuration::from_secs(20));
    for (i, h) in [h1, h2, h3].iter().enumerate() {
        let o = h.lock().unwrap().clone();
        assert!(o.done, "tool {i} finished");
        assert!(o.error.is_none(), "tool {i}: {:?}", o.error);
        assert_eq!(o.replies.len(), 1, "tool {i}");
    }
}

#[test]
fn cpu_threshold_trigger_fires_end_to_end() {
    let mut ppm = three_hosts();
    // Install a trigger killing any "runaway" that burned >= 200 ms CPU.
    let spec = TriggerSpec {
        id: 9,
        pattern: EventPattern::default()
            .with_command_prefix("runaway")
            .with_min_cpu_us(200_000),
        action: TriggerAction::KillTree {
            root: Gpid::new("ucbarpa", 0), // placeholder; replaced below
        },
        once: false,
    };
    // A modest job stays under the threshold; a hog exceeds it.
    let modest = ppm
        .run_tool(
            "calder",
            USER,
            vec![ToolStep::new(
                "ucbarpa",
                Op::Spawn {
                    command: "runaway-small".into(),
                    logical_parent: None,
                    lifetime_us: Some(60_000_000),
                    work_us: 50_000,
                    cpu_bound: false,
                },
            )],
            SimDuration::from_secs(30),
        )
        .unwrap();
    let modest_gpid = match modest.reply(0) {
        Some(Reply::Spawned { gpid }) => gpid.clone(),
        other => panic!("{other:?}"),
    };
    let hog = ppm
        .run_tool(
            "calder",
            USER,
            vec![ToolStep::new(
                "ucbarpa",
                Op::Spawn {
                    command: "runaway-hog".into(),
                    logical_parent: None,
                    lifetime_us: Some(60_000_000),
                    work_us: 400_000,
                    cpu_bound: false,
                },
            )],
            SimDuration::from_secs(30),
        )
        .unwrap();
    let hog_gpid = match hog.reply(0) {
        Some(Reply::Spawned { gpid }) => gpid.clone(),
        other => panic!("{other:?}"),
    };
    // Register the trigger with the hog as its kill root: the cpu
    // threshold is evaluated against the event's process, so the action
    // fires only once the hog's accounted CPU crosses 200 ms.
    let spec = TriggerSpec {
        action: TriggerAction::Signal {
            target: hog_gpid.clone(),
            signal: 9,
        },
        ..spec
    };
    ppm.run_tool(
        "calder",
        USER,
        vec![ToolStep::new("ucbarpa", Op::AddTrigger { spec })],
        SimDuration::from_secs(30),
    )
    .unwrap();

    // Poke both processes so kernel events (with CPU accounting) flow.
    ppm.control("calder", USER, &modest_gpid, ControlAction::Stop)
        .unwrap();
    ppm.control("calder", USER, &modest_gpid, ControlAction::Background)
        .unwrap();
    // The stop's own signal event can already fire the trigger, in which
    // case the follow-up control races with the kill — tolerate that.
    let _ = ppm.control("calder", USER, &hog_gpid, ControlAction::Stop);
    let _ = ppm.control("calder", USER, &hog_gpid, ControlAction::Background);
    ppm.run_for(SimDuration::from_secs(5));

    let ucbarpa = ppm.host("ucbarpa").unwrap();
    let hog_alive = ppm
        .world()
        .core()
        .kernel(ucbarpa)
        .get(ppm_simos::ids::Pid(hog_gpid.pid))
        .unwrap()
        .is_alive();
    assert!(
        !hog_alive,
        "the hog crossed the CPU threshold and was killed"
    );
    // The modest job survives its own signals (its CPU stays under).
    let modest_state = ppm
        .world()
        .core()
        .kernel(ucbarpa)
        .get(ppm_simos::ids::Pid(modest_gpid.pid))
        .unwrap()
        .state;
    assert_eq!(modest_state, ProcState::Running);
}
