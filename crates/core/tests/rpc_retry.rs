//! Chaos tests for the unified RPC layer: retry with backoff on sibling
//! connection loss, idempotent deduplication of retried deliveries, and
//! deadline propagation.
//!
//! The invariant under test is exactly-once *execution* on top of
//! at-least-once *delivery*: a retried attempt reuses the original
//! correlation id, so the executing LPM either redirects the in-flight
//! request or replays its cached reply — it never runs the operation
//! twice. Duplicate execution would show up as a second process in the
//! genealogy, which the snapshot assertions rule out.

use ppm_core::client::ToolStep;
use ppm_core::config::PpmConfig;
use ppm_harness::harness::PpmHarness;
use ppm_proto::msg::{ErrCode, Op, Reply};
use ppm_simnet::time::SimDuration;
use ppm_simnet::topology::CpuClass;
use ppm_simos::ids::Uid;

const USER: Uid = Uid(100);
const SECRET: u64 = 0x1986;

fn spawn_op(command: &str) -> Op {
    Op::Spawn {
        command: command.to_string(),
        logical_parent: None,
        lifetime_us: None,
        work_us: 0,
        cpu_bound: false,
    }
}

/// Two hosts on a single link, so taking the link down actually severs
/// them (richer topologies reroute at the network layer).
fn pair() -> PpmHarness {
    PpmHarness::builder()
        .host("origin", CpuClass::Vax780)
        .host("exec", CpuClass::Vax750)
        .link("origin", "exec")
        .user(USER, SECRET, &["origin"], PpmConfig::fast_recovery())
        .build()
}

/// Warms the sibling channel origin → exec so later requests reuse an
/// established connection.
fn warm(ppm: &mut PpmHarness) {
    let outcome = ppm
        .run_tool(
            "origin",
            USER,
            vec![ToolStep::new("exec", Op::Ping)],
            SimDuration::from_secs(30),
        )
        .unwrap();
    assert!(outcome.error.is_none());
}

/// Counts live processes named `command` on `host` — the genealogy-level
/// duplicate-execution detector.
fn live_named(ppm: &mut PpmHarness, host: &str, command: &str) -> usize {
    ppm.snapshot("origin", USER, "*")
        .unwrap()
        .iter()
        .filter(|p| p.gpid.host == host && p.command == command)
        .count()
}

/// The sibling connection breaks before the request gets out: the origin
/// LPM retries under the same correlation id over a rebuilt channel, and
/// the operation executes exactly once.
#[test]
fn sibling_loss_before_delivery_retries_and_executes_once() {
    let mut ppm = pair();
    warm(&mut ppm);

    // Cut the direct link, healing it again shortly after. The stale
    // connection only notices on the next send (breakage surfaces after
    // the detection interval), so the first attempt is lost and the
    // retry rebuilds the channel over the healed link.
    let a = ppm.host("origin").unwrap();
    let b = ppm.host("exec").unwrap();
    ppm.world_mut()
        .schedule_link(a, b, false, SimDuration::from_millis(1));
    ppm.world_mut()
        .schedule_link(a, b, true, SimDuration::from_millis(250));

    let outcome = ppm
        .run_tool(
            "origin",
            USER,
            vec![ToolStep::new("exec", spawn_op("retried-job"))],
            SimDuration::from_secs(30),
        )
        .unwrap();
    assert!(outcome.error.is_none(), "error: {:?}", outcome.error);
    assert!(
        matches!(outcome.reply(0), Some(Reply::Spawned { .. })),
        "retried spawn succeeds: {:?}",
        outcome.reply(0)
    );

    let trace = ppm.world().core().trace().render(None);
    assert!(
        trace.contains("retry attempt 1"),
        "the retry path was exercised"
    );
    // Same correlation id end-to-end: the retry was scheduled under an
    // origin-scoped key, not a fresh wire id.
    let key = trace
        .lines()
        .find(|l| l.contains("retry attempt 1"))
        .and_then(|l| l.split("request ").nth(1))
        .and_then(|s| s.split(' ').next())
        .expect("retry trace names the correlation key");
    assert!(key.starts_with("origin#"), "key is origin-scoped: {key}");

    // Exactly one execution.
    assert_eq!(live_named(&mut ppm, "exec", "retried-job"), 1);
}

/// The request executes but its reply is lost to a partition: the origin
/// times out and retries, and the executor answers the duplicate from its
/// done-reply cache instead of running the operation again.
#[test]
fn lost_reply_is_replayed_from_the_dedup_cache_not_reexecuted() {
    let mut ppm = pair();
    warm(&mut ppm);

    let a = ppm.host("origin").unwrap();
    let b = ppm.host("exec").unwrap();
    // Launch the spawn asynchronously so the partition can hit
    // mid-request: after the request has been delivered, before the
    // reply is sent.
    let handle = ppm
        .launch_tool(
            "origin",
            USER,
            vec![ToolStep::new("exec", spawn_op("once-job"))],
        )
        .unwrap();
    // Let the tool start (~60 ms) and its request reach exec, then cut
    // the link while the handler is still working (the spawn's reply is
    // deferred until the child's exec event, ~60 ms later).
    ppm.run_for(SimDuration::from_millis(80));
    ppm.world_mut()
        .schedule_link(a, b, false, SimDuration::from_millis(1));
    // Heal before the origin's 3 s request timeout fires, so the retry
    // can get through.
    ppm.run_for(SimDuration::from_secs(1));
    ppm.world_mut()
        .schedule_link(a, b, true, SimDuration::from_millis(1));
    ppm.run_for(SimDuration::from_secs(20));

    let outcome = handle.lock().unwrap().clone();
    assert!(outcome.done, "tool finished after the retry");
    assert!(outcome.error.is_none(), "error: {:?}", outcome.error);
    assert!(
        matches!(outcome.reply(0), Some(Reply::Spawned { .. })),
        "spawn reply arrived on a later attempt: {:?}",
        outcome.reply(0)
    );

    let trace = ppm.world().core().trace().render(None);
    assert!(trace.contains("retry attempt"), "origin retried");
    assert!(
        trace.contains("replaying cached reply") || trace.contains("suppressed (in flight)"),
        "executor deduplicated the retried delivery"
    );
    // The genealogy shows exactly one execution despite the duplicate
    // delivery.
    assert_eq!(live_named(&mut ppm, "exec", "once-job"), 1);
}

/// A request stamped with a too-tight deadline is refused in flight with
/// `DeadlineExceeded` — distinct from `Timeout`, which means attempts
/// were exhausted with no verdict.
#[test]
fn expired_deadline_is_refused_in_flight() {
    let mut ppm = pair();
    warm(&mut ppm);

    // One hop costs ~5 ms and each relay decays the deadline by 20 ms,
    // so a 2 ms budget is unmeetable: the executing LPM refuses rather
    // than doing work whose answer can no longer arrive in time.
    let (tool, handle) = ppm_core::client::Tool::new(
        ppm_core::auth::UserCred::new(USER, SECRET),
        PpmConfig::fast_recovery(),
        vec![ToolStep::new("exec", Op::Ping)],
    );
    let tool = tool.with_step_deadline(SimDuration::from_millis(2));
    let h = ppm.host("origin").unwrap();
    ppm.world_mut()
        .spawn_user(
            h,
            USER,
            ppm_simos::program::SpawnSpec::new("ppm-tool", Box::new(tool)),
        )
        .unwrap();
    ppm.run_for(SimDuration::from_secs(10));

    let outcome = handle.lock().unwrap().clone();
    assert!(outcome.done);
    assert!(
        matches!(
            outcome.reply(0),
            Some(Reply::Err {
                code: ErrCode::DeadlineExceeded,
                ..
            })
        ),
        "expired deadline maps to DeadlineExceeded, got {:?}",
        outcome.reply(0)
    );
}
