//! Randomized fault-injection ("chaos") runs.
//!
//! Seeded random interleavings of user operations (remote creation,
//! control, snapshots, history) with faults (host crashes, restarts,
//! partitions, pmd/LPM kills). The assertions are liveness and sanity,
//! not specific outcomes: every operation either succeeds or fails with
//! a clean error; the world never panics; snapshots never report
//! processes from dead hosts; and after the dust settles the PPM still
//! serves requests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ppm_core::client::ToolStep;
use ppm_core::config::PpmConfig;
use ppm_harness::harness::{HarnessError, PpmHarness};
use ppm_proto::msg::{ControlAction, Op};
use ppm_proto::types::Gpid;
use ppm_simnet::time::{SimDuration, SimTime};
use ppm_simnet::topology::CpuClass;
use ppm_simos::ids::Uid;
use ppm_simos::signal::Signal;

const USER: Uid = Uid(100);
const HOSTS: [&str; 4] = ["h0", "h1", "h2", "h3"];

fn harness(seed: u64) -> PpmHarness {
    let mut b = PpmHarness::builder().seed(seed);
    for (i, h) in HOSTS.iter().enumerate() {
        b = b.host(
            *h,
            if i % 2 == 0 {
                CpuClass::Vax780
            } else {
                CpuClass::Sun2
            },
        );
    }
    // Ring plus one chord: stays connected under any single link failure.
    b = b
        .link("h0", "h1")
        .link("h1", "h2")
        .link("h2", "h3")
        .link("h3", "h0")
        .link("h0", "h2");
    b.user(USER, 0xC4A05, &["h0", "h1"], PpmConfig::fast_recovery())
        .build()
}

/// One chaos episode: random ops + faults for `steps` rounds.
fn run_episode(seed: u64, steps: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ppm = harness(seed);
    let mut live_procs: Vec<Gpid> = Vec::new();
    let mut downed: Vec<&str> = Vec::new();
    let mut cut_links: Vec<(&str, &str)> = Vec::new();

    let up_host = |rng: &mut StdRng, downed: &Vec<&str>| -> Option<&'static str> {
        let ups: Vec<&str> = HOSTS
            .iter()
            .filter(|h| !downed.contains(h))
            .copied()
            .collect();
        if ups.is_empty() {
            None
        } else {
            Some(ups[rng.gen_range(0..ups.len())])
        }
    };

    for step in 0..steps {
        let dice = rng.gen_range(0..100);
        match dice {
            // ---- user operations -------------------------------------
            0..=34 => {
                // Remote creation between two up hosts.
                let (Some(from), Some(to)) =
                    (up_host(&mut rng, &downed), up_host(&mut rng, &downed))
                else {
                    continue;
                };
                match ppm.spawn_remote(from, USER, to, &format!("job-{step}"), None, None) {
                    Ok(g) => live_procs.push(g),
                    Err(HarnessError::UnknownHost(_)) => panic!("hosts are static"),
                    Err(_) => {} // clean failure under faults is fine
                }
            }
            35..=54 => {
                // Control a random known process.
                if live_procs.is_empty() {
                    continue;
                }
                let Some(from) = up_host(&mut rng, &downed) else {
                    continue;
                };
                let idx = rng.gen_range(0..live_procs.len());
                let target = live_procs[idx].clone();
                let action = match rng.gen_range(0..3) {
                    0 => ControlAction::Stop,
                    1 => ControlAction::Background,
                    _ => ControlAction::Kill,
                };
                let res = ppm.control(from, USER, &target, action);
                if matches!(action, ControlAction::Kill) && res.is_ok() {
                    live_procs.remove(idx);
                }
            }
            55..=64 => {
                // Distributed snapshot; validate it.
                let Some(from) = up_host(&mut rng, &downed) else {
                    continue;
                };
                if let Ok(procs) = ppm.snapshot(from, USER, "*") {
                    for p in &procs {
                        assert!(
                            !downed.contains(&p.gpid.host.as_str()),
                            "snapshot reported {} from a crashed host",
                            p.gpid
                        );
                    }
                }
            }
            65..=69 => {
                // History query.
                let Some(from) = up_host(&mut rng, &downed) else {
                    continue;
                };
                let _ = ppm.history(from, USER, from, SimTime::ZERO, 100);
            }
            // ---- faults ------------------------------------------------
            70..=79 => {
                // Crash a host (keep at least two up).
                if downed.len() >= HOSTS.len() - 2 {
                    continue;
                }
                let Some(victim) = up_host(&mut rng, &downed) else {
                    continue;
                };
                let h = ppm.host(victim).unwrap();
                ppm.world_mut()
                    .schedule_crash(h, SimDuration::from_millis(1));
                downed.push(victim);
                live_procs.retain(|g| g.host != victim);
            }
            80..=86 => {
                // Restart a downed host.
                if let Some(victim) = downed.pop() {
                    let h = ppm.host(victim).unwrap();
                    ppm.world_mut()
                        .schedule_restart(h, SimDuration::from_millis(1));
                }
            }
            87..=92 => {
                // Cut or heal one link.
                let links = [
                    ("h0", "h1"),
                    ("h1", "h2"),
                    ("h2", "h3"),
                    ("h3", "h0"),
                    ("h0", "h2"),
                ];
                let l = links[rng.gen_range(0..links.len())];
                let a = ppm.host(l.0).unwrap();
                let b = ppm.host(l.1).unwrap();
                if let Some(pos) = cut_links.iter().position(|&c| c == l) {
                    cut_links.remove(pos);
                    ppm.world_mut()
                        .schedule_link(a, b, true, SimDuration::from_millis(1));
                } else {
                    cut_links.push(l);
                    ppm.world_mut()
                        .schedule_link(a, b, false, SimDuration::from_millis(1));
                }
            }
            93..=96 => {
                // Kill a pmd or an LPM outright (process-level failure).
                let Some(victim) = up_host(&mut rng, &downed) else {
                    continue;
                };
                let h = ppm.host(victim).unwrap();
                let daemon = ppm
                    .world()
                    .core()
                    .kernel(h)
                    .processes()
                    .find(|p| (p.command == "pmd" || p.command.starts_with("lpm")) && p.is_alive())
                    .map(|p| p.pid);
                if let Some(pid) = daemon {
                    let _ = ppm
                        .world_mut()
                        .post_signal(Uid::ROOT, (h, pid), Signal::Kill);
                }
            }
            _ => {
                // Let time pass.
                ppm.run_for(SimDuration::from_secs(rng.gen_range(1..5)));
            }
        }
        ppm.run_for(SimDuration::from_millis(rng.gen_range(50..500)));
    }

    // Settle: heal everything and verify the PPM still works end to end.
    for l in cut_links {
        let a = ppm.host(l.0).unwrap();
        let b = ppm.host(l.1).unwrap();
        ppm.world_mut()
            .schedule_link(a, b, true, SimDuration::from_millis(1));
    }
    for victim in downed {
        let h = ppm.host(victim).unwrap();
        ppm.world_mut()
            .schedule_restart(h, SimDuration::from_millis(1));
    }
    ppm.run_for(SimDuration::from_secs(30));

    let g = ppm
        .spawn_remote("h0", USER, "h3", "after-the-storm", None, None)
        .expect("PPM recovered and serves requests");
    let procs = ppm
        .snapshot("h0", USER, "*")
        .expect("snapshot works after recovery");
    assert!(procs.iter().any(|p| p.gpid == g));
    let outcome = ppm
        .run_tool(
            "h0",
            USER,
            vec![ToolStep::new("h3", Op::Ping)],
            SimDuration::from_secs(30),
        )
        .expect("ping works after recovery");
    assert!(outcome.error.is_none());
}

#[test]
fn chaos_episode_seed_1() {
    run_episode(0xC4A0_5000 + 1, 40);
}

#[test]
fn chaos_episode_seed_2() {
    run_episode(0xC4A0_5000 + 2, 40);
}

#[test]
fn chaos_episode_seed_3() {
    run_episode(0xC4A0_5000 + 3, 40);
}

#[test]
fn chaos_episode_seed_4() {
    run_episode(0xC4A0_5000 + 4, 60);
}

#[test]
fn chaos_episode_seed_5() {
    run_episode(0xC4A0_5000 + 5, 60);
}

/// Chaos episodes are reproducible: the same seed yields the same final
/// simulated clock.
#[test]
fn chaos_is_deterministic() {
    let clock = |seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ppm = harness(seed);
        for _ in 0..10 {
            let to = HOSTS[rng.gen_range(0..HOSTS.len())];
            let _ = ppm.spawn_remote("h0", USER, to, "j", None, None);
            ppm.run_for(SimDuration::from_millis(rng.gen_range(50..500)));
        }
        ppm.now()
    };
    assert_eq!(clock(42), clock(42));
}

/// A relay that loses a child mid-gather still answers with a partial
/// aggregate: the origin's sweep completes and marks exactly the
/// unreachable hosts, with every reachable host's slice intact.
#[test]
fn relay_losing_a_child_mid_gather_yields_a_partial_aggregate() {
    let chain = ["c0", "c1", "c2", "c3"];
    let mut b = PpmHarness::builder().seed(0xBCA57);
    for h in chain {
        b = b.host(h, CpuClass::Vax780);
    }
    b = b.link("c0", "c1").link("c1", "c2").link("c2", "c3");
    let mut ppm = b
        .user(USER, 0xBCA57, &chain, PpmConfig::fast_recovery())
        .build();

    // Spawn each host's process from its chain predecessor so the
    // on-demand sibling graph is the chain itself: c1 and c2 become true
    // relays on the broadcast cover tree.
    for i in 1..chain.len() {
        ppm.spawn_remote(
            chain[i - 1],
            USER,
            chain[i],
            &format!("job-{}", chain[i]),
            None,
            None,
        )
        .expect("spawn succeeds on the healthy chain");
    }
    ppm.run_for(SimDuration::from_secs(1));

    // Sever the c2–c3 edge just before the sweep. The sibling channel is
    // still registered at c2, so the relay forwards the wave to c3 and
    // waits — then the break surfaces mid-gather and c2 must fall back to
    // a partial aggregate naming exactly its lost child.
    let c2 = ppm.host("c2").unwrap();
    let c3 = ppm.host("c3").unwrap();
    ppm.world_mut()
        .schedule_link(c2, c3, false, SimDuration::from_millis(1));
    ppm.run_for(SimDuration::from_millis(50));

    let (procs, missing) = ppm
        .snapshot_partial("c0", USER, "*")
        .expect("partial sweep still completes");
    assert_eq!(
        missing,
        vec!["c3".to_string()],
        "exactly the unreachable host is marked missing"
    );
    for h in ["c1", "c2"] {
        assert!(
            procs.iter().any(|p| p.gpid.host == h),
            "reachable host {h} contributed its slice"
        );
    }
    assert!(
        procs.iter().all(|p| p.gpid.host != "c3"),
        "no stale records from the lost subtree"
    );

    // A later sweep over the healed chain is complete again.
    let h2 = ppm.host("c2").unwrap();
    let h3 = ppm.host("c3").unwrap();
    ppm.world_mut()
        .schedule_link(h2, h3, true, SimDuration::from_millis(1));
    ppm.run_for(SimDuration::from_secs(20));
    let (_, missing) = ppm
        .snapshot_partial("c0", USER, "*")
        .expect("sweep after heal");
    assert!(missing.is_empty(), "healed sweep is complete: {missing:?}");
}
