//! The name-server CCS policy — Section 5's proposed alternative to
//! `.recovery` files: "The existence of name servers in the network could
//! be used to aid in crash recovery. LPMs would query the name server for
//! a CCS. ... the assignment of the CCS could be better coordinated by
//! network administrators."

use ppm_core::config::{PpmConfig, RecoveryPolicy};
use ppm_core::pmd::PmdOptions;
use ppm_harness::harness::PpmHarness;
use ppm_proto::msg::Reply;
use ppm_simnet::time::SimDuration;
use ppm_simnet::topology::CpuClass;
use ppm_simos::ids::Uid;

const USER: Uid = Uid(100);

fn ns_config() -> PpmConfig {
    PpmConfig {
        recovery_policy: RecoveryPolicy::NameServer {
            host: "ns".to_string(),
        },
        ..PpmConfig::fast_recovery()
    }
}

fn harness(cfg: PpmConfig) -> PpmHarness {
    PpmHarness::builder()
        .host("ns", CpuClass::Vax780)
        .host("alpha", CpuClass::Vax750)
        .host("beta", CpuClass::Vax750)
        .link("ns", "alpha")
        .link("ns", "beta")
        .link("alpha", "beta")
        .user(USER, 0x1986, &[], cfg) // no .recovery file needed
        .build()
}

fn ccs_of(ppm: &mut PpmHarness, host: &str) -> (String, u64) {
    match ppm.status(host, USER, host).unwrap() {
        Reply::Status { ccs, epoch, .. } => (ccs, epoch),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn first_claimant_becomes_ccs_for_everyone() {
    let mut ppm = harness(ns_config());
    // First LPM comes up on alpha (tool contact creates it there).
    ppm.spawn_remote("alpha", USER, "alpha", "j1", None, None)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(2));
    let (ccs_a, epoch_a) = ccs_of(&mut ppm, "alpha");
    assert_eq!(ccs_a, "alpha", "first claimant assigned by the name server");
    assert_eq!(epoch_a, 1);

    // A later LPM on beta learns the same assignment.
    ppm.spawn_remote("alpha", USER, "beta", "j2", None, None)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(2));
    let (ccs_b, _) = ccs_of(&mut ppm, "beta");
    assert_eq!(
        ccs_b, "alpha",
        "name server coordinates one CCS network-wide"
    );
}

#[test]
fn ccs_crash_prompts_reassignment_via_name_server() {
    let mut ppm = harness(ns_config());
    ppm.spawn_remote("alpha", USER, "alpha", "j1", None, None)
        .unwrap();
    ppm.spawn_remote("alpha", USER, "beta", "j2", None, None)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(2));
    assert_eq!(ccs_of(&mut ppm, "beta").0, "alpha");

    // The coordinator host crashes; beta reports it dead and is promoted.
    let alpha = ppm.host("alpha").unwrap();
    ppm.world_mut()
        .schedule_crash(alpha, SimDuration::from_millis(10));
    ppm.run_for(SimDuration::from_secs(20));
    let (ccs, epoch) = ccs_of(&mut ppm, "beta");
    assert_eq!(
        ccs, "beta",
        "name server reassigned the role to the reporter"
    );
    assert!(epoch >= 2);

    // alpha returns: the assignment is stable (no hand-back; the name
    // server coordinates, not a priority list).
    ppm.world_mut()
        .schedule_restart(alpha, SimDuration::from_millis(10));
    ppm.run_for(SimDuration::from_secs(10));
    ppm.spawn_remote("beta", USER, "alpha", "j3", None, None)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(5));
    let (ccs, _) = ccs_of(&mut ppm, "alpha");
    assert_eq!(ccs, "beta", "restarted host adopts the current assignment");
}

#[test]
fn stale_dead_report_does_not_steal_the_role() {
    // Two LPMs race to report the same dead CCS: only the first report
    // reassigns; the second gets the (new) current assignment back.
    let mut ppm = harness(ns_config());
    ppm.spawn_remote("alpha", USER, "alpha", "j1", None, None)
        .unwrap();
    ppm.spawn_remote("alpha", USER, "beta", "j2", None, None)
        .unwrap();
    // A third participant.
    ppm.spawn_remote("alpha", USER, "ns", "j3", None, None)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(2));

    let alpha = ppm.host("alpha").unwrap();
    ppm.world_mut()
        .schedule_crash(alpha, SimDuration::from_millis(10));
    ppm.run_for(SimDuration::from_secs(30));

    // Both survivors agree on a single CCS (whoever reported first).
    let (ccs_b, e_b) = ccs_of(&mut ppm, "beta");
    let (ccs_n, e_n) = ccs_of(&mut ppm, "ns");
    assert_eq!(ccs_b, ccs_n, "one coordinator, not two");
    assert_eq!(e_b, e_n);
    assert_ne!(ccs_b, "alpha");
}

#[test]
fn name_server_outage_leads_to_orphan_time_to_die() {
    let mut cfg = ns_config();
    cfg.time_to_die = SimDuration::from_secs(10);
    let mut ppm = harness(cfg);
    let g = ppm
        .spawn_remote("alpha", USER, "beta", "lonely", None, None)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(2));

    // Both the name server and the current CCS (alpha) crash: beta cannot
    // reach any coordinator authority and must close down.
    let ns = ppm.host("ns").unwrap();
    let alpha = ppm.host("alpha").unwrap();
    ppm.world_mut()
        .schedule_crash(ns, SimDuration::from_millis(10));
    ppm.world_mut()
        .schedule_crash(alpha, SimDuration::from_millis(10));
    ppm.run_for(SimDuration::from_secs(60));

    let beta = ppm.host("beta").unwrap();
    let p = ppm
        .world()
        .core()
        .kernel(beta)
        .get(ppm_simos::ids::Pid(g.pid))
        .unwrap();
    assert!(
        !p.is_alive(),
        "time-to-die closed down the user's processes"
    );
}

#[test]
fn assignments_survive_pmd_crash_with_stable_storage() {
    let mut ppm = PpmHarness::builder()
        .host("ns", CpuClass::Vax780)
        .host("alpha", CpuClass::Vax750)
        .link("ns", "alpha")
        .user(USER, 0x1986, &[], ns_config())
        .pmd_options(PmdOptions {
            stable_storage: true,
            ..PmdOptions::default()
        })
        .build();
    ppm.spawn_remote("alpha", USER, "alpha", "j1", None, None)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(2));
    let (_, epoch_before) = ccs_of(&mut ppm, "alpha");

    // Kill the name server's pmd; its successor restores the registry.
    let ns = ppm.host("ns").unwrap();
    let pmd_pid = ppm
        .world()
        .core()
        .kernel(ns)
        .processes()
        .find(|p| p.command == "pmd" && p.is_alive())
        .map(|p| p.pid)
        .expect("pmd alive");
    ppm.world_mut()
        .post_signal(Uid::ROOT, (ns, pmd_pid), ppm_simos::signal::Signal::Kill)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(1));

    // A new participant queries: the epoch does not restart from scratch.
    ppm.spawn_remote("alpha", USER, "ns", "j2", None, None)
        .unwrap();
    ppm.run_for(SimDuration::from_secs(3));
    let (ccs, epoch) = ccs_of(&mut ppm, "ns");
    assert_eq!(ccs, "alpha");
    assert_eq!(
        epoch, epoch_before,
        "assignment restored from stable storage"
    );
}
