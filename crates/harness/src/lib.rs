//! # ppm-harness — synchronous drivers for tests, scenarios, benchmarks
//!
//! Boots PPM worlds (currently the simulated backend), runs tools against
//! them, and exports metrics. Split out of `ppm-core` so the protocol
//! stack itself stays backend-agnostic: the harness is allowed to know
//! about `ppm-simos` worlds and `ppm-simnet` engines, the core is not.

pub mod harness;
pub mod tenant;

pub use harness::{HarnessBuilder, HarnessError, PpmHarness};
pub use tenant::{ScaleReport, TenantWorld, UserShard};
