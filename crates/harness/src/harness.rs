//! A synchronous driver around the simulated PPM.
//!
//! Tests, examples and benchmarks all need the same scaffolding: a world
//! with hosts and links, the pmd service registered, user accounts with
//! `.recovery` lists, and a way to run a tool script and wait for its
//! outcome. [`PpmHarness`] packages that. It plays the role of the user at
//! the terminal — everything it does goes through the same tools, daemons
//! and protocols a real user of the paper's system would exercise.

use std::sync::Arc;

use ppm_proto::msg::{ControlAction, Op, Reply};
use ppm_proto::types::{Gpid, HistoryRecord, MetricRow, ProcRecord, RusageRecord};
use ppm_simnet::latency::LatencyModel;
use ppm_simnet::obs::SpanEvent;
use ppm_simnet::time::{SimDuration, SimTime};
use ppm_simnet::topology::{CpuClass, HostId, HostSpec, NetSpec};
use ppm_simos::config::OsConfig;
use ppm_simos::ids::{Pid, Uid};
use ppm_simos::program::SpawnSpec;
use ppm_simos::world::World;

use ppm_core::auth::UserCred;
use ppm_core::client::{Tool, ToolHandle, ToolOutcome, ToolStep};
use ppm_core::config::{PpmConfig, PMD_PORT, PMD_SERVICE};
use ppm_core::pmd::{Pmd, PmdOptions};
use ppm_core::users::{UserDirectory, UserEntry};

/// Builder for a [`PpmHarness`].
pub struct HarnessBuilder {
    seed: u64,
    os: OsConfig,
    latency: LatencyModel,
    pmd_options: PmdOptions,
    hosts: Vec<HostSpec>,
    links: Vec<(String, String)>,
    users: UserDirectory,
    topology: Option<NetSpec>,
}

impl Default for HarnessBuilder {
    fn default() -> Self {
        HarnessBuilder {
            seed: 1986,
            os: OsConfig::default(),
            latency: LatencyModel::default(),
            pmd_options: PmdOptions::default(),
            hosts: Vec::new(),
            links: Vec::new(),
            users: UserDirectory::new(),
            topology: None,
        }
    }
}

impl std::fmt::Debug for HarnessBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HarnessBuilder")
            .field("seed", &self.seed)
            .field("hosts", &self.hosts.len())
            .field("links", &self.links.len())
            .field("users", &self.users.len())
            .finish()
    }
}

impl HarnessBuilder {
    /// Sets the world seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides OS constants.
    pub fn os_config(mut self, os: OsConfig) -> Self {
        self.os = os;
        self
    }

    /// Overrides the latency model.
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Configures pmd (stable storage ablation).
    pub fn pmd_options(mut self, options: PmdOptions) -> Self {
        self.pmd_options = options;
        self
    }

    /// Adds a host.
    pub fn host(mut self, name: impl Into<String>, cpu: CpuClass) -> Self {
        self.hosts.push(HostSpec::new(name, cpu));
        self
    }

    /// Adds an undirected link between two named hosts.
    pub fn link(mut self, a: impl Into<String>, b: impl Into<String>) -> Self {
        self.links.push((a.into(), b.into()));
        self
    }

    /// Installs a physical network model (see
    /// [`ppm_simos::world::World::install_netmodel`]): deliveries are
    /// priced over the topology's routes with per-link capacity and
    /// contention instead of the flat wire law. Without this, the flat
    /// model stays in force and runs are byte-identical to pre-netmodel
    /// builds.
    pub fn topology(mut self, spec: NetSpec) -> Self {
        self.topology = Some(spec);
        self
    }

    /// Adds a user account with a `.recovery` list and PPM config.
    pub fn user(mut self, uid: Uid, secret: u64, recovery: &[&str], config: PpmConfig) -> Self {
        self.users.insert(UserEntry {
            cred: UserCred::new(uid, secret),
            recovery: recovery.iter().map(|s| s.to_string()).collect(),
            config,
        });
        self
    }

    /// Builds the world: hosts, links, daemons, accounts.
    ///
    /// # Panics
    ///
    /// Panics if a link references an unknown host name.
    pub fn build(self) -> PpmHarness {
        let mut world = World::with_config(self.os, self.latency, self.seed);
        let users = self.users.into_shared();
        let pmd_users = Arc::clone(&users);
        let pmd_options = self.pmd_options;
        world.register_service(
            PMD_SERVICE,
            PMD_PORT,
            Box::new(move |_host| {
                Box::new(Pmd::new(Arc::clone(&pmd_users), PMD_PORT, pmd_options))
            }),
        );
        let mut ids = Vec::new();
        for spec in self.hosts {
            ids.push(world.add_host(spec));
        }
        for (a, b) in self.links {
            let ai = world
                .core()
                .host_by_name(&a)
                .unwrap_or_else(|| panic!("link references unknown host {a:?}"));
            let bi = world
                .core()
                .host_by_name(&b)
                .unwrap_or_else(|| panic!("link references unknown host {b:?}"));
            world.add_link(ai, bi);
        }
        if let Some(spec) = &self.topology {
            world
                .install_netmodel(spec)
                .unwrap_or_else(|e| panic!("topology install failed: {e}"));
        }
        // Let daemons boot.
        world.run_for(SimDuration::from_millis(50));
        PpmHarness { world, users }
    }
}

/// Errors surfaced by the synchronous harness operations.
#[derive(Debug, Clone, PartialEq)]
pub enum HarnessError {
    /// The tool reported a failure.
    Tool(String),
    /// The LPM answered with an error reply.
    Lpm(String),
    /// The tool never finished within the wait budget.
    Timeout,
    /// The account is not in the directory.
    UnknownUser,
    /// A host name did not resolve.
    UnknownHost(String),
    /// The reply had an unexpected shape for the request.
    UnexpectedReply,
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::Tool(s) => write!(f, "tool failed: {s}"),
            HarnessError::Lpm(s) => write!(f, "lpm error: {s}"),
            HarnessError::Timeout => f.write_str("tool did not finish in time"),
            HarnessError::UnknownUser => f.write_str("unknown user"),
            HarnessError::UnknownHost(h) => write!(f, "unknown host {h}"),
            HarnessError::UnexpectedReply => f.write_str("unexpected reply shape"),
        }
    }
}

impl std::error::Error for HarnessError {}

/// The assembled simulation plus conveniences.
pub struct PpmHarness {
    world: World,
    users: Arc<UserDirectory>,
}

impl std::fmt::Debug for PpmHarness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PpmHarness")
            .field("world", &self.world)
            .field("users", &self.users.len())
            .finish()
    }
}

impl PpmHarness {
    /// Starts a builder.
    pub fn builder() -> HarnessBuilder {
        HarnessBuilder::default()
    }

    /// The world, for inspection.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The world, mutable (fault injection, load hooks).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// Runs the world forward.
    pub fn run_for(&mut self, d: SimDuration) {
        self.world.run_for(d);
    }

    /// Resolves a host name.
    ///
    /// # Errors
    ///
    /// [`HarnessError::UnknownHost`].
    pub fn host(&self, name: &str) -> Result<HostId, HarnessError> {
        self.world
            .core()
            .host_by_name(name)
            .ok_or_else(|| HarnessError::UnknownHost(name.to_string()))
    }

    fn entry(&self, uid: Uid) -> Result<UserEntry, HarnessError> {
        self.users
            .get(uid)
            .cloned()
            .ok_or(HarnessError::UnknownUser)
    }

    /// Spawns a user process directly on a host (as if from a login
    /// shell), outside PPM control until adopted.
    ///
    /// # Errors
    ///
    /// [`HarnessError::UnknownHost`] or the spawn failure as a tool error.
    pub fn spawn_login_process(
        &mut self,
        host: &str,
        uid: Uid,
        spec: SpawnSpec,
    ) -> Result<Pid, HarnessError> {
        let h = self.host(host)?;
        self.world
            .spawn_user(h, uid, spec)
            .map_err(|e| HarnessError::Tool(e.to_string()))
    }

    /// Launches a tool process on `host` running `script`; returns its
    /// outcome handle immediately (asynchronous).
    ///
    /// # Errors
    ///
    /// [`HarnessError::UnknownUser`] / [`HarnessError::UnknownHost`].
    pub fn launch_tool(
        &mut self,
        host: &str,
        uid: Uid,
        script: Vec<ToolStep>,
    ) -> Result<ToolHandle, HarnessError> {
        let h = self.host(host)?;
        let entry = self.entry(uid)?;
        let (tool, handle) = Tool::new(entry.cred, entry.config.clone(), script);
        self.world
            .spawn_user(h, uid, SpawnSpec::new("ppm-tool", Box::new(tool)))
            .map_err(|e| HarnessError::Tool(e.to_string()))?;
        Ok(handle)
    }

    /// Like [`PpmHarness::launch_tool`], but the tool keeps up to `window`
    /// requests in flight on its LPM connection instead of running the
    /// script in lock-step.
    ///
    /// # Errors
    ///
    /// [`HarnessError::UnknownUser`] / [`HarnessError::UnknownHost`].
    pub fn launch_tool_pipelined(
        &mut self,
        host: &str,
        uid: Uid,
        script: Vec<ToolStep>,
        window: usize,
    ) -> Result<ToolHandle, HarnessError> {
        let h = self.host(host)?;
        let entry = self.entry(uid)?;
        let (tool, handle) = Tool::new(entry.cred, entry.config.clone(), script);
        let tool = tool.with_pipeline(window);
        self.world
            .spawn_user(h, uid, SpawnSpec::new("ppm-tool", Box::new(tool)))
            .map_err(|e| HarnessError::Tool(e.to_string()))?;
        Ok(handle)
    }

    /// Runs a pipelined tool script to completion (bounded by `wait`).
    ///
    /// # Errors
    ///
    /// [`HarnessError::Timeout`] if the tool does not finish, or the
    /// launch errors of [`PpmHarness::launch_tool_pipelined`].
    pub fn run_tool_pipelined(
        &mut self,
        host: &str,
        uid: Uid,
        script: Vec<ToolStep>,
        window: usize,
        wait: SimDuration,
    ) -> Result<ToolOutcome, HarnessError> {
        let handle = self.launch_tool_pipelined(host, uid, script, window)?;
        self.await_tool(handle, wait)
    }

    /// Runs a tool script to completion (bounded by `wait`), returning the
    /// outcome.
    ///
    /// # Errors
    ///
    /// [`HarnessError::Timeout`] if the tool does not finish, or the
    /// launch errors of [`PpmHarness::launch_tool`].
    pub fn run_tool(
        &mut self,
        host: &str,
        uid: Uid,
        script: Vec<ToolStep>,
        wait: SimDuration,
    ) -> Result<ToolOutcome, HarnessError> {
        let handle = self.launch_tool(host, uid, script)?;
        self.await_tool(handle, wait)
    }

    fn await_tool(
        &mut self,
        handle: ToolHandle,
        wait: SimDuration,
    ) -> Result<ToolOutcome, HarnessError> {
        let deadline = self.world.now() + wait;
        while self.world.now() < deadline {
            if handle.lock().unwrap().done {
                break;
            }
            self.world.run_for(SimDuration::from_millis(20));
        }
        let outcome = handle.lock().unwrap().clone();
        if !outcome.done {
            return Err(HarnessError::Timeout);
        }
        Ok(outcome)
    }

    fn one_reply(
        &mut self,
        host: &str,
        uid: Uid,
        dest: &str,
        op: Op,
        wait: SimDuration,
    ) -> Result<Reply, HarnessError> {
        let outcome = self.run_tool(host, uid, vec![ToolStep::new(dest, op)], wait)?;
        if let Some(err) = outcome.error {
            return Err(HarnessError::Tool(err));
        }
        match outcome.replies.into_iter().next() {
            Some((Reply::Err { code, detail }, _)) => {
                Err(HarnessError::Lpm(format!("{code:?}: {detail}")))
            }
            Some((reply, _)) => Ok(reply),
            None => Err(HarnessError::UnexpectedReply),
        }
    }

    /// Default wait budget for synchronous convenience calls.
    const WAIT: SimDuration = SimDuration::from_secs(60);

    /// Takes a snapshot: `dest` is a host name or `"*"` for the whole
    /// computation. A partial result (unreachable hosts) is returned
    /// as-is; callers who care use [`PpmHarness::snapshot_partial`].
    ///
    /// # Errors
    ///
    /// Tool/LPM/timeout errors as [`HarnessError`].
    pub fn snapshot(
        &mut self,
        from_host: &str,
        uid: Uid,
        dest: &str,
    ) -> Result<Vec<ProcRecord>, HarnessError> {
        Ok(self.snapshot_partial(from_host, uid, dest)?.0)
    }

    /// Takes a snapshot and reports which hosts, if any, never answered
    /// the sweep (lost mid-gather or timed out as stragglers).
    ///
    /// # Errors
    ///
    /// Tool/LPM/timeout errors as [`HarnessError`].
    pub fn snapshot_partial(
        &mut self,
        from_host: &str,
        uid: Uid,
        dest: &str,
    ) -> Result<(Vec<ProcRecord>, Vec<String>), HarnessError> {
        let reply = self.one_reply(from_host, uid, dest, Op::Snapshot, Self::WAIT)?;
        let (inner, missing) = split_partial(reply);
        match inner {
            Reply::Snapshot { procs, .. } => Ok((procs, missing)),
            _ => Err(HarnessError::UnexpectedReply),
        }
    }

    /// Adopts a process into the user's PPM.
    ///
    /// # Errors
    ///
    /// Tool/LPM/timeout errors as [`HarnessError`].
    pub fn adopt(
        &mut self,
        from_host: &str,
        uid: Uid,
        dest: &str,
        pid: u32,
        flags: u8,
    ) -> Result<(), HarnessError> {
        match self.one_reply(from_host, uid, dest, Op::Adopt { pid, flags }, Self::WAIT)? {
            Reply::Ok => Ok(()),
            _ => Err(HarnessError::UnexpectedReply),
        }
    }

    /// Controls a (possibly remote) process.
    ///
    /// # Errors
    ///
    /// Tool/LPM/timeout errors as [`HarnessError`].
    pub fn control(
        &mut self,
        from_host: &str,
        uid: Uid,
        target: &Gpid,
        action: ControlAction,
    ) -> Result<(), HarnessError> {
        let op = Op::Control {
            pid: target.pid,
            action,
        };
        match self.one_reply(from_host, uid, &target.host.clone(), op, Self::WAIT)? {
            Reply::Ok => Ok(()),
            _ => Err(HarnessError::UnexpectedReply),
        }
    }

    /// Creates a process on a remote host through the PPM.
    ///
    /// # Errors
    ///
    /// Tool/LPM/timeout errors as [`HarnessError`].
    pub fn spawn_remote(
        &mut self,
        from_host: &str,
        uid: Uid,
        dest: &str,
        command: &str,
        logical_parent: Option<Gpid>,
        lifetime: Option<SimDuration>,
    ) -> Result<Gpid, HarnessError> {
        let op = Op::Spawn {
            command: command.to_string(),
            logical_parent,
            lifetime_us: lifetime.map(|d| d.as_micros()),
            work_us: 0,
            cpu_bound: false,
        };
        match self.one_reply(from_host, uid, dest, op, Self::WAIT)? {
            Reply::Spawned { gpid } => Ok(gpid),
            _ => Err(HarnessError::UnexpectedReply),
        }
    }

    /// Fetches exited-process statistics.
    ///
    /// # Errors
    ///
    /// Tool/LPM/timeout errors as [`HarnessError`].
    pub fn rusage(
        &mut self,
        from_host: &str,
        uid: Uid,
        dest: &str,
        pid: Option<u32>,
    ) -> Result<Vec<RusageRecord>, HarnessError> {
        let reply = self.one_reply(from_host, uid, dest, Op::Rusage { pid }, Self::WAIT)?;
        match split_partial(reply).0 {
            Reply::Rusage { records } => Ok(records),
            _ => Err(HarnessError::UnexpectedReply),
        }
    }

    /// Fetches history events.
    ///
    /// # Errors
    ///
    /// Tool/LPM/timeout errors as [`HarnessError`].
    pub fn history(
        &mut self,
        from_host: &str,
        uid: Uid,
        dest: &str,
        since: SimTime,
        max: u16,
    ) -> Result<Vec<HistoryRecord>, HarnessError> {
        let op = Op::History {
            since_us: since.as_micros(),
            max,
        };
        let reply = self.one_reply(from_host, uid, dest, op, Self::WAIT)?;
        match split_partial(reply).0 {
            Reply::History { events } => Ok(events),
            _ => Err(HarnessError::UnexpectedReply),
        }
    }

    /// Fetches the LPM status on a host.
    ///
    /// # Errors
    ///
    /// Tool/LPM/timeout errors as [`HarnessError`].
    pub fn status(&mut self, from_host: &str, uid: Uid, dest: &str) -> Result<Reply, HarnessError> {
        self.one_reply(from_host, uid, dest, Op::Status, Self::WAIT)
    }

    /// Fetches the LPM internal counters on a host.
    ///
    /// # Errors
    ///
    /// Tool/LPM/timeout errors as [`HarnessError`].
    pub fn lpm_stats(
        &mut self,
        from_host: &str,
        uid: Uid,
        dest: &str,
    ) -> Result<Reply, HarnessError> {
        self.one_reply(from_host, uid, dest, Op::Stats, Self::WAIT)
    }

    /// Pulls a remote LPM's metrics registry over the wire
    /// ([`Op::Metrics`]), returning the answering host, its sim-clock
    /// timestamp, and the rows.
    ///
    /// # Errors
    ///
    /// Tool/LPM/timeout errors as [`HarnessError`].
    pub fn metrics_pull(
        &mut self,
        from_host: &str,
        uid: Uid,
        dest: &str,
    ) -> Result<(String, u64, Vec<MetricRow>), HarnessError> {
        match self.one_reply(from_host, uid, dest, Op::Metrics, Self::WAIT)? {
            Reply::Metrics { host, at_us, rows } => Ok((host, at_us, rows)),
            _ => Err(HarnessError::UnexpectedReply),
        }
    }

    /// Enables structured span recording. Off by default: span records
    /// cost an allocation each, so benchmarks leave them disabled.
    pub fn enable_spans(&mut self) {
        self.world.core_mut().obs_mut().spans.set_enabled(true);
    }

    /// Host names indexed by `HostId`, for the span exporters.
    pub fn host_names(&self) -> Vec<String> {
        let core = self.world.core();
        core.topology()
            .host_ids()
            .map(|id| core.host_name(id).to_string())
            .collect()
    }

    /// Recorded span events (empty unless [`PpmHarness::enable_spans`]
    /// was called before the activity of interest).
    pub fn span_events(&self) -> &[SpanEvent] {
        self.world.core().obs().spans.events()
    }

    /// Span events rendered as JSONL, one record per line.
    pub fn spans_jsonl(&self) -> String {
        ppm_core::obs::spans_jsonl(self.span_events(), &self.host_names())
    }

    /// Span events rendered as a Chrome `trace_event` document.
    pub fn spans_chrome(&self) -> String {
        ppm_core::obs::spans_chrome(self.span_events(), &self.host_names())
    }

    /// Every registry in the world as label-sorted sections: the world
    /// section first (kernel event path plus the event-engine queue
    /// statistics), then each registered LPM registry under its
    /// `host/uid` label.
    pub fn metrics_sections(&self) -> Vec<(String, Vec<MetricRow>)> {
        let core = self.world.core();
        let mut world_rows = ppm_core::obs::rows(&core.obs().registry.snapshot());
        let stats = core.engine_stats();
        let row = |name: &str, kind: u8, value: i64| MetricRow {
            name: name.to_string(),
            kind,
            value,
            sum: 0,
            buckets: Vec::new(),
        };
        world_rows.push(row("engine.schedules", 0, stats.schedules as i64));
        world_rows.push(row("engine.cancels", 0, stats.cancels as i64));
        world_rows.push(row("engine.fired", 0, stats.fired as i64));
        world_rows.push(row("engine.pending", 1, stats.pending as i64));
        world_rows.push(row("engine.overflow_peak", 1, stats.overflow_peak as i64));
        world_rows.sort_by(|a, b| a.name.cmp(&b.name));
        let mut sections = vec![("world".to_string(), world_rows)];
        for (label, snap) in core.obs().program_snapshots() {
            sections.push((label, ppm_core::obs::rows(&snap)));
        }
        sections
    }

    /// All metrics rendered as the stable text format behind
    /// `ppm-sim --metrics`.
    pub fn metrics_report(&self) -> String {
        ppm_core::obs::render_metrics(&self.metrics_sections())
    }
}

/// Unwraps a partial-result marker: the inner reply plus the hosts that
/// never answered (empty for a complete result).
fn split_partial(reply: Reply) -> (Reply, Vec<String>) {
    match reply {
        Reply::Partial { missing, inner } => (*inner, missing),
        other => (other, Vec::new()),
    }
}
