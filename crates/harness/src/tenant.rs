//! Multi-tenant scale world: millions of processes across thousands of
//! users, sharded per user end to end.
//!
//! The paper's PPM is *personal*: "each user has his own process manager"
//! and one user's administration never routes through another's. This
//! module takes that isolation property to scale. A [`TenantWorld`] holds
//! one [`UserShard`] per user — per-host [`Genealogy`] slab arenas plus an
//! LPM slot registry keyed by [`Uid`] — and drives all of them from a
//! single discrete-event [`Engine`] fed by the deterministic
//! fork/exec/exit [`Storm`] of `ppm-simos`. Because every decision comes
//! from the storm's seeded stream and every data structure is
//! allocation-recycling (slab arenas, slot free lists), a run is
//! replayable byte for byte and its resident set stays proportional to
//! the *live* population, not the cumulative number of processes tracked.
//!
//! The world is the substrate for `ppm-sim --users U --hosts N` and for
//! the `multi_tenant_scale` benchmark; its observable surface (report,
//! metrics, per-shard snapshots) is what the determinism and isolation
//! gates diff.

use ppm_proto::types::{Gpid, ProcRecord, WireProcState};
use ppm_simnet::engine::Engine;
use ppm_simnet::obs::{CounterId, GaugeId, Registry};
use ppm_simnet::time::SimDuration;
use ppm_simos::ids::{Port, Uid};
use ppm_simos::workload::{Storm, StormFork, StormSpec};

use ppm_core::config::lpm_port;
use ppm_core::genealogy::Genealogy;

/// Uid of the first (most active) storm user; user rank `r` is
/// `Uid(UID_BASE + r)`.
pub const UID_BASE: u32 = 1_000;

/// How long a shard retains a dead node before an arena sweep may drop
/// it, µs. Generous enough that snapshots see recent exits marked dead
/// (Section 2's "retain exit information"), short enough that arenas
/// recycle slots instead of growing with the cumulative fork count.
const RETENTION_US: u64 = 200_000;

/// The registered manager of one user on one host: the scale analogue of
/// a pmd registry row plus the LPM process it names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LpmSlot {
    /// The LPM's pid on its host.
    pub pid: u32,
    /// Its well-known per-user port.
    pub port: Port,
    /// Forks this slot has administered.
    pub forks: u64,
}

/// One user's slice of the world: per-host genealogy arenas and LPM
/// slots, touched lazily so a user who never reaches a host pays nothing
/// for it.
#[derive(Debug, Clone)]
pub struct UserShard {
    uid: Uid,
    /// Per-host genealogy arenas, `None` until the user's first fork
    /// lands there.
    arenas: Vec<Option<Genealogy>>,
    /// Per-host LPM slots, populated on first use of the host.
    lpms: Vec<Option<LpmSlot>>,
    /// Per-host pid of the user's most recent fork (0 = none): the
    /// candidate parent for nested forks.
    last_pid: Vec<u32>,
    /// Whether an arena sweep is already scheduled for this host.
    sweep_pending: Vec<bool>,
    /// Forks applied to this shard.
    pub forked: u64,
    /// Exits applied to this shard.
    pub exited: u64,
}

impl UserShard {
    fn new(uid: Uid, hosts: u16) -> Self {
        UserShard {
            uid,
            arenas: vec![None; hosts as usize],
            lpms: vec![None; hosts as usize],
            last_pid: vec![0; hosts as usize],
            sweep_pending: vec![false; hosts as usize],
            forked: 0,
            exited: 0,
        }
    }

    /// The shard's owner.
    pub fn uid(&self) -> Uid {
        self.uid
    }

    /// The user's genealogy arena on `host`, if the user ever forked
    /// there.
    pub fn genealogy(&self, host: u16) -> Option<&Genealogy> {
        self.arenas.get(host as usize).and_then(|a| a.as_ref())
    }

    /// The user's LPM slot on `host`, if registered.
    pub fn lpm(&self, host: u16) -> Option<&LpmSlot> {
        self.lpms.get(host as usize).and_then(|s| s.as_ref())
    }

    /// Hosts on which this user has an LPM registered.
    pub fn lpm_hosts(&self) -> Vec<u16> {
        (0..self.lpms.len() as u16)
            .filter(|&h| self.lpms[h as usize].is_some())
            .collect()
    }

    /// Live processes across every host of the shard.
    pub fn live_total(&self) -> usize {
        self.arenas.iter().flatten().map(|a| a.live_count()).sum()
    }

    /// Tracked processes (live plus retained-dead) across every host.
    pub fn tracked_total(&self) -> usize {
        self.arenas.iter().flatten().map(|a| a.len()).sum()
    }

    /// The user's whole forest as wire records, host-major then pid
    /// order — exactly what this user's display tools would render, and
    /// nothing another user's would.
    pub fn snapshot(&self) -> Vec<ProcRecord> {
        let mut out = Vec::new();
        for arena in self.arenas.iter().flatten() {
            out.extend(arena.snapshot());
        }
        out
    }
}

/// What the engine delivers: the next storm fork, a scheduled death, or
/// a retention sweep of one user's arena on one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StormEvent {
    /// Draw the next fork decision from the storm stream.
    Fork,
    /// A previously forked process reaches the end of its lifetime.
    Exit { user: u32, host: u16, pid: u32 },
    /// Retention sweep of one (user, host) arena.
    Sweep { user: u32, host: u16 },
}

/// Dense counter/gauge handles for the world's registry.
#[derive(Debug, Clone, Copy)]
struct Meters {
    forks: CounterId,
    remote_forks: CounterId,
    exits: CounterId,
    lpm_spawns: CounterId,
    sweeps: CounterId,
    pruned: CounterId,
    live: GaugeId,
    live_peak: GaugeId,
    tracked_peak: GaugeId,
}

/// The deterministic multi-tenant scale world (see the module docs).
///
/// # Examples
///
/// ```
/// use ppm_harness::tenant::TenantWorld;
/// use ppm_simos::workload::StormSpec;
///
/// let spec = StormSpec::new(32, 4, 7);
/// let a = TenantWorld::new(spec, 2_000).run();
/// let b = TenantWorld::new(spec, 2_000).run();
/// assert_eq!(a, b, "same spec, same report");
/// assert_eq!(a.procs, 2_000);
/// assert_eq!(a.exits, a.procs, "every fork eventually exits");
/// ```
#[derive(Debug)]
pub struct TenantWorld {
    spec: StormSpec,
    target: u64,
    storm: Storm,
    engine: Engine<StormEvent>,
    shards: Vec<UserShard>,
    host_names: Vec<String>,
    /// Per-host monotonic pid allocator (never recycled, so `(host,
    /// pid)` is unique across the run and across users).
    next_pid: Vec<u32>,
    reg: Registry,
    m: Meters,
    forks: u64,
    exits: u64,
    remote_forks: u64,
    lpm_spawns: u64,
    pruned: u64,
    live: u64,
    live_peak: u64,
    tracked_peak: u64,
    digest: u64,
}

/// FNV-1a fold of one value into the run digest.
#[inline]
fn mix(d: u64, v: u64) -> u64 {
    (d ^ v).wrapping_mul(0x100_0000_01b3)
}

/// The canonical `--users U --hosts N` storm spec: per-lane fork rates
/// held constant while the concurrent population scales with the user
/// count (capped so lifetimes stay bounded) — with `U` users the storm
/// keeps roughly `40 × min(U, 256)` processes live at once, which is
/// what makes the peak-RSS exhibit meaningful. `ppm-sim` and the
/// `ppm-sweep` storm axis both build specs through this function, so a
/// sweep cell and its repro command line replay the identical world.
#[must_use]
pub fn scale_spec(users: u32, hosts: u16, seed: u64) -> StormSpec {
    let mut spec = StormSpec::new(users, hosts, seed);
    spec.mean_lifetime_us = 40_000 * u64::from(users.min(256));
    spec
}

impl TenantWorld {
    /// Builds a world that will apply `procs` forks of `spec`'s storm.
    pub fn new(spec: StormSpec, procs: u64) -> Self {
        let users = spec.users;
        let hosts = spec.hosts;
        let mut reg = Registry::new();
        let m = Meters {
            forks: reg.counter("tenant.forks"),
            remote_forks: reg.counter("tenant.remote_forks"),
            exits: reg.counter("tenant.exits"),
            lpm_spawns: reg.counter("tenant.lpm_spawns"),
            sweeps: reg.counter("tenant.sweeps"),
            pruned: reg.counter("tenant.pruned"),
            live: reg.gauge("tenant.live"),
            live_peak: reg.gauge("tenant.live_peak"),
            tracked_peak: reg.gauge("tenant.tracked_peak"),
        };
        TenantWorld {
            spec,
            target: procs,
            storm: Storm::new(spec),
            engine: Engine::new(),
            shards: (0..users)
                .map(|r| UserShard::new(Uid(UID_BASE + r), hosts))
                .collect(),
            host_names: (0..hosts).map(|h| format!("h{h}")).collect(),
            next_pid: vec![2; hosts as usize],
            reg,
            m,
            forks: 0,
            exits: 0,
            remote_forks: 0,
            lpm_spawns: 0,
            pruned: 0,
            live: 0,
            live_peak: 0,
            tracked_peak: 0,
            digest: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// The storm spec this world replays.
    pub fn spec(&self) -> &StormSpec {
        &self.spec
    }

    /// All user shards, in activity-rank order.
    pub fn shards(&self) -> &[UserShard] {
        &self.shards
    }

    /// One user's shard by activity rank.
    pub fn shard(&self, user: u32) -> &UserShard {
        &self.shards[user as usize]
    }

    /// The name of host `host` (`"h0"`, `"h1"`, …).
    pub fn host_name(&self, host: u16) -> &str {
        &self.host_names[host as usize]
    }

    /// The world's metrics registry (deterministic snapshot source).
    pub fn metrics(&self) -> &Registry {
        &self.reg
    }

    /// Registers the user's LPM on `host` if absent; returns its pid.
    fn ensure_lpm(&mut self, user: u32, host: u16) -> u32 {
        let h = host as usize;
        if let Some(slot) = &self.shards[user as usize].lpms[h] {
            return slot.pid;
        }
        let pid = self.next_pid[h];
        self.next_pid[h] += 1;
        let uid = self.shards[user as usize].uid;
        self.shards[user as usize].lpms[h] = Some(LpmSlot {
            pid,
            port: lpm_port(uid),
            forks: 0,
        });
        self.lpm_spawns += 1;
        self.reg.inc(self.m.lpm_spawns);
        self.digest = mix(
            self.digest,
            0x11 ^ (u64::from(uid.0) << 16) ^ u64::from(pid),
        );
        pid
    }

    /// Applies one storm fork at the engine's current instant.
    fn apply_fork(&mut self, f: StormFork) {
        let now_us = self.engine.now().as_micros();
        let home_lpm = self.ensure_lpm(f.user, f.home);
        if f.host != f.home {
            self.ensure_lpm(f.user, f.host);
            self.remote_forks += 1;
            self.reg.inc(self.m.remote_forks);
        }
        let h = f.host as usize;
        let pid = self.next_pid[h];
        self.next_pid[h] += 1;
        if self.shards[f.user as usize].arenas[h].is_none() {
            self.shards[f.user as usize].arenas[h] =
                Some(Genealogy::new(self.host_names[h].as_str()));
        }
        // A remote fork carries a logical-parent edge back to the home
        // host's manager, as in the paper's remote-creation chain.
        let logical = (f.host != f.home)
            .then(|| Gpid::new(self.host_names[f.home as usize].as_str(), home_lpm));
        let shard = &mut self.shards[f.user as usize];
        let arena = shard.arenas[h].as_mut().expect("arena just ensured");
        // A quarter of forks nest under the lane's previous fork while it
        // is still alive (the decision is read off the storm's lifetime
        // stream so it stays replayable); the rest are roots. Keeping the
        // nesting probability below 1/2 bounds expected chain depth, so
        // retained-dead chains cannot grow without bound.
        let last = shard.last_pid[h];
        let nest = last != 0
            && f.lifetime_us.is_multiple_of(4)
            && arena
                .get(last)
                .is_some_and(|n| n.state != WireProcState::Dead);
        let ppid = if nest { last } else { 1 };
        // `track` already writes the command, so the exec transition
        // only needs the state flip — not `set_exec`'s second buffer
        // write.
        arena.track(pid, ppid, logical, Storm::command(f.command), now_us, true);
        arena.set_state(pid, WireProcState::Running);
        shard.last_pid[h] = pid;
        shard.forked += 1;
        if let Some(slot) = &mut shard.lpms[h] {
            slot.forks += 1;
        }
        self.forks += 1;
        self.live += 1;
        self.reg.inc(self.m.forks);
        self.reg.set(self.m.live, self.live as i64);
        if self.live > self.live_peak {
            self.live_peak = self.live;
            self.reg.set_max(self.m.live_peak, self.live as i64);
        }
        self.digest = mix(
            self.digest,
            (u64::from(f.user) << 32) ^ (u64::from(f.host) << 16) ^ u64::from(pid),
        );
        self.digest = mix(self.digest, now_us ^ f.lifetime_us);
        self.engine.schedule(
            SimDuration::from_micros(f.lifetime_us.max(1)),
            StormEvent::Exit {
                user: f.user,
                host: f.host,
                pid,
            },
        );
    }

    /// Applies a scheduled death and, if no sweep is pending for the
    /// arena, schedules one a retention period out.
    fn apply_exit(&mut self, user: u32, host: u16, pid: u32) {
        let now_us = self.engine.now().as_micros();
        let h = host as usize;
        let shard = &mut self.shards[user as usize];
        let arena = shard.arenas[h]
            .as_mut()
            .expect("exit delivered to an arena that forked");
        // Deterministic stand-in for the kernel's final CPU report.
        let cpu_us = u64::from(pid).wrapping_mul(2_654_435_761) % 40_000;
        arena.mark_dead_at(pid, cpu_us, now_us);
        shard.exited += 1;
        self.exits += 1;
        self.live -= 1;
        self.reg.inc(self.m.exits);
        self.reg.set(self.m.live, self.live as i64);
        self.digest = mix(
            self.digest,
            0x99 ^ (u64::from(user) << 32) ^ (u64::from(host) << 16) ^ u64::from(pid),
        );
        if !shard.sweep_pending[h] {
            shard.sweep_pending[h] = true;
            self.engine.schedule(
                SimDuration::from_micros(RETENTION_US + 1),
                StormEvent::Sweep { user, host },
            );
        }
    }

    /// Runs one arena's retention sweep.
    fn apply_sweep(&mut self, user: u32, host: u16) {
        let now_us = self.engine.now().as_micros();
        let h = host as usize;
        let shard = &mut self.shards[user as usize];
        shard.sweep_pending[h] = false;
        let Some(arena) = shard.arenas[h].as_mut() else {
            return;
        };
        let n = arena.prune_older_than(now_us, RETENTION_US) as u64;
        self.pruned += n;
        self.reg.inc(self.m.sweeps);
        self.reg.add(self.m.pruned, n);
    }

    /// Total tracked processes across every shard (live plus
    /// retained-dead).
    pub fn tracked_total(&self) -> u64 {
        self.shards.iter().map(|s| s.tracked_total() as u64).sum()
    }

    /// Drives the storm to its fork target and drains every scheduled
    /// exit and sweep, returning the run's report. Idempotent: a second
    /// call finds the engine drained and recomputes the same report.
    pub fn run(&mut self) -> ScaleReport {
        if self.target > 0 && self.forks == 0 {
            self.engine
                .schedule(SimDuration::from_micros(0), StormEvent::Fork);
        }
        while let Some((_at, ev)) = self.engine.pop() {
            match ev {
                StormEvent::Fork => {
                    let f = self.storm.next_fork();
                    self.apply_fork(f);
                    if self.forks < self.target {
                        self.engine
                            .schedule(SimDuration::from_micros(f.next_us), StormEvent::Fork);
                    }
                    // Sampled rather than per-fork: the tracked total is
                    // an O(shards × hosts) scan.
                    if self.forks.is_multiple_of(4096) {
                        let tracked = self.tracked_total();
                        if tracked > self.tracked_peak {
                            self.tracked_peak = tracked;
                            self.reg.set_max(self.m.tracked_peak, tracked as i64);
                        }
                    }
                }
                StormEvent::Exit { user, host, pid } => self.apply_exit(user, host, pid),
                StormEvent::Sweep { user, host } => self.apply_sweep(user, host),
            }
        }
        let tracked_end = self.tracked_total();
        if tracked_end > self.tracked_peak {
            self.tracked_peak = tracked_end;
        }
        ScaleReport {
            users: self.spec.users,
            hosts: self.spec.hosts,
            seed: self.spec.seed,
            procs: self.forks,
            exits: self.exits,
            remote_forks: self.remote_forks,
            lpm_spawns: self.lpm_spawns,
            pruned: self.pruned,
            tracked_end,
            live_peak: self.live_peak,
            tracked_peak: self.tracked_peak,
            sim_end_us: self.engine.now().as_micros(),
            digest: self.digest,
        }
    }
}

/// The deterministic summary of one scale run: same spec, same report,
/// byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleReport {
    /// Users driven.
    pub users: u32,
    /// Hosts in the world.
    pub hosts: u16,
    /// Storm seed.
    pub seed: u64,
    /// Forks applied (the run target).
    pub procs: u64,
    /// Exits applied (equals `procs` after a full drain).
    pub exits: u64,
    /// Forks that landed away from the user's home host.
    pub remote_forks: u64,
    /// LPM slots registered across all (user, host) pairs.
    pub lpm_spawns: u64,
    /// Nodes dropped by retention sweeps.
    pub pruned: u64,
    /// Nodes still tracked when the run drained (retained-dead).
    pub tracked_end: u64,
    /// Peak concurrent live processes.
    pub live_peak: u64,
    /// Peak tracked processes (live + retained-dead, sampled).
    pub tracked_peak: u64,
    /// Simulated instant the last event ran, µs.
    pub sim_end_us: u64,
    /// FNV-1a fold of every fork, exit and LPM registration.
    pub digest: u64,
}

impl ScaleReport {
    /// Renders the report as deterministic text, one `key value` line
    /// each — the surface the run-twice determinism gate diffs.
    pub fn render(&self) -> String {
        format!(
            "scale users {u}\n\
             scale hosts {h}\n\
             scale seed {s}\n\
             scale procs {p}\n\
             scale exits {e}\n\
             scale remote_forks {r}\n\
             scale lpm_spawns {l}\n\
             scale pruned {pr}\n\
             scale tracked_end {te}\n\
             scale live_peak {lp}\n\
             scale tracked_peak {tp}\n\
             scale sim_end_us {us}\n\
             scale digest {d:016x}\n",
            u = self.users,
            h = self.hosts,
            s = self.seed,
            p = self.procs,
            e = self.exits,
            r = self.remote_forks,
            l = self.lpm_spawns,
            pr = self.pruned,
            te = self.tracked_end,
            lp = self.live_peak,
            tp = self.tracked_peak,
            us = self.sim_end_us,
            d = self.digest,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_simnet::obs::MetricValue;

    fn run_world(users: u32, hosts: u16, seed: u64, procs: u64) -> (ScaleReport, TenantWorld) {
        let mut world = TenantWorld::new(StormSpec::new(users, hosts, seed), procs);
        let report = world.run();
        (report, world)
    }

    #[test]
    fn scale_runs_are_deterministic() {
        let a = TenantWorld::new(StormSpec::new(50, 5, 42), 5_000).run();
        let b = TenantWorld::new(StormSpec::new(50, 5, 42), 5_000).run();
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        let c = TenantWorld::new(StormSpec::new(50, 5, 43), 5_000).run();
        assert_ne!(a.digest, c.digest, "seed changes the run");
    }

    #[test]
    fn storm_drains_and_prunes() {
        let (report, world) = run_world(20, 3, 7, 4_000);
        assert_eq!(report.procs, 4_000);
        assert_eq!(report.exits, 4_000, "every fork exits");
        assert_eq!(
            world.shards.iter().map(|s| s.live_total()).sum::<usize>(),
            0,
            "nothing live after the drain"
        );
        assert!(report.pruned > 0, "retention sweeps collected dead nodes");
        assert!(
            report.tracked_end < report.procs / 4,
            "retained-dead stays far below the cumulative count \
             ({} of {})",
            report.tracked_end,
            report.procs
        );
        assert!(report.live_peak > 0);
        // The registry agrees with the report.
        let snap = world.metrics().snapshot();
        let counter = |name: &str| {
            snap.iter()
                .find(|s| s.name == name)
                .map(|s| match &s.value {
                    MetricValue::Counter(v) => *v,
                    other => panic!("{name} is {other:?}"),
                })
                .unwrap()
        };
        assert_eq!(counter("tenant.forks"), report.procs);
        assert_eq!(counter("tenant.exits"), report.exits);
        assert_eq!(counter("tenant.pruned"), report.pruned);
    }

    #[test]
    fn shards_never_share_processes() {
        let (report, world) = run_world(16, 4, 9, 3_000);
        // (host, pid) identities are globally unique, so any overlap
        // between two shards' snapshots would be a leak.
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        for shard in world.shards() {
            for rec in shard.snapshot() {
                assert!(
                    seen.insert((rec.gpid.host.clone(), rec.gpid.pid)),
                    "{} appears in more than one user's shard",
                    rec.gpid
                );
                total += 1;
            }
        }
        assert_eq!(total as u64, report.tracked_end);
        // Per-shard accounting sums to the world's.
        assert_eq!(
            world.shards().iter().map(|s| s.forked).sum::<u64>(),
            report.procs
        );
        assert_eq!(
            world.shards().iter().map(|s| s.exited).sum::<u64>(),
            report.exits
        );
    }

    #[test]
    fn lpm_slots_register_once_per_user_host() {
        let (report, world) = run_world(12, 4, 11, 2_000);
        let mut slots = 0u64;
        for shard in world.shards() {
            for h in shard.lpm_hosts() {
                let slot = shard.lpm(h).unwrap();
                assert_eq!(slot.port, lpm_port(shard.uid()), "well-known per-user port");
                slots += 1;
            }
            // The home host is always registered for an active user.
            if shard.forked > 0 {
                let home = (shard.uid().0 - UID_BASE) % u32::from(world.spec().hosts);
                assert!(shard.lpm(home as u16).is_some());
            }
        }
        assert_eq!(slots, report.lpm_spawns, "slots registered exactly once");
    }

    #[test]
    fn zipf_storm_skews_work_toward_low_ranks() {
        let (_, world) = run_world(30, 2, 13, 6_000);
        let first = world.shard(0).forked;
        let last = world.shard(29).forked;
        assert!(
            first > last * 3,
            "rank 0 ({first}) should dominate rank 29 ({last})"
        );
    }
}
