//! Integration tests of the simulated OS substrate: stream semantics,
//! failure propagation, signal dispositions, adoption inheritance, and
//! deterministic replay.

use bytes::Bytes;
use ppm_runtime::sys::Sys;
use ppm_simnet::time::{SimDuration, SimTime};
use ppm_simnet::topology::{CpuClass, HostSpec};
use ppm_simos::events::{KernelEvent, TraceFlags};
use ppm_simos::ids::{ConnId, Pid, Port, Uid};
use ppm_simos::process::ProcState;
use ppm_simos::program::{ConnEvent, KernelMsg, Program, SpawnSpec, SysError};
use ppm_simos::signal::{ExitStatus, Signal};
use ppm_simos::workload::{Chatter, EchoServer};
use ppm_simos::world::World;

use std::sync::{Arc, Mutex};

fn two_hosts(
    seed: u64,
) -> (
    World,
    ppm_simnet::topology::HostId,
    ppm_simnet::topology::HostId,
) {
    let mut w = World::new(seed);
    let a = w.add_host(HostSpec::new("a", CpuClass::Vax780));
    let b = w.add_host(HostSpec::new("b", CpuClass::Vax750));
    w.add_link(a, b);
    (w, a, b)
}

/// Client that records everything that happens to its connection.
struct Recorder {
    target: ppm_simnet::topology::HostId,
    port: Port,
    log: Arc<Mutex<Vec<String>>>,
    send_burst: usize,
}

impl Program for Recorder {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        let conn = sys.connect(self.target, self.port).expect("connect starts");
        self.log.lock().unwrap().push(format!("connecting {conn}"));
    }
    fn on_conn_event(&mut self, sys: &mut dyn Sys, _conn: ConnId, ev: ConnEvent) {
        self.log.lock().unwrap().push(format!("event {ev:?}"));
        if matches!(ev, ConnEvent::Established) {
            for i in 0..self.send_burst {
                let _ = sys.send(_conn, Bytes::from(vec![i as u8; 16]));
            }
        }
    }
    fn on_message(&mut self, _sys: &mut dyn Sys, _conn: ConnId, data: Bytes) {
        self.log.lock().unwrap().push(format!("msg {}", data[0]));
    }
    fn name(&self) -> &str {
        "recorder"
    }
}

#[test]
fn stream_messages_arrive_in_order() {
    let (mut w, a, b) = two_hosts(1);
    w.spawn_user(
        b,
        Uid(1),
        SpawnSpec::new("echod", Box::new(EchoServer { port: Port(9) })),
    )
    .unwrap();
    w.run_for(SimDuration::from_millis(200));
    let log = Arc::new(Mutex::new(Vec::new()));
    w.spawn_user(
        a,
        Uid(1),
        SpawnSpec::new(
            "rec",
            Box::new(Recorder {
                target: b,
                port: Port(9),
                log: Arc::clone(&log),
                send_burst: 10,
            }),
        ),
    )
    .unwrap();
    w.run_for(SimDuration::from_secs(3));
    let msgs: Vec<String> = log
        .lock()
        .unwrap()
        .iter()
        .filter(|l| l.starts_with("msg"))
        .cloned()
        .collect();
    assert_eq!(msgs.len(), 10, "{log:?}");
    for (i, m) in msgs.iter().enumerate() {
        assert_eq!(m, &format!("msg {i}"), "FIFO preserved");
    }
}

#[test]
fn connect_to_missing_listener_is_refused() {
    let (mut w, a, b) = two_hosts(2);
    let log = Arc::new(Mutex::new(Vec::new()));
    w.spawn_user(
        a,
        Uid(1),
        SpawnSpec::new(
            "rec",
            Box::new(Recorder {
                target: b,
                port: Port(77),
                log: Arc::clone(&log),
                send_burst: 0,
            }),
        ),
    )
    .unwrap();
    w.run_for(SimDuration::from_secs(2));
    assert!(
        log.lock()
            .unwrap()
            .iter()
            .any(|l| l.contains("Failed(ConnectionRefused)")),
        "{log:?}"
    );
}

#[test]
fn connect_to_crashed_host_fails_with_host_down() {
    let (mut w, a, b) = two_hosts(3);
    w.schedule_crash(b, SimDuration::from_millis(1));
    w.run_for(SimDuration::from_millis(50));
    let log = Arc::new(Mutex::new(Vec::new()));
    w.spawn_user(
        a,
        Uid(1),
        SpawnSpec::new(
            "rec",
            Box::new(Recorder {
                target: b,
                port: Port(9),
                log: Arc::clone(&log),
                send_burst: 0,
            }),
        ),
    )
    .unwrap();
    w.run_for(SimDuration::from_secs(3));
    assert!(
        log.lock()
            .unwrap()
            .iter()
            .any(|l| l.contains("Failed(HostDown)")),
        "{log:?}"
    );
}

#[test]
fn peer_exit_closes_the_connection() {
    let (mut w, a, b) = two_hosts(4);
    let server = w
        .spawn_user(
            b,
            Uid(1),
            SpawnSpec::new("echod", Box::new(EchoServer { port: Port(9) })),
        )
        .unwrap();
    w.run_for(SimDuration::from_millis(200));
    let log = Arc::new(Mutex::new(Vec::new()));
    w.spawn_user(
        a,
        Uid(1),
        SpawnSpec::new(
            "rec",
            Box::new(Recorder {
                target: b,
                port: Port(9),
                log: Arc::clone(&log),
                send_burst: 0,
            }),
        ),
    )
    .unwrap();
    w.run_for(SimDuration::from_millis(500));
    w.post_signal(Uid(1), (b, server), Signal::Kill).unwrap();
    w.run_for(SimDuration::from_secs(1));
    assert!(
        log.lock()
            .unwrap()
            .iter()
            .any(|l| l.contains("event Closed")),
        "{log:?}"
    );
}

#[test]
fn partition_breaks_connections_on_send() {
    let (mut w, a, b) = two_hosts(5);
    w.spawn_user(
        b,
        Uid(1),
        SpawnSpec::new("echod", Box::new(EchoServer { port: Port(9) })),
    )
    .unwrap();
    w.run_for(SimDuration::from_millis(300));
    // Chatter with many rounds: the partition cuts it mid-conversation.
    let c = w
        .spawn_user(
            a,
            Uid(1),
            SpawnSpec::new("chat", Box::new(Chatter::new(b, Port(9), 64, 1000))),
        )
        .unwrap();
    w.schedule_link(a, b, false, SimDuration::from_millis(500));
    w.run_for(SimDuration::from_secs(5));
    let p = w.core().kernel(a).get(c).unwrap();
    assert_eq!(
        p.state,
        ProcState::Exited(ExitStatus::Code(1)),
        "chatter saw the break and exited with an error"
    );
    assert!(p.rusage.msgs_sent < 1000, "conversation was cut short");
}

#[test]
fn catchable_signal_default_kills_inert_processes() {
    let (mut w, a, _) = two_hosts(6);
    let pid = w.spawn_user(a, Uid(1), SpawnSpec::inert("victim")).unwrap();
    w.run_for(SimDuration::from_millis(200));
    w.post_signal(Uid(1), (a, pid), Signal::Term).unwrap();
    w.run_for(SimDuration::from_millis(100));
    assert_eq!(
        w.core().kernel(a).get(pid).unwrap().state,
        ProcState::Exited(ExitStatus::Signaled(Signal::Term))
    );
}

#[test]
fn usr_signals_do_not_kill() {
    let (mut w, a, _) = two_hosts(7);
    let pid = w.spawn_user(a, Uid(1), SpawnSpec::inert("victim")).unwrap();
    w.run_for(SimDuration::from_millis(200));
    w.post_signal(Uid(1), (a, pid), Signal::Usr1).unwrap();
    w.post_signal(Uid(1), (a, pid), Signal::Usr2).unwrap();
    w.run_for(SimDuration::from_millis(100));
    let p = w.core().kernel(a).get(pid).unwrap();
    assert!(p.is_alive());
    assert_eq!(p.rusage.signals_received, 2);
}

/// Program that spawns a child after a delay; used to test trace-flag
/// inheritance (adoption happens before the fork).
struct Forker;
impl Program for Forker {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        sys.set_timer(SimDuration::from_secs(1), 0);
    }
    fn on_timer(&mut self, sys: &mut dyn Sys, _token: u64) {
        sys.spawn(SpawnSpec::inert("child")).unwrap();
    }
    fn name(&self) -> &str {
        "forker"
    }
}

/// Tracer that records kernel events and their delivery latencies.
struct Tracer {
    target: Pid,
    events: Arc<Mutex<Vec<String>>>,
}
impl Program for Tracer {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        sys.register_kernel_socket();
        sys.adopt(self.target, TraceFlags::PROC).unwrap();
    }
    fn on_kernel_event(&mut self, _sys: &mut dyn Sys, msg: KernelMsg) {
        self.events
            .lock()
            .unwrap()
            .push(msg.event.kind().to_string());
    }
    fn on_kernel_batch(&mut self, sys: &mut dyn Sys, data: bytes::Bytes) {
        ppm_proto::kernel_wire::for_each_kernel_msg(&data, |m| self.on_kernel_event(sys, m));
    }
    fn name(&self) -> &str {
        "tracer"
    }
}

/// Tracer variant that records delivery latency in microseconds.
struct LatencyTracer {
    target: Pid,
    latencies: Arc<Mutex<Vec<u64>>>,
}
impl Program for LatencyTracer {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        sys.register_kernel_socket();
        sys.adopt(self.target, TraceFlags::PROC).unwrap();
    }
    fn on_kernel_event(&mut self, sys: &mut dyn Sys, msg: KernelMsg) {
        let lat = sys.now().saturating_since(msg.queued_at).as_micros();
        self.latencies.lock().unwrap().push(lat);
    }
    fn on_kernel_batch(&mut self, sys: &mut dyn Sys, data: bytes::Bytes) {
        ppm_proto::kernel_wire::for_each_kernel_msg(&data, |m| self.on_kernel_event(sys, m));
    }
    fn name(&self) -> &str {
        "lat-tracer"
    }
}

#[test]
fn trace_flags_are_inherited_by_descendants() {
    let (mut w, a, _) = two_hosts(8);
    // The forker delays its fork by 1 s, so the tracer's adoption is in
    // place before the child exists.
    let forker = w
        .spawn_user(a, Uid(1), SpawnSpec::new("forker", Box::new(Forker)))
        .unwrap();
    let events = Arc::new(Mutex::new(Vec::new()));
    w.spawn_user(
        a,
        Uid(1),
        SpawnSpec::new(
            "tracer",
            Box::new(Tracer {
                target: forker,
                events: Arc::clone(&events),
            }),
        ),
    )
    .unwrap();
    w.run_for(SimDuration::from_secs(3));
    let evs = events.lock().unwrap().clone();
    assert!(evs.contains(&"fork".to_string()), "fork reported: {evs:?}");
    assert!(
        evs.contains(&"exec".to_string()),
        "the child inherited tracing, so its exec is reported too: {evs:?}"
    );
    // Kill the child: its exit is reported as well.
    let child = w
        .core()
        .kernel(a)
        .processes()
        .find(|p| p.command == "child")
        .map(|p| p.pid)
        .expect("child exists");
    w.post_signal(Uid(1), (a, child), Signal::Kill).unwrap();
    w.run_for(SimDuration::from_secs(1));
    assert!(
        events.lock().unwrap().contains(&"exit".to_string()),
        "{events:?}"
    );
}

#[test]
fn kernel_event_latency_grows_with_load() {
    // The Table 1 mechanism at the substrate level.
    let measure = |spinners: usize| -> f64 {
        let mut w = World::new(9);
        let h = w.add_host(HostSpec::new("x", CpuClass::Sun2));
        for _ in 0..spinners {
            w.spawn_user(h, Uid(2), SpawnSpec::inert("spin").cpu_bound(true))
                .unwrap();
        }
        w.run_for(SimDuration::from_secs(300));
        let victim = w.spawn_user(h, Uid(1), SpawnSpec::inert("victim")).unwrap();
        let latencies = Arc::new(Mutex::new(Vec::new()));
        let t = LatencyTracer {
            target: victim,
            latencies: Arc::clone(&latencies),
        };
        w.spawn_user(h, Uid(1), SpawnSpec::new("tracer", Box::new(t)))
            .unwrap();
        w.run_for(SimDuration::from_secs(1));
        w.post_signal(Uid(1), (h, victim), Signal::Kill).unwrap();
        w.run_for(SimDuration::from_secs(1));
        let l = latencies.lock().unwrap();
        assert!(!l.is_empty(), "exit event delivered");
        l.iter().sum::<u64>() as f64 / l.len() as f64 / 1000.0
    };
    let idle = measure(0);
    let loaded = measure(3);
    assert!(loaded > idle * 1.5, "idle {idle:.1}ms loaded {loaded:.1}ms");
}

#[test]
fn identical_seeds_replay_identically() {
    let run = |seed: u64| -> (u64, SimTime) {
        let (mut w, a, b) = two_hosts(seed);
        w.spawn_user(
            b,
            Uid(1),
            SpawnSpec::new("echod", Box::new(EchoServer { port: Port(9) })),
        )
        .unwrap();
        w.run_for(SimDuration::from_millis(300));
        w.spawn_user(
            a,
            Uid(1),
            SpawnSpec::new("chat", Box::new(Chatter::new(b, Port(9), 64, 25))),
        )
        .unwrap();
        w.run_for(SimDuration::from_secs(10));
        let events = w.core().trace().entries().len() as u64;
        (events, w.now())
    };
    let (e1, _) = run(12345);
    let (e2, _) = run(12345);
    assert_eq!(e1, e2, "same seed, same event history");
}

#[test]
fn cross_user_kill_is_refused_at_the_kernel() {
    let (mut w, a, _) = two_hosts(10);
    let pid = w.spawn_user(a, Uid(1), SpawnSpec::inert("mine")).unwrap();
    w.run_for(SimDuration::from_millis(200));
    assert_eq!(
        w.post_signal(Uid(2), (a, pid), Signal::Kill),
        Err(SysError::PermissionDenied)
    );
}

#[test]
fn exit_event_carries_final_rusage() {
    let (mut w, a, _) = two_hosts(11);
    let victim = w.spawn_user(a, Uid(1), SpawnSpec::inert("v")).unwrap();
    struct ExitWatch {
        target: Pid,
        cpu: Arc<Mutex<Vec<u64>>>,
    }
    impl Program for ExitWatch {
        fn on_start(&mut self, sys: &mut dyn Sys) {
            sys.register_kernel_socket();
            sys.adopt(self.target, TraceFlags::PROC).unwrap();
        }
        fn on_kernel_event(&mut self, _sys: &mut dyn Sys, msg: KernelMsg) {
            if let KernelEvent::Exit { rusage, .. } = msg.event {
                self.cpu.lock().unwrap().push(rusage.cpu.as_micros());
            }
        }
        fn on_kernel_batch(&mut self, sys: &mut dyn Sys, data: bytes::Bytes) {
            ppm_proto::kernel_wire::for_each_kernel_msg(&data, |m| self.on_kernel_event(sys, m));
        }
        fn name(&self) -> &str {
            "exitwatch"
        }
    }
    let cpu = Arc::new(Mutex::new(Vec::new()));
    w.spawn_user(
        a,
        Uid(1),
        SpawnSpec::new(
            "watch",
            Box::new(ExitWatch {
                target: victim,
                cpu: Arc::clone(&cpu),
            }),
        ),
    )
    .unwrap();
    w.run_for(SimDuration::from_secs(1));
    w.post_signal(Uid(1), (a, victim), Signal::Kill).unwrap();
    w.run_for(SimDuration::from_secs(1));
    assert_eq!(cpu.lock().unwrap().len(), 1, "exactly one exit report");
}

/// Counts messages as they are handled, optionally burning CPU per
/// message (to test busy-queueing).
struct CountingServer {
    port: Port,
    handled: Arc<Mutex<Vec<u8>>>,
    work_per_msg: SimDuration,
}

impl Program for CountingServer {
    fn on_start(&mut self, sys: &mut dyn Sys) {
        sys.listen(self.port).unwrap();
    }
    fn on_message(&mut self, sys: &mut dyn Sys, _conn: ConnId, data: Bytes) {
        self.handled.lock().unwrap().push(data[0]);
        if !self.work_per_msg.is_zero() {
            sys.consume_cpu(self.work_per_msg);
        }
    }
    fn name(&self) -> &str {
        "countd"
    }
}

#[test]
fn events_to_stopped_processes_are_deferred_until_continue() {
    let (mut w, a, b) = two_hosts(20);
    let handled = Arc::new(Mutex::new(Vec::new()));
    let server = w
        .spawn_user(
            b,
            Uid(1),
            SpawnSpec::new(
                "countd",
                Box::new(CountingServer {
                    port: Port(9),
                    handled: Arc::clone(&handled),
                    work_per_msg: SimDuration::ZERO,
                }),
            ),
        )
        .unwrap();
    w.run_for(SimDuration::from_millis(300));

    // Stop the server, then stream messages at it.
    w.post_signal(Uid(1), (b, server), Signal::Stop).unwrap();
    w.run_for(SimDuration::from_millis(100));
    let log = Arc::new(Mutex::new(Vec::new()));
    w.spawn_user(
        a,
        Uid(1),
        SpawnSpec::new(
            "rec",
            Box::new(Recorder {
                target: b,
                port: Port(9),
                log,
                send_burst: 5,
            }),
        ),
    )
    .unwrap();
    w.run_for(SimDuration::from_secs(2));
    assert!(
        handled.lock().unwrap().is_empty(),
        "stopped process handles nothing"
    );

    // Continue: the queued messages are handled, in order.
    w.post_signal(Uid(1), (b, server), Signal::Cont).unwrap();
    w.run_for(SimDuration::from_secs(1));
    assert_eq!(*handled.lock().unwrap(), vec![0, 1, 2, 3, 4]);
}

#[test]
fn busy_processes_queue_events_behind_their_work() {
    let (mut w, a, b) = two_hosts(21);
    let handled = Arc::new(Mutex::new(Vec::new()));
    w.spawn_user(
        b,
        Uid(1),
        SpawnSpec::new(
            "countd",
            Box::new(CountingServer {
                port: Port(9),
                handled: Arc::clone(&handled),
                // Each message costs 100 ms of CPU: a burst serializes.
                work_per_msg: SimDuration::from_millis(100),
            }),
        ),
    )
    .unwrap();
    w.run_for(SimDuration::from_millis(300));
    let log = Arc::new(Mutex::new(Vec::new()));
    w.spawn_user(
        a,
        Uid(1),
        SpawnSpec::new(
            "rec",
            Box::new(Recorder {
                target: b,
                port: Port(9),
                log,
                send_burst: 4,
            }),
        ),
    )
    .unwrap();
    // The burst arrives ~355 ms in (spawn + connect + wire); each message
    // costs 100 ms of CPU, so by 600 ms at most three are handled.
    w.run_for(SimDuration::from_millis(300));
    let n_early = handled.lock().unwrap().len();
    assert!(
        (1..4).contains(&n_early),
        "burst serialized: {n_early} handled early"
    );
    w.run_for(SimDuration::from_secs(2));
    assert_eq!(
        *handled.lock().unwrap(),
        vec![0, 1, 2, 3],
        "all handled, in order"
    );
}

#[test]
fn deferred_deliveries_are_accounted_exactly_once() {
    // Regression: a message redelivered after busy-deferral must not
    // inflate msgs_received or duplicate the IPC kernel event.
    let (mut w, a, b) = two_hosts(22);
    let handled = Arc::new(Mutex::new(Vec::new()));
    let server = w
        .spawn_user(
            b,
            Uid(1),
            SpawnSpec::new(
                "countd",
                Box::new(CountingServer {
                    port: Port(9),
                    handled: Arc::clone(&handled),
                    work_per_msg: SimDuration::from_millis(100),
                }),
            ),
        )
        .unwrap();
    w.run_for(SimDuration::from_millis(300));
    let log = Arc::new(Mutex::new(Vec::new()));
    w.spawn_user(
        a,
        Uid(1),
        SpawnSpec::new(
            "rec",
            Box::new(Recorder {
                target: b,
                port: Port(9),
                log,
                send_burst: 4,
            }),
        ),
    )
    .unwrap();
    w.run_for(SimDuration::from_secs(3));
    assert_eq!(handled.lock().unwrap().len(), 4);
    let p = w.core().kernel(b).get(server).unwrap();
    assert_eq!(
        p.rusage.msgs_received, 4,
        "each message accounted exactly once"
    );
    assert_eq!(p.rusage.bytes_received, 4 * 16);
}
