//! Property tests for the simulated kernel: process-table invariants
//! under random operation sequences, and world-level determinism.

use proptest::prelude::*;

use ppm_simnet::time::{SimDuration, SimTime};
use ppm_simnet::topology::{CpuClass, HostSpec};
use ppm_simos::ids::{Pid, Uid};
use ppm_simos::kernel::Kernel;
use ppm_simos::process::{ProcState, Process};
use ppm_simos::program::SpawnSpec;
use ppm_simos::signal::{ExitStatus, Signal};
use ppm_simos::world::World;

#[derive(Debug, Clone)]
enum KernOp {
    Spawn {
        parent_idx: usize,
        uid: u32,
    },
    Exit {
        idx: usize,
    },
    Adopt {
        target_idx: usize,
        tracer_idx: usize,
    },
}

fn arb_kern_ops() -> impl Strategy<Value = Vec<KernOp>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..30, 0u32..3).prop_map(|(parent_idx, uid)| KernOp::Spawn { parent_idx, uid }),
            (0usize..30).prop_map(|idx| KernOp::Exit { idx }),
            (0usize..30, 0usize..30).prop_map(|(target_idx, tracer_idx)| KernOp::Adopt {
                target_idx,
                tracer_idx
            }),
        ],
        1..80,
    )
}

proptest! {
    /// Process-table invariants hold under any spawn/exit/adopt sequence:
    /// parent-child links are mutual, live children have live entries,
    /// exited processes never re-enter the run queue, and adoption never
    /// crosses users.
    #[test]
    fn kernel_table_invariants(ops in arb_kern_ops()) {
        let now = SimTime::ZERO;
        let mut k = Kernel::new(now);
        let mut pids: Vec<Pid> = Vec::new();
        for op in ops {
            match op {
                KernOp::Spawn { parent_idx, uid } => {
                    let ppid = pids
                        .get(parent_idx % pids.len().max(1))
                        .copied()
                        .filter(|p| k.get(*p).is_some_and(|e| e.is_alive()))
                        .unwrap_or(Pid::INIT);
                    let pid = k.alloc_pid();
                    let mut proc = Process::new(pid, ppid, Uid(uid), "p", now);
                    proc.state = ProcState::Running;
                    k.insert(proc);
                    pids.push(pid);
                }
                KernOp::Exit { idx } => {
                    if let Some(&pid) = pids.get(idx % pids.len().max(1)) {
                        if k.get(pid).is_some_and(|e| e.is_alive()) {
                            k.finish_exit(pid, ExitStatus::SUCCESS, now);
                        }
                    }
                }
                KernOp::Adopt { target_idx, tracer_idx } => {
                    let (Some(&t), Some(&tr)) = (
                        pids.get(target_idx % pids.len().max(1)),
                        pids.get(tracer_idx % pids.len().max(1)),
                    ) else {
                        continue;
                    };
                    let tracer_uid = k.get(tr).map(|e| e.uid).unwrap_or(Uid(0));
                    let res = k.adopt(t, tr, tracer_uid, ppm_simos::events::TraceFlags::ALL);
                    if let Ok(()) = res {
                        // Same-user or root only.
                        let target_uid = k.get(t).expect("adopted").uid;
                        prop_assert!(
                            tracer_uid == target_uid || tracer_uid.is_root(),
                            "cross-user adoption slipped through"
                        );
                    }
                }
            }
            // Invariants after every op.
            for p in k.processes() {
                for &c in &p.children {
                    let child = k.get(c);
                    prop_assert!(child.is_some(), "dangling child {c}");
                    let child = child.expect("checked");
                    prop_assert!(child.is_alive(), "dead child {c} still linked");
                    prop_assert_eq!(child.ppid, p.pid, "ppid backlink broken");
                }
                if !p.is_alive() {
                    prop_assert!(!p.cpu_bound, "exited process on the run queue");
                    prop_assert!(p.exited_at.is_some());
                }
            }
        }
        // Runnable count never exceeds live processes.
        let live = k.processes().filter(|p| p.is_alive()).count();
        prop_assert!(k.runnable_count(now) <= live);
    }

    /// World determinism: identical seeds and identical scripted worlds
    /// produce identical trace lengths and clocks; different seeds are
    /// allowed to differ.
    #[test]
    fn world_replay_is_exact(seed in any::<u64>(), jobs in 1usize..6) {
        let run = |seed: u64| {
            let mut w = World::new(seed);
            let a = w.add_host(HostSpec::new("a", CpuClass::Vax780));
            let b = w.add_host(HostSpec::new("b", CpuClass::Sun2));
            w.add_link(a, b);
            for i in 0..jobs {
                let host = if i % 2 == 0 { a } else { b };
                w.spawn_user(host, Uid(1), SpawnSpec::inert(format!("j{i}"))).expect("spawn");
            }
            w.run_for(SimDuration::from_secs(5));
            (
                w.core().trace().entries().len(),
                w.now(),
                w.core().kernel(a).processes().count(),
            )
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Signal permission: a non-root user can never signal another user's
    /// process, for any signal.
    #[test]
    fn cross_user_signals_always_denied(signal_no in 0u8..32, other_uid in 2u32..100) {
        let Some(signal) = Signal::from_number(signal_no) else {
            return Ok(());
        };
        let mut w = World::new(1);
        let a = w.add_host(HostSpec::new("a", CpuClass::Vax780));
        let pid = w.spawn_user(a, Uid(1), SpawnSpec::inert("mine")).expect("spawn");
        w.run_for(SimDuration::from_millis(200));
        let res = w.post_signal(Uid(other_uid), (a, pid), signal);
        prop_assert!(res.is_err());
        prop_assert!(w.core().is_alive((a, pid)));
    }
}
