//! Behavioural tests for the stock workload programs, run in a sim world.
//!
//! The programs themselves live in `ppm_runtime::workload` (they are
//! backend-agnostic actors); these tests exercise them under the
//! simulated kernel and network.

use ppm_runtime::ids::{Port, Uid};
use ppm_runtime::process::ProcState;
use ppm_runtime::program::SpawnSpec;
use ppm_runtime::signal::ExitStatus;
use ppm_runtime::time::SimDuration;
use ppm_runtime::workload::{Chatter, DutyCycle, EchoServer, TreeSpawner, Worker};
use ppm_simnet::topology::{CpuClass, HostId, HostSpec};
use ppm_simos::world::World;

fn world() -> (World, HostId, HostId) {
    let mut w = World::new(99);
    let a = w.add_host(HostSpec::new("a", CpuClass::Vax780));
    let b = w.add_host(HostSpec::new("b", CpuClass::Vax750));
    w.add_link(a, b);
    (w, a, b)
}

#[test]
fn duty_cycle_pins_load_average() {
    let (mut w, a, _) = world();
    for _ in 0..3 {
        w.spawn_user(
            a,
            Uid(1),
            SpawnSpec::new(
                "spin",
                Box::new(DutyCycle::new(0.5, SimDuration::from_millis(200))),
            ),
        )
        .unwrap();
    }
    w.run_for(SimDuration::from_secs(400));
    let la = w.core().kernel(a).load_avg();
    assert!(
        (1.2..1.8).contains(&la),
        "3 half-duty spinners ≈ 1.5, got {la}"
    );
}

#[test]
fn worker_consumes_cpu_and_exits() {
    let (mut w, a, _) = world();
    let pid = w
        .spawn_user(
            a,
            Uid(1),
            SpawnSpec::new(
                "job",
                Box::new(Worker::new(
                    SimDuration::from_millis(500),
                    SimDuration::from_millis(40),
                )),
            ),
        )
        .unwrap();
    w.run_for(SimDuration::from_secs(2));
    let p = w.core().kernel(a).get(pid).unwrap();
    assert!(matches!(p.state, ProcState::Exited(_)));
    assert!(p.rusage.cpu >= SimDuration::from_millis(30));
}

#[test]
fn tree_spawner_builds_full_tree() {
    let (mut w, a, _) = world();
    let spec = TreeSpawner::new(2, 2, SimDuration::from_secs(30));
    assert_eq!(spec.total_nodes(), 7);
    let root = w
        .spawn_user(a, Uid(1), SpawnSpec::new("tree-root", Box::new(spec)))
        .unwrap();
    w.run_for(SimDuration::from_secs(5));
    let kern = w.core().kernel(a);
    let mine = kern.user_processes(Uid(1));
    assert_eq!(mine.len(), 7, "root + 2 + 4 nodes alive");
    // Genealogy: root has exactly two children.
    assert_eq!(kern.get(root).unwrap().children.len(), 2);
}

#[test]
fn chatter_and_echo_exchange_messages() {
    let (mut w, a, b) = world();
    w.spawn_user(
        b,
        Uid(1),
        SpawnSpec::new("echod", Box::new(EchoServer { port: Port(40) })),
    )
    .unwrap();
    w.run_for(SimDuration::from_millis(300));
    let c = w
        .spawn_user(
            a,
            Uid(1),
            SpawnSpec::new("chat", Box::new(Chatter::new(b, Port(40), 100, 5))),
        )
        .unwrap();
    w.run_for(SimDuration::from_secs(5));
    let p = w.core().kernel(a).get(c).unwrap();
    assert_eq!(p.state, ProcState::Exited(ExitStatus::Code(0)));
    assert_eq!(p.rusage.msgs_sent, 5);
    assert_eq!(p.rusage.msgs_received, 5);
    // Connection stats captured both directions.
    let conn = w.core().connections().next().unwrap();
    assert_eq!(conn.stats.msgs_to_server, 5);
    assert_eq!(conn.stats.msgs_to_client, 5);
}
