//! The syscall surface available to programs.
//!
//! A [`Sys`] is handed to every [`crate::program::Program`] callback. It
//! identifies the calling process and exposes the simulated kernel's
//! system calls — spawn/exit/kill/adopt, stream sockets, timers, files,
//! CPU accounting — plus read-only introspection (`ps`-style queries).

use bytes::Bytes;
use ppm_simnet::engine::EventId;
use ppm_simnet::obs::SpanPhase;
use ppm_simnet::time::{SimDuration, SimTime};
use ppm_simnet::topology::{CpuClass, HostId};
use ppm_simnet::trace::TraceCategory;

use crate::obs::SharedRegistry;

use crate::events::TraceFlags;
use crate::fd::{FdKind, OpenMode};
use crate::ids::{ConnId, Fd, Pid, Port, Uid};
use crate::process::{ProcInfo, Rusage};
use crate::program::{ProcKey, SpawnSpec, SysError};
use crate::signal::{ExitStatus, Signal};
use crate::world::{SimEvent, WorldCore};

/// Handle to a pending timer, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle(EventId);

/// The syscall interface bound to one calling process.
pub struct Sys<'a> {
    core: &'a mut WorldCore,
    key: ProcKey,
}

impl<'a> Sys<'a> {
    pub(crate) fn new(core: &'a mut WorldCore, key: ProcKey) -> Self {
        Sys { core, key }
    }

    // ---- identity and environment --------------------------------------

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now()
    }

    /// The calling process's host.
    pub fn host(&self) -> HostId {
        self.key.0
    }

    /// The calling process's host name.
    pub fn host_name(&self) -> &str {
        self.core.host_name(self.key.0)
    }

    /// The host's CPU class.
    pub fn cpu_class(&self) -> CpuClass {
        self.core.topology().spec(self.key.0).cpu
    }

    /// The calling process's pid.
    pub fn pid(&self) -> Pid {
        self.key.1
    }

    /// The calling process's uid.
    pub fn uid(&self) -> Uid {
        self.core
            .kernel(self.key.0)
            .get(self.key.1)
            .map(|p| p.uid)
            .unwrap_or(Uid::ROOT)
    }

    /// The host's current load average (`uptime`).
    pub fn load_avg(&self) -> f64 {
        self.core.kernel(self.key.0).load_avg()
    }

    /// Resolves a host name to an id (the simulated name service).
    ///
    /// # Errors
    ///
    /// [`SysError::NoSuchHost`] when the name is unknown.
    pub fn resolve_host(&self, name: &str) -> Result<HostId, SysError> {
        self.core.host_by_name(name).ok_or(SysError::NoSuchHost)
    }

    /// All host names in the network (the simulated `/etc/hosts`).
    pub fn known_hosts(&self) -> Vec<String> {
        self.core
            .topology()
            .host_ids()
            .map(|h| self.core.host_name(h).to_string())
            .collect()
    }

    /// Records a trace entry attributed to this host.
    pub fn trace(&mut self, category: TraceCategory, text: impl Into<String>) {
        let host = self.key.0;
        self.core.tracef(Some(host), category, text.into());
    }

    /// Whether span recording is enabled — callers guard on this before
    /// formatting correlation strings on hot paths.
    pub fn spans_enabled(&self) -> bool {
        self.core.obs.spans.is_enabled()
    }

    /// Records a correlation-stamped span event attributed to this host
    /// (no-op unless span recording is enabled on the world).
    pub fn span(&mut self, name: &'static str, corr: impl Into<String>, phase: SpanPhase) {
        if !self.core.obs.spans.is_enabled() {
            return;
        }
        let host = self.key.0;
        let now = self.core.now();
        self.core
            .obs
            .spans
            .record(now, Some(host), name, corr, phase);
    }

    /// Registers a shared metrics registry with the world's observability
    /// hub under `label`, so harnesses can sample it without simulated
    /// traffic. Re-registering a label replaces the previous handle.
    pub fn register_metrics(&mut self, label: impl Into<String>, registry: SharedRegistry) {
        self.core.obs.register(label.into(), registry);
    }

    /// A uniformly distributed value in `[0, 1)` from the world RNG.
    pub fn random_unit(&mut self) -> f64 {
        self.core.rng.unit_f64()
    }

    // ---- process management --------------------------------------------

    /// Forks and execs a child of the calling process.
    ///
    /// # Errors
    ///
    /// [`SysError::HostDown`] (only during in-flight crash handling).
    pub fn spawn(&mut self, spec: SpawnSpec) -> Result<Pid, SysError> {
        let uid = self.uid();
        self.core.spawn(self.key.0, self.key.1, uid, spec, None)
    }

    /// Forks and execs a child *owned by another user* — the setuid spawn
    /// pmd uses to create a user's LPM. Root only.
    ///
    /// # Errors
    ///
    /// [`SysError::PermissionDenied`] for non-root callers.
    pub fn spawn_as(&mut self, uid: Uid, spec: SpawnSpec) -> Result<Pid, SysError> {
        if !self.uid().is_root() {
            return Err(SysError::PermissionDenied);
        }
        self.core.spawn(self.key.0, self.key.1, uid, spec, None)
    }

    /// Terminates the calling process with `code`.
    pub fn exit(&mut self, code: i32) {
        self.core.do_exit(self.key, ExitStatus::Code(code));
    }

    /// Sends a signal to a process on this host, with the caller's
    /// credentials.
    ///
    /// # Errors
    ///
    /// [`SysError::NoSuchProcess`] or [`SysError::PermissionDenied`].
    pub fn kill(&mut self, target: Pid, signal: Signal) -> Result<(), SysError> {
        let uid = self.uid();
        self.core.post_signal(uid, (self.key.0, target), signal)
    }

    /// Adopts a process (the extended `ptrace` of Section 4): the caller
    /// becomes its tracer and receives kernel events per `flags`, for the
    /// target and all its future descendants.
    ///
    /// # Errors
    ///
    /// See [`crate::kernel::Kernel::adopt`].
    pub fn adopt(&mut self, target: Pid, flags: TraceFlags) -> Result<(), SysError> {
        let uid = self.uid();
        let tracer = self.key.1;
        let host = self.key.0;
        self.core
            .kernel_mut(host)
            .adopt(target, tracer, uid, flags)?;
        self.trace(
            TraceCategory::Lpm,
            format!("adopted pid {target} with flags {flags}"),
        );
        Ok(())
    }

    /// Updates the tracing flags of an already-adopted process.
    ///
    /// # Errors
    ///
    /// Same as [`Sys::adopt`].
    pub fn set_trace_flags(&mut self, target: Pid, flags: TraceFlags) -> Result<(), SysError> {
        self.adopt(target, flags)
    }

    /// Allocates the kernel socket descriptor (LPMs call this once; see
    /// Figure 4 of the paper).
    pub fn register_kernel_socket(&mut self) -> Fd {
        let key = self.key;
        let k = self.core.kernel_mut(key.0);
        k.get_mut(key.1)
            .expect("caller is alive")
            .fds
            .alloc(FdKind::KernelSocket)
    }

    /// `ps`-style info about one process on this host (any state).
    pub fn proc_info(&self, pid: Pid) -> Option<ProcInfo> {
        self.core.kernel(self.key.0).get(pid).map(ProcInfo::from)
    }

    /// Live processes of `uid` on this host, in pid order.
    pub fn user_processes(&self, uid: Uid) -> Vec<ProcInfo> {
        self.core
            .kernel(self.key.0)
            .user_processes(uid)
            .into_iter()
            .map(ProcInfo::from)
            .collect()
    }

    /// Resource usage of a process on this host (live or recently exited).
    pub fn rusage_of(&self, pid: Pid) -> Option<Rusage> {
        self.core.kernel(self.key.0).get(pid).map(|p| p.rusage)
    }

    /// Marks the caller CPU-bound (contributes to the run queue while
    /// running), or not.
    pub fn set_cpu_bound(&mut self, yes: bool) {
        let key = self.key;
        if let Ok(p) = self.core.kernel_mut(key.0).live_mut(key.1) {
            p.cpu_bound = yes;
        }
    }

    /// Scales a nominal (idle reference machine) CPU cost to this host's
    /// class and current load, with jitter — without consuming it. Used by
    /// programs that model their own internal concurrency (the LPM's
    /// handler processes run in parallel with its dispatcher).
    pub fn scale_cost(&mut self, nominal: SimDuration) -> SimDuration {
        self.core.scaled_cpu_cost(self.key.0, nominal)
    }

    /// Consumes CPU: the process is busy for the scaled cost (events queue
    /// behind it) and the cost is added to its rusage. Returns the scaled
    /// elapsed time.
    pub fn consume_cpu(&mut self, nominal: SimDuration) -> SimDuration {
        let key = self.key;
        let scaled = self.core.scaled_cpu_cost(key.0, nominal);
        let now = self.core.now();
        if let Ok(p) = self.core.kernel_mut(key.0).live_mut(key.1) {
            let from = if p.busy_until > now {
                p.busy_until
            } else {
                now
            };
            p.busy_until = from + scaled;
            p.rusage.cpu += scaled;
        }
        scaled
    }

    /// Accounts a received stream message against the caller and emits
    /// the IPC kernel event if traced. Called by the world at actual
    /// delivery time.
    pub(crate) fn account_msg_received(&mut self, bytes: usize) {
        let key = self.key;
        if let Ok(p) = self.core.kernel_mut(key.0).live_mut(key.1) {
            p.rusage.msgs_received += 1;
            p.rusage.bytes_received += bytes as u64;
        }
        self.core.emit_kernel_event(
            key.0,
            crate::events::KernelEvent::MsgReceived { pid: key.1, bytes },
        );
    }

    // ---- timers ----------------------------------------------------------

    /// Arms a one-shot timer; `token` comes back in
    /// [`crate::program::Program::on_timer`].
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerHandle {
        let id = self
            .core
            .engine
            .schedule(delay, SimEvent::Timer(self.key, token));
        TimerHandle(id)
    }

    /// Cancels a pending timer. Returns `false` if it already fired.
    pub fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        self.core.engine.cancel(handle.0)
    }

    // ---- networking ------------------------------------------------------

    /// Binds a listener on `port`.
    ///
    /// # Errors
    ///
    /// [`SysError::PortInUse`].
    pub fn listen(&mut self, port: Port) -> Result<(), SysError> {
        self.core.listen(self.key, port)
    }

    /// Starts a connection to `host:port`. The outcome arrives later as a
    /// [`crate::program::ConnEvent`].
    ///
    /// # Errors
    ///
    /// [`SysError::NoSuchHost`] for an invalid host id.
    pub fn connect(&mut self, host: HostId, port: Port) -> Result<ConnId, SysError> {
        self.core.connect(self.key, host, port)
    }

    /// Sends bytes on an established connection.
    ///
    /// # Errors
    ///
    /// [`SysError::NotConnected`] or [`SysError::ConnectionClosed`].
    pub fn send(&mut self, conn: ConnId, data: impl Into<Bytes>) -> Result<(), SysError> {
        self.core.send(self.key, conn, data.into())
    }

    /// Closes a connection.
    ///
    /// # Errors
    ///
    /// [`SysError::NotConnected`] if the caller is not an endpoint.
    pub fn close(&mut self, conn: ConnId) -> Result<(), SysError> {
        self.core.close(self.key, conn)
    }

    /// Asks inetd's registry to ensure a service runs on this host.
    /// Returns its pid and well-known port. Root only.
    ///
    /// # Errors
    ///
    /// [`SysError::PermissionDenied`] for non-root callers,
    /// [`SysError::UnknownService`] for unregistered names.
    pub fn spawn_service(&mut self, name: &str) -> Result<(Pid, Port), SysError> {
        if !self.uid().is_root() {
            return Err(SysError::PermissionDenied);
        }
        self.core.spawn_service(self.key.0, name)
    }

    // ---- stable storage ----------------------------------------------------

    /// Writes a record to the host's stable storage (simulated disk).
    /// Survives process exits and host crashes — the paper's suggested
    /// hardening of pmd state ("could be stored in secondary (even
    /// stable) storage so as to survive the daemon's possible failure
    /// modes").
    pub fn stable_put(&mut self, key: impl Into<String>, value: impl Into<Bytes>) {
        self.core.stable_put(self.key.0, key.into(), value.into());
    }

    /// Reads a record from the host's stable storage.
    pub fn stable_get(&self, key: &str) -> Option<Bytes> {
        self.core.stable_get(self.key.0, key)
    }

    /// Deletes a record from the host's stable storage.
    pub fn stable_del(&mut self, key: &str) {
        self.core.stable_del(self.key.0, key);
    }

    // ---- files -----------------------------------------------------------

    /// Opens a (simulated) file.
    pub fn open(&mut self, path: impl Into<String>, mode: OpenMode) -> Fd {
        let key = self.key;
        let path = path.into();
        let fd = {
            let p = self
                .core
                .kernel_mut(key.0)
                .live_mut(key.1)
                .expect("caller is alive");
            p.rusage.files_opened += 1;
            p.fds.alloc(FdKind::File {
                path: path.clone(),
                mode,
            })
        };
        self.core.emit_kernel_event(
            key.0,
            crate::events::KernelEvent::FileOpened { pid: key.1, path },
        );
        fd
    }

    /// Closes a descriptor.
    ///
    /// # Errors
    ///
    /// [`SysError::BadFileDescriptor`].
    pub fn close_fd(&mut self, fd: Fd) -> Result<(), SysError> {
        let key = self.key;
        let released = {
            let p = self
                .core
                .kernel_mut(key.0)
                .live_mut(key.1)
                .map_err(|_| SysError::BadFileDescriptor)?;
            p.fds.release(fd)
        };
        match released {
            Some(FdKind::File { path, .. }) => {
                self.core.emit_kernel_event(
                    key.0,
                    crate::events::KernelEvent::FileClosed { pid: key.1, path },
                );
                Ok(())
            }
            Some(FdKind::Socket { conn }) => {
                let _ = self.core.close(key, conn);
                Ok(())
            }
            Some(_) => Ok(()),
            None => Err(SysError::BadFileDescriptor),
        }
    }

    /// The descriptor table of a same-user (or any, for root) process on
    /// this host — the data for the planned files/fd display tools.
    ///
    /// # Errors
    ///
    /// [`SysError::NoSuchProcess`] or [`SysError::PermissionDenied`].
    pub fn open_fds(&self, pid: Pid) -> Result<Vec<(Fd, FdKind)>, SysError> {
        let me = self.uid();
        let p = self.core.kernel(self.key.0).live(pid)?;
        if p.uid != me && !me.is_root() {
            return Err(SysError::PermissionDenied);
        }
        Ok(p.fds.iter().map(|(fd, k)| (fd, k.clone())).collect())
    }
}

#[cfg(test)]
mod tests {
    //! `Sys` is exercised end-to-end in the world tests and the
    //! integration suites; here we only check the pieces with no event
    //! dependencies.
    use super::*;
    use crate::program::{Program, SpawnSpec};
    use crate::world::World;
    use ppm_simnet::topology::HostSpec;

    struct Probe;
    impl Program for Probe {
        fn on_start(&mut self, sys: &mut Sys<'_>) {
            assert_eq!(sys.host_name(), "a");
            assert!(sys.pid().0 > 1);
            assert_eq!(sys.uid(), Uid(7));
            let fd = sys.open("/tmp/file", OpenMode::ReadWrite);
            assert!(sys.close_fd(fd).is_ok());
            assert!(sys.close_fd(fd).is_err());
            let hosts = sys.known_hosts();
            assert_eq!(hosts, vec!["a".to_string()]);
            assert!(sys.resolve_host("a").is_ok());
            assert!(sys.resolve_host("zzz").is_err());
            let t = sys.set_timer(SimDuration::from_millis(5), 1);
            assert!(sys.cancel_timer(t));
            sys.exit(0);
        }
        fn name(&self) -> &str {
            "probe"
        }
    }

    #[test]
    fn basic_syscalls_work_from_a_program() {
        let mut w = World::new(5);
        let a = w.add_host(HostSpec::new("a", CpuClass::Vax780));
        let pid = w
            .spawn_user(a, Uid(7), SpawnSpec::new("probe", Box::new(Probe)))
            .unwrap();
        w.run_for(SimDuration::from_millis(500));
        let p = w.core().kernel(a).get(pid).unwrap();
        assert!(!p.is_alive(), "probe exited cleanly");
        assert_eq!(p.rusage.files_opened, 1);
    }
}
