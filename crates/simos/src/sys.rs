//! The simulated backend of the [`ppm_runtime::sys::Sys`] syscall surface.
//!
//! A [`Sys`] borrows the world core and identifies the calling process;
//! the world constructs one around every [`ppm_runtime::Program`]
//! callback. All behaviour — spawn/exit/kill/adopt, stream sockets,
//! timers, files, CPU accounting, `ps`-style queries — is defined by the
//! trait contracts in `ppm_runtime::sys`; this module maps them onto the
//! discrete-event world.

use bytes::Bytes;
use ppm_runtime::obs::{SharedRegistry, SpanPhase};
use ppm_runtime::sys::{Clock, Spawner, TimerDriver, TimerHandle, Transport};
use ppm_simnet::engine::EventId;
use ppm_simnet::time::{SimDuration, SimTime};
use ppm_simnet::topology::{CpuClass, HostId};
use ppm_simnet::trace::TraceCategory;

use ppm_runtime::events::TraceFlags;
use ppm_runtime::fd::{FdKind, OpenMode};
use ppm_runtime::ids::{ConnId, Fd, Pid, Port, Uid};
use ppm_runtime::process::{ProcInfo, Rusage};
use ppm_runtime::program::{ProcKey, SpawnSpec, SysError};
use ppm_runtime::signal::{ExitStatus, Signal};

use crate::world::{SimEvent, WorldCore};

/// The simulated syscall interface bound to one calling process.
pub struct Sys<'a> {
    core: &'a mut WorldCore,
    key: ProcKey,
}

impl<'a> Sys<'a> {
    pub(crate) fn new(core: &'a mut WorldCore, key: ProcKey) -> Self {
        Sys { core, key }
    }

    /// Accounts a received stream message against the caller and emits
    /// the IPC kernel event if traced. Called by the world at actual
    /// delivery time.
    pub(crate) fn account_msg_received(&mut self, bytes: usize) {
        let key = self.key;
        if let Ok(p) = self.core.kernel_mut(key.0).live_mut(key.1) {
            p.rusage.msgs_received += 1;
            p.rusage.bytes_received += bytes as u64;
        }
        self.core.emit_kernel_event(
            key.0,
            ppm_runtime::events::KernelEvent::MsgReceived { pid: key.1, bytes },
        );
    }
}

impl Clock for Sys<'_> {
    fn now(&self) -> SimTime {
        self.core.now()
    }
}

impl TimerDriver for Sys<'_> {
    fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerHandle {
        let id = self
            .core
            .engine
            .schedule(delay, SimEvent::Timer(self.key, token));
        TimerHandle(id.raw())
    }

    fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        self.core.engine.cancel(EventId::from_raw(handle.0))
    }
}

impl Transport for Sys<'_> {
    fn listen(&mut self, port: Port) -> Result<(), SysError> {
        self.core.listen(self.key, port)
    }

    fn connect(&mut self, host: HostId, port: Port) -> Result<ConnId, SysError> {
        self.core.connect(self.key, host, port)
    }

    fn send_bytes(&mut self, conn: ConnId, data: Bytes) -> Result<(), SysError> {
        self.core.send(self.key, conn, data)
    }

    fn conn_alive(&self, conn: ConnId) -> bool {
        self.core.conn_alive(self.key, conn)
    }

    fn net_epoch(&self) -> u64 {
        self.core.net_epoch()
    }

    fn edge_up(&self, a: &str, b: &str) -> bool {
        match (self.core.host_by_name(a), self.core.host_by_name(b)) {
            (Some(ha), Some(hb)) => self.core.edge_up(ha, hb),
            _ => false,
        }
    }

    fn close(&mut self, conn: ConnId) -> Result<(), SysError> {
        self.core.close(self.key, conn)
    }
}

impl Spawner for Sys<'_> {
    fn spawn(&mut self, spec: SpawnSpec) -> Result<Pid, SysError> {
        let uid = ppm_runtime::sys::Sys::uid(self);
        self.core.spawn(self.key.0, self.key.1, uid, spec, None)
    }

    fn spawn_as(&mut self, uid: Uid, spec: SpawnSpec) -> Result<Pid, SysError> {
        if !ppm_runtime::sys::Sys::uid(self).is_root() {
            return Err(SysError::PermissionDenied);
        }
        self.core.spawn(self.key.0, self.key.1, uid, spec, None)
    }

    fn exit(&mut self, code: i32) {
        self.core.do_exit(self.key, ExitStatus::Code(code));
    }

    fn kill(&mut self, target: Pid, signal: Signal) -> Result<(), SysError> {
        let uid = ppm_runtime::sys::Sys::uid(self);
        self.core.post_signal(uid, (self.key.0, target), signal)
    }

    fn spawn_service(&mut self, name: &str) -> Result<(Pid, Port), SysError> {
        if !ppm_runtime::sys::Sys::uid(self).is_root() {
            return Err(SysError::PermissionDenied);
        }
        self.core.spawn_service(self.key.0, name)
    }
}

impl ppm_runtime::sys::Sys for Sys<'_> {
    // ---- identity and environment --------------------------------------

    fn host(&self) -> HostId {
        self.key.0
    }

    fn host_name(&self) -> &str {
        self.core.host_name(self.key.0)
    }

    fn cpu_class(&self) -> CpuClass {
        self.core.topology().spec(self.key.0).cpu
    }

    fn pid(&self) -> Pid {
        self.key.1
    }

    fn uid(&self) -> Uid {
        self.core
            .kernel(self.key.0)
            .get(self.key.1)
            .map(|p| p.uid)
            .unwrap_or(Uid::ROOT)
    }

    fn load_avg(&self) -> f64 {
        self.core.kernel(self.key.0).load_avg()
    }

    fn resolve_host(&self, name: &str) -> Result<HostId, SysError> {
        self.core.host_by_name(name).ok_or(SysError::NoSuchHost)
    }

    fn known_hosts(&self) -> Vec<String> {
        self.core
            .topology()
            .host_ids()
            .map(|h| self.core.host_name(h).to_string())
            .collect()
    }

    fn trace_str(&mut self, category: TraceCategory, text: String) {
        let host = self.key.0;
        self.core.tracef(Some(host), category, text);
    }

    fn spans_enabled(&self) -> bool {
        self.core.obs.spans.is_enabled()
    }

    fn span_str(&mut self, name: &'static str, corr: String, phase: SpanPhase) {
        if !self.core.obs.spans.is_enabled() {
            return;
        }
        let host = self.key.0;
        let now = self.core.now();
        self.core
            .obs
            .spans
            .record(now, Some(host), name, corr, phase);
    }

    fn register_metrics_str(&mut self, label: String, registry: SharedRegistry) {
        self.core.obs.register(label, registry);
    }

    fn random_unit(&mut self) -> f64 {
        self.core.rng.unit_f64()
    }

    // ---- process management --------------------------------------------

    fn adopt(&mut self, target: Pid, flags: TraceFlags) -> Result<(), SysError> {
        let uid = ppm_runtime::sys::Sys::uid(self);
        let tracer = self.key.1;
        let host = self.key.0;
        self.core
            .kernel_mut(host)
            .adopt(target, tracer, uid, flags)?;
        self.trace_str(
            TraceCategory::Lpm,
            format!("adopted pid {target} with flags {flags}"),
        );
        Ok(())
    }

    fn register_kernel_socket(&mut self) -> Fd {
        let key = self.key;
        let k = self.core.kernel_mut(key.0);
        k.get_mut(key.1)
            .expect("caller is alive")
            .fds
            .alloc(FdKind::KernelSocket)
    }

    fn proc_info(&self, pid: Pid) -> Option<ProcInfo> {
        self.core.kernel(self.key.0).get(pid).map(ProcInfo::from)
    }

    fn user_processes(&self, uid: Uid) -> Vec<ProcInfo> {
        self.core
            .kernel(self.key.0)
            .user_processes(uid)
            .into_iter()
            .map(ProcInfo::from)
            .collect()
    }

    fn rusage_of(&self, pid: Pid) -> Option<Rusage> {
        self.core.kernel(self.key.0).get(pid).map(|p| p.rusage)
    }

    fn set_cpu_bound(&mut self, yes: bool) {
        let key = self.key;
        if let Ok(p) = self.core.kernel_mut(key.0).live_mut(key.1) {
            p.cpu_bound = yes;
        }
    }

    fn scale_cost(&mut self, nominal: SimDuration) -> SimDuration {
        self.core.scaled_cpu_cost(self.key.0, nominal)
    }

    fn consume_cpu(&mut self, nominal: SimDuration) -> SimDuration {
        let key = self.key;
        let scaled = self.core.scaled_cpu_cost(key.0, nominal);
        let now = self.core.now();
        if let Ok(p) = self.core.kernel_mut(key.0).live_mut(key.1) {
            let from = if p.busy_until > now {
                p.busy_until
            } else {
                now
            };
            p.busy_until = from + scaled;
            p.rusage.cpu += scaled;
        }
        scaled
    }

    // ---- stable storage ------------------------------------------------

    fn stable_put_kv(&mut self, key: String, value: Bytes) {
        self.core.stable_put(self.key.0, key, value);
    }

    fn stable_get(&self, key: &str) -> Option<Bytes> {
        self.core.stable_get(self.key.0, key)
    }

    fn stable_del(&mut self, key: &str) {
        self.core.stable_del(self.key.0, key);
    }

    // ---- files -----------------------------------------------------------

    fn open_path(&mut self, path: String, mode: OpenMode) -> Fd {
        let key = self.key;
        let fd = {
            let p = self
                .core
                .kernel_mut(key.0)
                .live_mut(key.1)
                .expect("caller is alive");
            p.rusage.files_opened += 1;
            p.fds.alloc(FdKind::File {
                path: path.clone(),
                mode,
            })
        };
        self.core.emit_kernel_event(
            key.0,
            ppm_runtime::events::KernelEvent::FileOpened { pid: key.1, path },
        );
        fd
    }

    fn close_fd(&mut self, fd: Fd) -> Result<(), SysError> {
        let key = self.key;
        let released = {
            let p = self
                .core
                .kernel_mut(key.0)
                .live_mut(key.1)
                .map_err(|_| SysError::BadFileDescriptor)?;
            p.fds.release(fd)
        };
        match released {
            Some(FdKind::File { path, .. }) => {
                self.core.emit_kernel_event(
                    key.0,
                    ppm_runtime::events::KernelEvent::FileClosed { pid: key.1, path },
                );
                Ok(())
            }
            Some(FdKind::Socket { conn }) => {
                let _ = self.core.close(key, conn);
                Ok(())
            }
            Some(_) => Ok(()),
            None => Err(SysError::BadFileDescriptor),
        }
    }

    fn open_fds(&self, pid: Pid) -> Result<Vec<(Fd, FdKind)>, SysError> {
        let me = ppm_runtime::sys::Sys::uid(self);
        let p = self.core.kernel(self.key.0).live(pid)?;
        if p.uid != me && !me.is_root() {
            return Err(SysError::PermissionDenied);
        }
        Ok(p.fds.iter().map(|(fd, k)| (fd, k.clone())).collect())
    }
}

#[cfg(test)]
mod tests {
    //! `Sys` is exercised end-to-end in the world tests and the
    //! integration suites; here we only check the pieces with no event
    //! dependencies.
    use super::*;
    use crate::world::World;
    use ppm_runtime::program::Program;
    use ppm_simnet::topology::HostSpec;

    struct Probe;
    impl Program for Probe {
        fn on_start(&mut self, sys: &mut dyn ppm_runtime::sys::Sys) {
            assert_eq!(sys.host_name(), "a");
            assert!(sys.pid().0 > 1);
            assert_eq!(sys.uid(), Uid(7));
            let fd = sys.open("/tmp/file", OpenMode::ReadWrite);
            assert!(sys.close_fd(fd).is_ok());
            assert!(sys.close_fd(fd).is_err());
            let hosts = sys.known_hosts();
            assert_eq!(hosts, vec!["a".to_string()]);
            assert!(sys.resolve_host("a").is_ok());
            assert!(sys.resolve_host("zzz").is_err());
            let t = sys.set_timer(SimDuration::from_millis(5), 1);
            assert!(sys.cancel_timer(t));
            sys.exit(0);
        }
        fn name(&self) -> &str {
            "probe"
        }
    }

    #[test]
    fn basic_syscalls_work_from_a_program() {
        let mut w = World::new(5);
        let a = w.add_host(HostSpec::new("a", CpuClass::Vax780));
        let pid = w
            .spawn_user(a, Uid(7), SpawnSpec::new("probe", Box::new(Probe)))
            .unwrap();
        w.run_for(SimDuration::from_millis(500));
        let p = w.core().kernel(a).get(pid).unwrap();
        assert!(!p.is_alive(), "probe exited cleanly");
        assert_eq!(p.rusage.files_opened, 1);
    }
}
