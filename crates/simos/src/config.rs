//! Tunable constants of the simulated OS.

use ppm_simnet::time::SimDuration;

/// Cost and timing constants of the simulated kernel and network stack.
///
/// The defaults are nominal values for an idle VAX 11/780 (the reference
/// machine of the paper's Table 1); the world scales every CPU-bound cost
/// by host class and current load via
/// [`ppm_simnet::latency::LatencyModel::cpu_scale`].
#[derive(Debug, Clone, PartialEq)]
pub struct OsConfig {
    /// Elapsed fork+exec time for a new process at idle on the reference
    /// machine. Part of the paper's 77 ms within-host creation figure
    /// (Table 2); the rest is LPM bookkeeping.
    pub spawn_cost: SimDuration,
    /// Boot time of per-host system daemons at host (re)start.
    pub daemon_boot_cost: SimDuration,
    /// Latency from `kill()` to signal delivery on the same host.
    pub signal_latency: SimDuration,
    /// Latency from a child's exit to the parent's SIGCHLD-style
    /// notification.
    pub child_exit_latency: SimDuration,
    /// Size in bytes of the connection-handshake segments.
    pub handshake_bytes: usize,
    /// How long a sender takes to discover that an established connection
    /// broke (peer crash or partition) — the TCP keepalive/retransmit
    /// analogue.
    pub break_detection: SimDuration,
    /// How long a connection attempt to an unreachable host takes to fail.
    pub connect_timeout: SimDuration,
    /// Interval between load-average samples.
    pub load_tick: SimDuration,
    /// EWMA window of the load average (UNIX uses 60 s for `la1`).
    pub load_window: SimDuration,
    /// Fraction of latency jitter applied to CPU costs.
    pub cost_jitter: f64,
}

impl Default for OsConfig {
    fn default() -> Self {
        OsConfig {
            spawn_cost: SimDuration::from_micros(42_000),
            daemon_boot_cost: SimDuration::from_micros(5_000),
            signal_latency: SimDuration::from_micros(2_000),
            child_exit_latency: SimDuration::from_micros(2_000),
            handshake_bytes: 64,
            break_detection: SimDuration::from_millis(400),
            connect_timeout: SimDuration::from_millis(600),
            load_tick: SimDuration::from_secs(1),
            load_window: SimDuration::from_secs(60),
            cost_jitter: 0.03,
        }
    }
}

impl OsConfig {
    /// The EWMA coefficient for one load sample.
    pub fn load_alpha(&self) -> f64 {
        1.0 - (-(self.load_tick.as_secs_f64() / self.load_window.as_secs_f64())).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = OsConfig::default();
        assert!(c.spawn_cost > SimDuration::ZERO);
        assert!(c.break_detection > c.signal_latency);
        assert!(c.load_window > c.load_tick);
    }

    #[test]
    fn load_alpha_matches_unix_one_second_sample() {
        let c = OsConfig::default();
        let expected = 1.0 - (-1.0f64 / 60.0).exp();
        assert!((c.load_alpha() - expected).abs() < 1e-12);
        assert!(c.load_alpha() > 0.0 && c.load_alpha() < 1.0);
    }
}
