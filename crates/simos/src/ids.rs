//! Identifier newtypes for the simulated OS layer.

use std::fmt;

/// A process id, unique within one host (like a UNIX pid).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Pid {
    /// The init/system pseudo-process that owns per-host daemons.
    pub const INIT: Pid = Pid(1);
}

/// A user id. Uid 0 is the superuser, as in UNIX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uid(pub u32);

impl Uid {
    /// The superuser.
    pub const ROOT: Uid = Uid(0);

    /// True for the superuser.
    pub fn is_root(self) -> bool {
        self == Uid::ROOT
    }
}

impl fmt::Display for Uid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uid{}", self.0)
    }
}

/// A TCP-style port number on a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Port(pub u16);

impl Port {
    /// Well-known port of the inet daemon on every host.
    pub const INETD: Port = Port(1);
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ":{}", self.0)
    }
}

/// World-unique identifier of one stream connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A file descriptor within one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub u32);

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_compact() {
        assert_eq!(Pid(42).to_string(), "42");
        assert_eq!(Uid(7).to_string(), "uid7");
        assert_eq!(Port(3).to_string(), ":3");
        assert_eq!(ConnId(9).to_string(), "c9");
        assert_eq!(Fd(2).to_string(), "fd2");
    }

    #[test]
    fn root_detection() {
        assert!(Uid::ROOT.is_root());
        assert!(!Uid(100).is_root());
    }

    #[test]
    fn constants() {
        assert_eq!(Pid::INIT, Pid(1));
        assert_eq!(Port::INETD, Port(1));
    }
}
