//! # ppm-simos — a simulated networked Berkeley UNIX
//!
//! The substrate the paper's PPM runs on, rebuilt as a deterministic
//! simulation: per-host kernels with process tables, fork/exec/exit,
//! signals, an extended-`ptrace` adoption mechanism with kernel event
//! tracing, per-process descriptor tables, reliable stream sockets across
//! a host/link topology, load averages, and the inet daemon.
//!
//! The paper modified 4.3BSD "with kernel changes kept to a minimum"; the
//! PPM interacts with the kernel only through system calls, stream
//! sockets and kernel event messages. This crate reproduces that exact
//! surface (see [`sys::Sys`] and [`program::Program`]) so the PPM logic
//! in `ppm-core` is structured just like the original user-level C
//! implementation.
//!
//! ## Example
//!
//! ```
//! use ppm_simnet::time::SimDuration;
//! use ppm_simnet::topology::{CpuClass, HostSpec};
//! use ppm_simos::ids::Uid;
//! use ppm_simos::program::SpawnSpec;
//! use ppm_simos::world::World;
//!
//! let mut world = World::new(42);
//! let host = world.add_host(HostSpec::new("ucbvax", CpuClass::Vax780));
//! let pid = world.spawn_user(host, Uid(100), SpawnSpec::inert("cc"))?;
//! world.run_for(SimDuration::from_millis(200));
//! assert!(world.core().is_alive((host, pid)));
//! # Ok::<(), ppm_simos::program::SysError>(())
//! ```

pub mod config;
pub mod net;
pub mod obs;
pub mod rt;
pub mod sys;
pub mod world;

// The process model, actor trait and stock programs moved to the
// backend-agnostic `ppm-runtime` layer (the real backend shares them);
// the kernel wire codec moved next to the rest of the protocol in
// `ppm-proto`. These shims keep the historical `ppm_simos::` paths.
pub use ppm_proto::kernel_wire as wire;
pub use ppm_runtime::events;
pub use ppm_runtime::fd;
pub use ppm_runtime::ids;
pub use ppm_runtime::inetd;
pub use ppm_runtime::kernel;
pub use ppm_runtime::process;
pub use ppm_runtime::program;
pub use ppm_runtime::signal;
pub use ppm_runtime::workload;

pub use config::OsConfig;
pub use events::{KernelEvent, TraceFlags};
pub use ids::{ConnId, Fd, Pid, Port, Uid};
pub use process::{ProcInfo, ProcState, Rusage};
pub use program::{ConnEvent, Inert, KernelMsg, ProcKey, Program, SigAction, SpawnSpec, SysError};
pub use signal::{ExitStatus, Signal};
pub use sys::Sys;
pub use world::World;
