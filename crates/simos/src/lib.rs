//! # ppm-simos — a simulated networked Berkeley UNIX
//!
//! The substrate the paper's PPM runs on, rebuilt as a deterministic
//! simulation: per-host kernels with process tables, fork/exec/exit,
//! signals, an extended-`ptrace` adoption mechanism with kernel event
//! tracing, per-process descriptor tables, reliable stream sockets across
//! a host/link topology, load averages, and the inet daemon.
//!
//! The paper modified 4.3BSD "with kernel changes kept to a minimum"; the
//! PPM interacts with the kernel only through system calls, stream
//! sockets and kernel event messages. This crate reproduces that exact
//! surface (see [`sys::Sys`] and [`program::Program`]) so the PPM logic
//! in `ppm-core` is structured just like the original user-level C
//! implementation.
//!
//! ## Example
//!
//! ```
//! use ppm_simnet::time::SimDuration;
//! use ppm_simnet::topology::{CpuClass, HostSpec};
//! use ppm_simos::ids::Uid;
//! use ppm_simos::program::SpawnSpec;
//! use ppm_simos::world::World;
//!
//! let mut world = World::new(42);
//! let host = world.add_host(HostSpec::new("ucbvax", CpuClass::Vax780));
//! let pid = world.spawn_user(host, Uid(100), SpawnSpec::inert("cc"))?;
//! world.run_for(SimDuration::from_millis(200));
//! assert!(world.core().is_alive((host, pid)));
//! # Ok::<(), ppm_simos::program::SysError>(())
//! ```

pub mod config;
pub mod events;
pub mod fd;
pub mod ids;
pub mod inetd;
pub mod kernel;
pub mod net;
pub mod obs;
pub mod process;
pub mod program;
pub mod signal;
pub mod sys;
pub mod wire;
pub mod workload;
pub mod world;

pub use config::OsConfig;
pub use events::{KernelEvent, TraceFlags};
pub use ids::{ConnId, Fd, Pid, Port, Uid};
pub use process::{ProcInfo, ProcState, Rusage};
pub use program::{ConnEvent, Inert, KernelMsg, ProcKey, Program, SigAction, SpawnSpec, SysError};
pub use signal::{ExitStatus, Signal};
pub use sys::Sys;
pub use world::World;
