//! World-level observability: the kernel-path metrics registry, the span
//! log, and the hub that collects per-program registries.
//!
//! Programs (LPMs) own their registries; at start they register a shared
//! handle here via `register_metrics` on their syscall interface, so a
//! harness or the CLI can sample every registry at end of run without
//! generating simulated traffic. The handle type is the runtime layer's
//! [`SharedRegistry`] (`Arc<Registry>`, shared with the real backend).

pub use ppm_runtime::obs::SharedRegistry;
use ppm_runtime::obs::{CounterId, HistId, MetricSample, Registry, SpanLog};

/// The world's observability hub.
pub struct ObsHub {
    /// World-level metrics (the simulated kernel's event path).
    pub registry: Registry,
    /// Correlation-stamped span records from every host.
    pub spans: SpanLog,
    /// Program registries, keyed by a caller-chosen label (an LPM uses
    /// `"host/uid"`). Re-registering a label replaces the handle, so a
    /// restarted LPM shadows its predecessor.
    registries: Vec<(String, SharedRegistry)>,
    kernel_events: CounterId,
    kernel_wakeups: CounterId,
    kernel_batch_msgs: HistId,
    faults_injected: CounterId,
}

impl Default for ObsHub {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsHub {
    /// Creates the hub with the kernel-path metrics pre-registered.
    pub fn new() -> Self {
        let mut registry = Registry::new();
        let kernel_events = registry.counter("kernel.events");
        let kernel_wakeups = registry.counter("kernel.wakeups");
        let kernel_batch_msgs = registry.hist("kernel.batch_msgs");
        let faults_injected = registry.counter("faults.injected");
        ObsHub {
            registry,
            spans: SpanLog::new(),
            registries: Vec::new(),
            kernel_events,
            kernel_wakeups,
            kernel_batch_msgs,
            faults_injected,
        }
    }

    /// One kernel event emitted toward a tracer.
    pub(crate) fn note_kernel_event(&mut self) {
        self.registry.inc(self.kernel_events);
    }

    /// One LPM wakeup armed (first event of a batch).
    pub(crate) fn note_kernel_wakeup(&mut self) {
        self.registry.inc(self.kernel_wakeups);
    }

    /// One batch flushed with `n` coalesced messages.
    pub(crate) fn note_kernel_batch(&mut self, n: usize) {
        self.registry.record(self.kernel_batch_msgs, n as u64);
    }

    /// `n` faults injected (plan events at install time, wire faults as
    /// they fire).
    pub(crate) fn note_faults(&mut self, n: u64) {
        self.registry.add(self.faults_injected, n);
    }

    /// Registers (or replaces) a program registry under `label`.
    pub fn register(&mut self, label: String, registry: SharedRegistry) {
        if let Some(slot) = self.registries.iter_mut().find(|(l, _)| *l == label) {
            slot.1 = registry;
            return;
        }
        self.registries.push((label, registry));
    }

    /// Snapshots every registered program registry, sorted by label.
    pub fn program_snapshots(&self) -> Vec<(String, Vec<MetricSample>)> {
        let mut out: Vec<(String, Vec<MetricSample>)> = self
            .registries
            .iter()
            .map(|(l, r)| (l.clone(), r.snapshot()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Snapshots one registered registry by label.
    pub fn program_snapshot(&self, label: &str) -> Option<Vec<MetricSample>> {
        self.registries
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, r)| r.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_runtime::obs::MetricValue;

    #[test]
    fn hub_samples_registered_registries_sorted_by_label() {
        let mut hub = ObsHub::new();
        let mut reg = Registry::new();
        let c = reg.counter("x");
        let a: SharedRegistry = reg.into_shared();
        a.inc(c);
        let b: SharedRegistry = Registry::new().into_shared();
        hub.register("beta/1".into(), b);
        hub.register("alpha/1".into(), a.clone());
        let snaps = hub.program_snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].0, "alpha/1");
        assert_eq!(snaps[0].1[0].value, MetricValue::Counter(1));
        // Re-registering a label replaces the handle.
        let fresh: SharedRegistry = Registry::new().into_shared();
        hub.register("alpha/1".into(), fresh);
        assert!(hub.program_snapshot("alpha/1").unwrap().is_empty());
        assert!(hub.program_snapshot("nope").is_none());
    }

    #[test]
    fn kernel_path_counters_accumulate() {
        let mut hub = ObsHub::new();
        hub.note_kernel_event();
        hub.note_kernel_event();
        hub.note_kernel_wakeup();
        hub.note_kernel_batch(2);
        let snap = hub.registry.snapshot();
        let get = |name: &str| {
            snap.iter()
                .find(|s| s.name == name)
                .map(|s| s.value.clone())
                .unwrap()
        };
        assert_eq!(get("kernel.events"), MetricValue::Counter(2));
        assert_eq!(get("kernel.wakeups"), MetricValue::Counter(1));
        let MetricValue::Hist(h) = get("kernel.batch_msgs") else {
            panic!("expected hist");
        };
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 2);
    }
}
