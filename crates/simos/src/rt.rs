//! [`SimRuntime`] — the simulated backend behind the
//! [`ppm_runtime::rt::Runtime`] facade.
//!
//! A thin adapter over [`crate::world::World`]: the facade's one-LAN
//! model maps to a full mesh of links, `run` advances the virtual clock,
//! and `stable_get` reads the per-host stable store that conformance
//! programs report through. Everything underneath is the deterministic
//! discrete-event world — same seed, same bytes.

use bytes::Bytes;

use ppm_runtime::ids::{CpuClass, HostId, Pid, Uid};
use ppm_runtime::program::{SpawnSpec, SysError};
use ppm_runtime::rt::Runtime;
use ppm_runtime::time::{Micros, SimDuration};
use ppm_simnet::topology::HostSpec;

use crate::world::World;

/// The simulated world, seen through the backend facade.
pub struct SimRuntime {
    world: World,
}

impl SimRuntime {
    /// A fresh deterministic world.
    pub fn new(seed: u64) -> Self {
        SimRuntime {
            world: World::new(seed),
        }
    }

    /// The wrapped world, for sim-specific scenarios (fault plans,
    /// traces) that the facade deliberately leaves out.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable access to the wrapped world.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }
}

impl Runtime for SimRuntime {
    fn add_host(&mut self, name: &str, cpu: CpuClass) -> HostId {
        let id = self.world.add_host(HostSpec::new(name, cpu));
        for other in 0..id.0 {
            self.world.add_link(HostId(other), id);
        }
        id
    }

    fn spawn_user(&mut self, host: HostId, uid: Uid, spec: SpawnSpec) -> Result<Pid, SysError> {
        self.world.spawn_user(host, uid, spec)
    }

    fn run(&mut self, span: SimDuration) {
        self.world.run_for(span);
    }

    fn is_alive(&self, host: HostId, pid: Pid) -> bool {
        self.world.core().is_alive((host, pid))
    }

    fn stable_get(&self, host: HostId, key: &str) -> Option<Bytes> {
        self.world.core().stable_get_pub(host, key)
    }

    fn now(&self) -> Micros {
        self.world.now()
    }
}
