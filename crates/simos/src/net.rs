//! Reliable stream connections (simulated TCP virtual circuits).
//!
//! The PPM's sibling LPMs and tools communicate over "private reliable
//! stream communication channels" — 4.3BSD TCP connections. This module
//! holds the bookkeeping; delivery scheduling lives in
//! [`crate::world::World`]. Guarantees preserved: in-order delivery per
//! direction, connection-oriented failure reporting (a break is observed
//! by the sender), and per-connection statistics for the IPC-tracing tool.

use ppm_simnet::time::SimTime;
use ppm_simnet::topology::HostId;

use crate::ids::{ConnId, Pid, Port};
use crate::program::ProcKey;

/// One endpoint of a connection.
pub type Endpoint = ProcKey;

/// Lifecycle of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// SYN in flight.
    Connecting,
    /// Open in both directions.
    Established,
    /// Broken or closed; no further traffic.
    Closed,
}

/// Per-connection counters, the raw material of the paper's planned
/// "IPC activity tracing and analysis" tool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Messages sent client→server.
    pub msgs_to_server: u64,
    /// Messages sent server→client.
    pub msgs_to_client: u64,
    /// Bytes sent client→server.
    pub bytes_to_server: u64,
    /// Bytes sent server→client.
    pub bytes_to_client: u64,
    /// When the connection was opened.
    pub opened_at: SimTime,
    /// When it was established (handshake complete).
    pub established_at: Option<SimTime>,
    /// When it closed, if it has.
    pub closed_at: Option<SimTime>,
}

/// A stream connection between two processes, possibly on different hosts.
#[derive(Debug, Clone)]
pub struct Connection {
    /// Identifier.
    pub id: ConnId,
    /// The initiating endpoint.
    pub client: Endpoint,
    /// The accepting endpoint.
    pub server: Endpoint,
    /// The server port connected to.
    pub port: Port,
    /// Current state.
    pub state: ConnState,
    /// Earliest admissible arrival time of the next message, per
    /// direction, enforcing FIFO despite jittered latencies.
    /// Index 0: messages arriving at the client; 1: at the server.
    pub next_arrival: [SimTime; 2],
    /// Counters.
    pub stats: ConnStats,
}

impl Connection {
    /// Creates a connection in the `Connecting` state.
    pub fn new(id: ConnId, client: Endpoint, server: Endpoint, port: Port, now: SimTime) -> Self {
        Connection {
            id,
            client,
            server,
            port,
            state: ConnState::Connecting,
            next_arrival: [SimTime::ZERO; 2],
            stats: ConnStats {
                opened_at: now,
                ..Default::default()
            },
        }
    }

    /// The peer of `end`, or `None` if `end` is not an endpoint.
    pub fn peer_of(&self, end: Endpoint) -> Option<Endpoint> {
        if end == self.client {
            Some(self.server)
        } else if end == self.server {
            Some(self.client)
        } else {
            None
        }
    }

    /// True when `end` is one of the two endpoints.
    pub fn has_endpoint(&self, end: Endpoint) -> bool {
        self.peer_of(end).is_some()
    }

    /// True when either endpoint lives on `host`.
    pub fn touches_host(&self, host: HostId) -> bool {
        self.client.0 == host || self.server.0 == host
    }

    /// True when either endpoint is exactly this process.
    pub fn touches_proc(&self, host: HostId, pid: Pid) -> bool {
        self.client == (host, pid) || self.server == (host, pid)
    }

    /// Records a send from `from` of `bytes` bytes and returns the index
    /// into [`Connection::next_arrival`] for the receiving side.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not an endpoint.
    pub fn record_send(&mut self, from: Endpoint, bytes: usize) -> usize {
        if from == self.client {
            self.stats.msgs_to_server += 1;
            self.stats.bytes_to_server += bytes as u64;
            1
        } else if from == self.server {
            self.stats.msgs_to_client += 1;
            self.stats.bytes_to_client += bytes as u64;
            0
        } else {
            panic!("record_send from non-endpoint");
        }
    }

    /// Total messages in both directions.
    pub fn total_msgs(&self) -> u64 {
        self.stats.msgs_to_server + self.stats.msgs_to_client
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.stats.bytes_to_server + self.stats.bytes_to_client
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn() -> Connection {
        Connection::new(
            ConnId(1),
            (HostId(0), Pid(10)),
            (HostId(1), Pid(20)),
            Port(3),
            SimTime::from_millis(2),
        )
    }

    #[test]
    fn starts_connecting_with_open_timestamp() {
        let c = conn();
        assert_eq!(c.state, ConnState::Connecting);
        assert_eq!(c.stats.opened_at, SimTime::from_millis(2));
        assert_eq!(c.stats.established_at, None);
    }

    #[test]
    fn peer_resolution() {
        let c = conn();
        assert_eq!(c.peer_of((HostId(0), Pid(10))), Some((HostId(1), Pid(20))));
        assert_eq!(c.peer_of((HostId(1), Pid(20))), Some((HostId(0), Pid(10))));
        assert_eq!(c.peer_of((HostId(2), Pid(1))), None);
        assert!(c.has_endpoint((HostId(0), Pid(10))));
        assert!(!c.has_endpoint((HostId(0), Pid(11))));
    }

    #[test]
    fn host_and_proc_touch_tests() {
        let c = conn();
        assert!(c.touches_host(HostId(0)));
        assert!(c.touches_host(HostId(1)));
        assert!(!c.touches_host(HostId(2)));
        assert!(c.touches_proc(HostId(1), Pid(20)));
        assert!(!c.touches_proc(HostId(1), Pid(21)));
    }

    #[test]
    fn record_send_updates_direction_stats() {
        let mut c = conn();
        let dir = c.record_send((HostId(0), Pid(10)), 100);
        assert_eq!(dir, 1, "client send arrives at server side");
        let dir = c.record_send((HostId(1), Pid(20)), 40);
        assert_eq!(dir, 0);
        assert_eq!(c.stats.msgs_to_server, 1);
        assert_eq!(c.stats.bytes_to_server, 100);
        assert_eq!(c.stats.msgs_to_client, 1);
        assert_eq!(c.stats.bytes_to_client, 40);
        assert_eq!(c.total_msgs(), 2);
        assert_eq!(c.total_bytes(), 140);
    }

    #[test]
    #[should_panic(expected = "non-endpoint")]
    fn record_send_from_stranger_panics() {
        let mut c = conn();
        c.record_send((HostId(9), Pid(9)), 1);
    }
}
