//! The simulation world: hosts, kernels, wires, and the event loop.
//!
//! [`World`] owns everything: the discrete-event engine, the topology, one
//! [`Kernel`] per host, all live connections, and the [`Program`] objects
//! attached to processes. Its event loop pops one event at a time, mutates
//! kernel/network state, and invokes at most one program handler — so a
//! run with a given seed is exactly reproducible.
//!
//! Programs never call each other directly: every interaction (message,
//! signal, child exit, kernel event) becomes a scheduled event, mirroring
//! the paper's message-based LPM design.

use std::collections::HashMap;
use std::fmt;

use bytes::Bytes;
use ppm_proto::codec::encode_batch;
use ppm_runtime::obs::{CounterId, HistId};
use ppm_simnet::bandwidth::{NetModel, Transfer};
use ppm_simnet::engine::TimerWheel;
use ppm_simnet::fault::{FaultKind, FaultPlan, WireDecision, WireFaults};
use ppm_simnet::latency::LatencyModel;
use ppm_simnet::rng::SimRng;
use ppm_simnet::time::{SimDuration, SimTime};
use ppm_simnet::topology::{HostId, HostSpec, NetSpec, Topology};
use ppm_simnet::trace::{TraceCategory, TraceLog};

use crate::config::OsConfig;
use crate::events::{KernelEvent, TraceFlags};
use crate::fd::FdKind;
use crate::ids::{ConnId, Pid, Port, Uid};
use crate::kernel::Kernel;
use crate::net::{ConnState, Connection};
use crate::obs::ObsHub;
use crate::process::{ProcState, Process};
use crate::program::{ConnEvent, KernelMsg, ProcKey, Program, SigAction, SpawnSpec, SysError};
use crate::signal::{ExitStatus, Signal};
use crate::sys::Sys;

/// Factory producing a fresh service program instance for a host, used by
/// inetd to start daemons (pmd) on demand.
pub type ServiceFactory = Box<dyn Fn(HostId) -> Box<dyn Program>>;

pub(crate) struct ServiceEntry {
    pub port: Port,
    pub factory: ServiceFactory,
}

pub(crate) struct HostState {
    pub kernel: Kernel,
    pub listeners: HashMap<Port, Pid>,
    pub services: HashMap<String, Pid>,
    /// Simulated disk: survives process exits *and* host crashes.
    pub stable: HashMap<String, Bytes>,
    /// Services running when the host crashed, name-sorted; a restart
    /// re-runs them the way init re-runs /etc/rc after a power failure.
    pub prev_services: Vec<String>,
}

/// Events flowing through the engine. Internal to the crate; programs see
/// the typed callbacks of [`Program`] instead.
#[derive(Debug, Clone)]
pub(crate) enum SimEvent {
    Start(ProcKey),
    Timer(ProcKey, u64),
    Deliver {
        conn: ConnId,
        to: ProcKey,
        data: Bytes,
    },
    ConnEstablish {
        conn: ConnId,
    },
    ConnFailed {
        conn: ConnId,
        to: ProcKey,
        reason: SysError,
    },
    ConnClosedNotify {
        conn: ConnId,
        to: ProcKey,
    },
    /// Deliver the pending kernel-event batch for `to` (armed by the
    /// first event of the batch; later events ride the same wakeup).
    KernelFlush {
        to: ProcKey,
    },
    /// A kernel-event batch already encoded, re-delivered after a busy or
    /// stopped deferral.
    KernelBatch {
        to: ProcKey,
        data: Bytes,
    },
    SignalDeliver {
        to: ProcKey,
        signal: Signal,
    },
    ChildExit {
        parent: ProcKey,
        child: Pid,
        status: ExitStatus,
    },
    LoadTick(HostId),
    HostCrash(HostId),
    HostRestart(HostId),
    LinkSet(HostId, HostId, bool),
    /// Fault-plan cut/heal of a *named* physical link in the installed
    /// netmodel (the link index is resolved at plan-install time).
    NetLinkSet(u32, bool),
    /// Fault-plan kill: SIGKILL every live process on the host whose
    /// command starts with the prefix.
    KillCmd(HostId, String),
}

/// Registry ids for the `net.*` metrics. Registered only when a netmodel
/// is installed, so flat-mode metric output is byte-identical to worlds
/// that predate the network model.
pub(crate) struct NetObs {
    bytes_on_link: CounterId,
    link_queue_us: HistId,
    congested_sends: CounterId,
    routed_sends: CounterId,
    drops: CounterId,
    bisection_bytes: CounterId,
    /// Last observed [`NetModel::bisection_bytes`], to turn the model's
    /// cumulative count into registry increments.
    prev_bisection: u64,
}

/// Everything in the world except the program objects. Syscalls (via
/// [`Sys`]) operate on this; the [`World`] wrapper owns the programs and
/// runs the loop.
pub struct WorldCore {
    // A hierarchical timer wheel: the short-deadline RPC timer population
    // (retransmits, handler slots, housekeeping) lands in the wheel arrays;
    // far-future deadlines sit in its internal overflow heap.
    pub(crate) engine: TimerWheel<SimEvent>,
    pub(crate) topo: Topology,
    pub(crate) latency: LatencyModel,
    pub(crate) rng: SimRng,
    pub(crate) trace: TraceLog,
    pub(crate) config: OsConfig,
    pub(crate) hosts: Vec<HostState>,
    pub(crate) conns: HashMap<ConnId, Connection>,
    pub(crate) next_conn: u64,
    pub(crate) services: HashMap<String, ServiceEntry>,
    pub(crate) pending_programs: Vec<(ProcKey, Box<dyn Program>)>,
    /// Kernel events coalescing toward the same LPM wakeup: the first
    /// event schedules the flush; events queued before it ride along in
    /// one batch frame.
    pub(crate) pending_kernel: HashMap<ProcKey, Vec<KernelMsg>>,
    /// Metrics, spans and the per-program registry hub.
    pub(crate) obs: ObsHub,
    /// Probabilistic wire faults from an installed fault plan. `None`
    /// (the default) leaves the send path untouched.
    pub(crate) faults: Option<WireFaults>,
    /// The bandwidth- and topology-aware network model. `None` (the
    /// default) keeps the flat `hop_base + per_byte` wire law and its
    /// exact RNG draw order — worlds without a topology are byte-for-byte
    /// identical to pre-netmodel runs.
    pub(crate) net: Option<NetModel>,
    /// `net.*` metric ids, present iff `net` is.
    pub(crate) net_obs: Option<NetObs>,
    /// Bumped whenever reachability may have changed (link cut/heal,
    /// named net-link cut/heal, host crash/restart). Programs compare it
    /// against a remembered value to revalidate cached routes.
    pub(crate) net_epoch: u64,
    /// The world seed, kept so a late-installed netmodel can derive its
    /// own loss stream from it.
    pub(crate) seed: u64,
}

impl WorldCore {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The latency model in force.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// The OS constants in force.
    pub fn os_config(&self) -> &OsConfig {
        &self.config
    }

    /// The trace log.
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Mutable trace log (to toggle recording or clear).
    pub fn trace_mut(&mut self) -> &mut TraceLog {
        &mut self.trace
    }

    /// The observability hub: world metrics, spans, program registries.
    pub fn obs(&self) -> &ObsHub {
        &self.obs
    }

    /// Mutable hub (to enable span recording or register a registry).
    pub fn obs_mut(&mut self) -> &mut ObsHub {
        &mut self.obs
    }

    /// Timer-queue statistics of the engine (occupancy, overflow depth).
    pub fn engine_stats(&self) -> ppm_simnet::engine::QueueStats {
        self.engine.stats()
    }

    /// The installed network model, if any.
    pub fn net(&self) -> Option<&NetModel> {
        self.net.as_ref()
    }

    /// The reachability epoch: bumped on every link cut/heal, named
    /// net-link cut/heal, and host crash/restart.
    pub fn net_epoch(&self) -> u64 {
        self.net_epoch
    }

    /// Whether hosts `a` and `b` can currently exchange traffic — the
    /// send-path reachability programs use to validate cached routes.
    pub fn edge_up(&self, a: HostId, b: HostId) -> bool {
        if !self.host_up(a) {
            return false;
        }
        if a == b {
            return true;
        }
        matches!(self.route_state(a, b), RouteState::Hops(_))
    }

    /// The kernel of a host.
    ///
    /// # Panics
    ///
    /// Panics on an unknown host id.
    pub fn kernel(&self, host: HostId) -> &Kernel {
        &self.hosts[host.0 as usize].kernel
    }

    /// Mutable kernel of a host (benchmark hooks such as
    /// [`Kernel::set_load_avg`]).
    pub fn kernel_mut(&mut self, host: HostId) -> &mut Kernel {
        &mut self.hosts[host.0 as usize].kernel
    }

    /// Looks a host up by name.
    pub fn host_by_name(&self, name: &str) -> Option<HostId> {
        self.topo.host_by_name(name)
    }

    /// The name of a host.
    pub fn host_name(&self, host: HostId) -> &str {
        &self.topo.spec(host).name
    }

    /// All connections (for the IPC-statistics tool and tests).
    pub fn connections(&self) -> impl Iterator<Item = &Connection> {
        let mut ids: Vec<ConnId> = self.conns.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter().map(move |id| &self.conns[&id])
    }

    /// One connection by id.
    pub fn connection(&self, id: ConnId) -> Option<&Connection> {
        self.conns.get(&id)
    }

    pub(crate) fn tracef(&mut self, host: Option<HostId>, cat: TraceCategory, text: String) {
        let now = self.engine.now();
        self.trace.record(now, host, cat, text);
    }

    fn host(&self, id: HostId) -> &HostState {
        &self.hosts[id.0 as usize]
    }

    fn host_mut(&mut self, id: HostId) -> &mut HostState {
        &mut self.hosts[id.0 as usize]
    }

    pub(crate) fn host_up(&self, id: HostId) -> bool {
        self.topo.is_up(id)
    }

    /// True when the process exists and is alive.
    pub fn is_alive(&self, key: ProcKey) -> bool {
        self.host_up(key.0)
            && self
                .host(key.0)
                .kernel
                .get(key.1)
                .is_some_and(|p| p.is_alive())
    }

    /// Scales a nominal (idle reference machine) CPU cost to this host's
    /// class and current load, with jitter.
    pub(crate) fn scaled_cpu_cost(&mut self, host: HostId, nominal: SimDuration) -> SimDuration {
        let cpu = self.topo.spec(host).cpu;
        let la = self.host(host).kernel.load_avg();
        let scaled = nominal.mul_f64(self.latency.cpu_scale(cpu, la));
        let jitter = self.config.cost_jitter;
        self.rng.jitter(scaled, jitter)
    }

    // ---- process management -------------------------------------------

    /// Creates a process on `host` under `parent`. Returns its pid; the
    /// program (if any) starts after the fork+exec delay.
    pub(crate) fn spawn(
        &mut self,
        host: HostId,
        parent: Pid,
        uid: Uid,
        spec: SpawnSpec,
        cost_override: Option<SimDuration>,
    ) -> Result<Pid, SysError> {
        if !self.host_up(host) {
            return Err(SysError::HostDown);
        }
        let now = self.now();
        let pid = self.host_mut(host).kernel.alloc_pid();
        let mut proc = Process::new(pid, parent, uid, spec.command.clone(), now);
        proc.cpu_bound = spec.cpu_bound;
        // Descendant tracking: a traced parent's children are traced by the
        // same LPM with the same flags ("Adoption allows the LPM to keep
        // track of a process and its descendants").
        let (inherit_tracer, inherit_flags, parent_traced) = {
            let k = &self.host(host).kernel;
            match k.get(parent).filter(|p| p.is_alive()) {
                Some(pp) => (pp.tracer, pp.trace_flags, pp.is_adopted()),
                None => (None, TraceFlags::NONE, false),
            }
        };
        proc.tracer = inherit_tracer;
        proc.trace_flags = inherit_flags;
        self.host_mut(host).kernel.insert(proc);
        if parent_traced {
            self.emit_kernel_event(host, KernelEvent::Fork { parent, child: pid });
        }
        let cost = match cost_override {
            Some(c) => c,
            None => {
                let nominal = self.config.spawn_cost;
                self.scaled_cpu_cost(host, nominal)
            }
        };
        self.engine.schedule(cost, SimEvent::Start((host, pid)));
        if let Some(program) = spec.program {
            self.pending_programs.push(((host, pid), program));
        }
        self.tracef(
            Some(host),
            TraceCategory::Kernel,
            format!(
                "fork+exec pid {pid} ({}) by {parent}, ready in {cost}",
                spec.command
            ),
        );
        Ok(pid)
    }

    /// Starts a registered service on `host` if not already running.
    /// Returns its pid and well-known port.
    pub(crate) fn spawn_service(
        &mut self,
        host: HostId,
        name: &str,
    ) -> Result<(Pid, Port), SysError> {
        if !self.host_up(host) {
            return Err(SysError::HostDown);
        }
        let port = match self.services.get(name) {
            Some(e) => e.port,
            None => return Err(SysError::UnknownService),
        };
        if let Some(&pid) = self.host(host).services.get(name) {
            if self.is_alive((host, pid)) {
                return Ok((pid, port));
            }
        }
        let program = (self.services[name].factory)(host);
        let spec = SpawnSpec::new(name.to_string(), program);
        let pid = self.spawn(host, Pid::INIT, Uid::ROOT, spec, None)?;
        self.host_mut(host).services.insert(name.to_string(), pid);
        self.tracef(
            Some(host),
            TraceCategory::Daemon,
            format!("service {name} started as pid {pid} (port {port})"),
        );
        Ok((pid, port))
    }

    /// Terminates a process: exit bookkeeping, kernel event, connection
    /// teardown, parent notification.
    pub(crate) fn do_exit(&mut self, key: ProcKey, status: ExitStatus) {
        let (host, pid) = key;
        if !self.host_up(host) || !self.is_alive(key) {
            return;
        }
        let now = self.now();
        let orphans = self.host_mut(host).kernel.finish_exit(pid, status, now);
        let _ = orphans;
        let (rusage, ppid) = {
            let p = self.host(host).kernel.get(pid).expect("just exited");
            (p.rusage, p.ppid)
        };
        self.tracef(
            Some(host),
            TraceCategory::Kernel,
            format!("pid {pid} {status}"),
        );
        self.emit_kernel_event(
            host,
            KernelEvent::Exit {
                pid,
                status,
                rusage,
            },
        );
        // Tear down listeners and service registrations owned by the process.
        {
            let hs = self.host_mut(host);
            hs.listeners.retain(|_, &mut owner| owner != pid);
            hs.services.retain(|_, &mut owner| owner != pid);
        }
        // Close connections with this process as an endpoint.
        let mut ids: Vec<ConnId> = self
            .conns
            .values()
            .filter(|c| c.state != ConnState::Closed && c.touches_proc(host, pid))
            .map(|c| c.id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            self.break_conn(id, key);
        }
        // Notify the parent program, if it is alive and interested.
        if ppid != pid && self.is_alive((host, ppid)) {
            let delay = self.config.child_exit_latency;
            self.engine.schedule(
                delay,
                SimEvent::ChildExit {
                    parent: (host, ppid),
                    child: pid,
                    status,
                },
            );
        }
    }

    /// Emits a kernel event about a process on `host` toward its tracer,
    /// subject to the tracing flags, with Table 1 latency.
    pub(crate) fn emit_kernel_event(&mut self, host: HostId, ev: KernelEvent) {
        let pid = ev.pid();
        let (tracer, flags) = match self.host(host).kernel.get(pid) {
            Some(p) => (p.tracer, p.trace_flags),
            None => return,
        };
        let Some(tracer) = tracer else { return };
        if !flags.contains(ev.required_flag()) {
            return;
        }
        if tracer == pid {
            return; // an LPM does not report itself to itself
        }
        if !self.is_alive((host, tracer)) {
            return;
        }
        let key = (host, tracer);
        let now = self.now();
        let msg = KernelMsg {
            event: ev,
            queued_at: now,
        };
        self.obs.note_kernel_event();
        let starts_batch = self
            .pending_kernel
            .get(&key)
            .is_none_or(|pending| pending.is_empty());
        if starts_batch {
            self.obs.note_kernel_wakeup();
            // First event of the wakeup pays the Table 1 latency and arms
            // the flush.
            let cpu = self.topo.spec(host).cpu;
            let la = self.host(host).kernel.load_avg();
            let base = self.latency.kernel_msg(cpu, la, msg.event.wire_size());
            let jf = self.latency.jitter_fraction;
            let delay = self.rng.jitter(base, jf);
            self.tracef(
                Some(host),
                TraceCategory::Kernel,
                format!(
                    "event {} pid {pid} -> lpm {tracer} ({} bytes, {delay})",
                    msg.event.kind(),
                    msg.event.wire_size()
                ),
            );
            self.pending_kernel.entry(key).or_default().push(msg);
            self.engine
                .schedule(delay, SimEvent::KernelFlush { to: key });
        } else {
            // A flush toward this LPM is already in flight: coalesce into
            // the same batch frame, one delivery for the burst.
            self.tracef(
                Some(host),
                TraceCategory::Kernel,
                format!(
                    "event {} pid {pid} -> lpm {tracer} ({} bytes, batched)",
                    msg.event.kind(),
                    msg.event.wire_size()
                ),
            );
            self.pending_kernel.entry(key).or_default().push(msg);
        }
    }

    /// Posts a signal from `from_uid` to a process (local or remote host —
    /// the kernel side; permission is checked here).
    pub(crate) fn post_signal(
        &mut self,
        from_uid: Uid,
        target: ProcKey,
        signal: Signal,
    ) -> Result<(), SysError> {
        if !self.host_up(target.0) {
            return Err(SysError::HostDown);
        }
        let p = self.host(target.0).kernel.live(target.1)?;
        if p.uid != from_uid && !from_uid.is_root() {
            return Err(SysError::PermissionDenied);
        }
        let delay = self.config.signal_latency;
        let jf = self.config.cost_jitter;
        let delay = self.rng.jitter(delay, jf);
        self.engine
            .schedule(delay, SimEvent::SignalDeliver { to: target, signal });
        Ok(())
    }

    // ---- networking ----------------------------------------------------

    /// Binds a listener.
    pub(crate) fn listen(&mut self, key: ProcKey, port: Port) -> Result<(), SysError> {
        let (host, pid) = key;
        if !self.host_up(host) {
            return Err(SysError::HostDown);
        }
        if self.host(host).listeners.contains_key(&port) {
            return Err(SysError::PortInUse);
        }
        self.host_mut(host).listeners.insert(port, pid);
        if let Ok(p) = self.host_mut(host).kernel.live_mut(pid) {
            p.fds.alloc(FdKind::Listener { port });
        }
        self.tracef(
            Some(host),
            TraceCategory::Net,
            format!("pid {pid} listening on {port}"),
        );
        Ok(())
    }

    /// Initiates a connection; completion is reported via `ConnEvent`.
    pub(crate) fn connect(
        &mut self,
        from: ProcKey,
        target: HostId,
        port: Port,
    ) -> Result<ConnId, SysError> {
        if (target.0 as usize) >= self.hosts.len() {
            return Err(SysError::NoSuchHost);
        }
        let id = ConnId(self.next_conn);
        self.next_conn += 1;
        let now = self.now();
        let reach = self.route_state(from.0, target);
        match reach {
            RouteState::HostDown | RouteState::Unreachable => {
                // SYN goes nowhere; timeout later.
                let reason = if matches!(reach, RouteState::HostDown) {
                    SysError::HostDown
                } else {
                    SysError::Unreachable
                };
                let delay = self.config.connect_timeout;
                // Connection record kept so a late close() is harmless.
                let mut c = Connection::new(id, from, (target, Pid::INIT), port, now);
                c.state = ConnState::Closed;
                c.stats.closed_at = Some(now);
                self.conns.insert(id, c);
                self.engine.schedule(
                    delay,
                    SimEvent::ConnFailed {
                        conn: id,
                        to: from,
                        reason,
                    },
                );
                Ok(id)
            }
            RouteState::Hops(hops) => {
                let server_pid = match self.host(target).listeners.get(&port) {
                    Some(&pid) => pid,
                    None => {
                        // RST: refused after one round trip.
                        let rtt = self.rtt(hops, from.0, target, self.config.handshake_bytes);
                        let mut c = Connection::new(id, from, (target, Pid::INIT), port, now);
                        c.state = ConnState::Closed;
                        c.stats.closed_at = Some(now);
                        self.conns.insert(id, c);
                        self.engine.schedule(
                            rtt,
                            SimEvent::ConnFailed {
                                conn: id,
                                to: from,
                                reason: SysError::ConnectionRefused,
                            },
                        );
                        return Ok(id);
                    }
                };
                let c = Connection::new(id, from, (target, server_pid), port, now);
                self.conns.insert(id, c);
                if let Ok(p) = self.host_mut(from.0).kernel.live_mut(from.1) {
                    p.fds.alloc(FdKind::Socket { conn: id });
                }
                let rtt = self.rtt(hops, from.0, target, self.config.handshake_bytes);
                self.engine
                    .schedule(rtt, SimEvent::ConnEstablish { conn: id });
                self.tracef(
                    Some(from.0),
                    TraceCategory::Net,
                    format!(
                        "pid {} connecting to {}{port} ({hops} hops, {id})",
                        from.1,
                        self.host_name(target)
                    ),
                );
                Ok(id)
            }
        }
    }

    fn rtt(&mut self, hops: u32, a: HostId, b: HostId, bytes: usize) -> SimDuration {
        let one_way = self.one_way(hops, a, b, bytes);
        let jf = self.latency.jitter_fraction;
        let d = SimDuration::from_micros(one_way.as_micros() * 2);
        self.rng.jitter(d, jf)
    }

    /// Uncontended one-way wire time between two hosts. Flat worlds use
    /// the latency model's `hop_base + per_byte` law; routed worlds price
    /// the canonical route (per-link latency + serialization) without
    /// touching the contention ledgers — control traffic (handshakes,
    /// closes) never perturbs congestion state. Local IPC (`hops == 0`)
    /// always uses the flat law.
    fn one_way(&self, hops: u32, a: HostId, b: HostId, bytes: usize) -> SimDuration {
        if hops > 0 {
            if let Some(net) = &self.net {
                if let Some(us) = net.wire_uncontended(a.0, b.0, bytes as u64) {
                    return SimDuration::from_micros(us);
                }
            }
        }
        self.latency.wire(hops, bytes)
    }

    /// Whether a connection is deliverable right now: `from` is an
    /// endpoint, the connection is established, and the link to the peer
    /// is routable. Unlike [`WorldCore::send`], a dead route here is
    /// reported immediately instead of succeeding locally and breaking
    /// after the detection interval — this is the send-time liveness
    /// check programs use to validate cached next-hops.
    pub(crate) fn conn_alive(&self, from: ProcKey, conn: ConnId) -> bool {
        let Some(c) = self.conns.get(&conn) else {
            return false;
        };
        if !c.has_endpoint(from) || c.state != ConnState::Established {
            return false;
        }
        let peer = c.peer_of(from).expect("endpoint checked");
        matches!(self.route_state(from.0, peer.0), RouteState::Hops(_))
    }

    /// Sends bytes on an established connection. Returns `Ok` when the
    /// local write succeeds (TCP semantics); breakage discovered later is
    /// reported via a `Closed` event.
    pub(crate) fn send(
        &mut self,
        from: ProcKey,
        conn: ConnId,
        data: Bytes,
    ) -> Result<(), SysError> {
        let (peer, state) = match self.conns.get(&conn) {
            Some(c) if c.has_endpoint(from) => (c.peer_of(from).expect("endpoint"), c.state),
            Some(_) => return Err(SysError::NotConnected),
            None => return Err(SysError::NotConnected),
        };
        match state {
            ConnState::Connecting => return Err(SysError::NotConnected),
            ConnState::Closed => return Err(SysError::ConnectionClosed),
            ConnState::Established => {}
        }
        let len = data.len();
        // Sender-side accounting and tracing.
        {
            let k = &mut self.host_mut(from.0).kernel;
            if let Ok(p) = k.live_mut(from.1) {
                p.rusage.msgs_sent += 1;
                p.rusage.bytes_sent += len as u64;
            }
        }
        self.emit_kernel_event(
            from.0,
            KernelEvent::MsgSent {
                pid: from.1,
                bytes: len,
            },
        );
        let reach = self.route_state(from.0, peer.0);
        let hops = match reach {
            RouteState::Hops(h) => h,
            RouteState::HostDown | RouteState::Unreachable => {
                // Write succeeds locally; breakage surfaces after the
                // detection interval.
                let jf = self.config.cost_jitter;
                let base = self.config.break_detection;
                let delay = self.rng.jitter(base, jf);
                self.mark_closed(conn);
                self.engine
                    .schedule(delay, SimEvent::ConnClosedNotify { conn, to: from });
                self.tracef(
                    Some(from.0),
                    TraceCategory::Net,
                    format!("send on {conn} lost (peer unreachable); breakage pending"),
                );
                return Ok(());
            }
        };
        let jf = self.latency.jitter_fraction;
        // Routed worlds price the transfer over the canonical route —
        // per-link latency plus contention-scaled serialization — instead
        // of the flat wire law. Local IPC always stays flat.
        let now_us = self.engine.now().as_micros();
        let routed = match &mut self.net {
            Some(net) if hops > 0 => Some(net.transfer(from.0 .0, peer.0 .0, len as u64, now_us)),
            _ => None,
        };
        let base = match routed {
            None => self.latency.wire(hops, len),
            Some(Transfer::Deliver {
                total_us,
                queue_us,
                links,
            }) => {
                self.note_net_send(len as u64, queue_us, links);
                SimDuration::from_micros(total_us)
            }
            Some(Transfer::Dropped) => {
                // A lossy link ate it: the write succeeded locally,
                // nothing arrives, recovery is up to the RPC retries.
                self.note_net_drop();
                self.tracef(
                    Some(from.0),
                    TraceCategory::Net,
                    format!("net: message on {conn} dropped (lossy link)"),
                );
                return Ok(());
            }
            Some(Transfer::Unreachable) => {
                // `route_state` consulted the same table just above, so
                // this cannot fire today; handle it like any dead route.
                let base = self.config.break_detection;
                let delay = self.rng.jitter(base, self.config.cost_jitter);
                self.mark_closed(conn);
                self.engine
                    .schedule(delay, SimEvent::ConnClosedNotify { conn, to: from });
                return Ok(());
            }
        };
        let delay = self.rng.jitter(base, jf);
        // Fault-plan wire rules ride a dedicated RNG stream, so the
        // latency jitter sequence above is identical with or without an
        // installed plan.
        let fate = match self.faults.as_mut() {
            Some(f) => {
                let now = self.engine.now();
                let from_name = &self.topo.spec(from.0).name;
                let to_name = &self.topo.spec(peer.0).name;
                f.decide(from_name, to_name, now)
            }
            None => WireDecision::default(),
        };
        if fate.fired > 0 {
            self.obs.note_faults(u64::from(fate.fired));
        }
        if fate.drop {
            // Silent loss: the sender's write succeeded, nothing arrives,
            // and recovery is up to the RPC retry machinery.
            self.tracef(
                Some(from.0),
                TraceCategory::Net,
                format!("fault: message on {conn} dropped"),
            );
            return Ok(());
        }
        let delay = SimDuration::from_micros(delay.as_micros() + fate.extra.as_micros());
        let c = self.conns.get_mut(&conn).expect("checked above");
        let dir = c.record_send(from, len);
        let mut arrival = self.engine.now() + delay;
        if arrival < c.next_arrival[dir] {
            arrival = c.next_arrival[dir];
        }
        c.next_arrival[dir] = arrival + SimDuration::from_micros(1);
        if let Some(skew) = fate.reorder {
            // Land past the slot without raising the FIFO floor, so later
            // traffic in the same direction overtakes this message.
            arrival += skew;
        }
        if fate.dup {
            self.engine.schedule_at(
                arrival + delay.max(SimDuration::from_micros(1)),
                SimEvent::Deliver {
                    conn,
                    to: peer,
                    data: data.clone(),
                },
            );
        }
        self.engine.schedule_at(
            arrival,
            SimEvent::Deliver {
                conn,
                to: peer,
                data,
            },
        );
        Ok(())
    }

    /// Closes a connection from one side; the peer is notified. Like a
    /// TCP FIN, the notification is ordered after data already in flight
    /// toward the peer.
    pub(crate) fn close(&mut self, from: ProcKey, conn: ConnId) -> Result<(), SysError> {
        let (peer, state, dir_floor) = match self.conns.get(&conn) {
            Some(c) if c.has_endpoint(from) => {
                let peer = c.peer_of(from).expect("endpoint");
                let dir = if peer == c.server { 1 } else { 0 };
                (peer, c.state, c.next_arrival[dir])
            }
            _ => return Err(SysError::NotConnected),
        };
        if state == ConnState::Closed {
            return Ok(());
        }
        self.mark_closed(conn);
        if let RouteState::Hops(hops) = self.route_state(from.0, peer.0) {
            let jf = self.latency.jitter_fraction;
            let base = self.one_way(hops, from.0, peer.0, 32);
            let delay = self.rng.jitter(base, jf);
            let mut at = self.engine.now() + delay;
            if at < dir_floor {
                at = dir_floor;
            }
            self.engine
                .schedule_at(at, SimEvent::ConnClosedNotify { conn, to: peer });
        }
        Ok(())
    }

    /// Marks a connection closed and schedules a close notification to the
    /// peer of `dead_end`'s counterpart (used on process exit).
    fn break_conn(&mut self, conn: ConnId, dead_end: ProcKey) {
        let peer = {
            let c = &self.conns[&conn];
            c.peer_of(dead_end)
        };
        self.mark_closed(conn);
        if let Some(peer) = peer {
            if let RouteState::Hops(hops) = self.route_state(dead_end.0, peer.0) {
                let jf = self.latency.jitter_fraction;
                let base = self.one_way(hops, dead_end.0, peer.0, 32);
                let delay = self.rng.jitter(base, jf);
                self.engine
                    .schedule(delay, SimEvent::ConnClosedNotify { conn, to: peer });
            }
        }
    }

    /// Records one routed delivery into the `net.*` metrics.
    fn note_net_send(&mut self, bytes: u64, queue_us: u64, links: u32) {
        let Some(ids) = &mut self.net_obs else {
            return;
        };
        self.obs
            .registry
            .add(ids.bytes_on_link, bytes * u64::from(links));
        self.obs.registry.record(ids.link_queue_us, queue_us);
        if queue_us > 0 {
            self.obs.registry.inc(ids.congested_sends);
        }
        self.obs.registry.inc(ids.routed_sends);
        let bis = self.net.as_ref().map_or(0, |n| n.bisection_bytes);
        self.obs
            .registry
            .add(ids.bisection_bytes, bis - ids.prev_bisection);
        ids.prev_bisection = bis;
    }

    /// Records one lossy-link drop into the `net.*` metrics. The bytes
    /// still occupied the links up to the drop, so the bisection count is
    /// synced here too.
    fn note_net_drop(&mut self) {
        let Some(ids) = &mut self.net_obs else {
            return;
        };
        self.obs.registry.inc(ids.drops);
        self.obs.registry.inc(ids.routed_sends);
        let bis = self.net.as_ref().map_or(0, |n| n.bisection_bytes);
        self.obs
            .registry
            .add(ids.bisection_bytes, bis - ids.prev_bisection);
        ids.prev_bisection = bis;
    }

    pub(crate) fn mark_closed(&mut self, conn: ConnId) {
        let now = self.now();
        if let Some(c) = self.conns.get_mut(&conn) {
            if c.state != ConnState::Closed {
                c.state = ConnState::Closed;
                c.stats.closed_at = Some(now);
            }
        }
    }

    fn route_state(&self, a: HostId, b: HostId) -> RouteState {
        if !self.host_up(b) {
            return RouteState::HostDown;
        }
        // A netmodel can sever the *physical* path (e.g. a pod cut off
        // the fat-tree core) even while the logical topology still lists
        // the hosts as linked.
        if let Some(net) = &self.net {
            if a != b && !net.reachable(a.0, b.0) {
                return RouteState::Unreachable;
            }
        }
        match self.topo.hops(a, b) {
            Some(h) => RouteState::Hops(h),
            None => RouteState::Unreachable,
        }
    }

    pub(crate) fn take_pending_programs(&mut self) -> Vec<(ProcKey, Box<dyn Program>)> {
        std::mem::take(&mut self.pending_programs)
    }

    // ---- stable storage -------------------------------------------------

    pub(crate) fn stable_put(&mut self, host: HostId, key: String, value: Bytes) {
        self.host_mut(host).stable.insert(key, value);
    }

    pub(crate) fn stable_get(&self, host: HostId, key: &str) -> Option<Bytes> {
        self.host(host).stable.get(key).cloned()
    }

    pub(crate) fn stable_del(&mut self, host: HostId, key: &str) {
        self.host_mut(host).stable.remove(key);
    }

    /// Reads a host's stable-storage record (the facade's inspection
    /// channel; see [`ppm_runtime::rt::Runtime::stable_get`]).
    pub fn stable_get_pub(&self, host: HostId, key: &str) -> Option<Bytes> {
        self.stable_get(host, key)
    }
}

#[derive(Debug, Clone, Copy)]
enum RouteState {
    Hops(u32),
    HostDown,
    Unreachable,
}

/// The complete simulation: [`WorldCore`] plus the program objects.
pub struct World {
    core: WorldCore,
    programs: HashMap<ProcKey, Box<dyn Program>>,
    /// Events deferred because their target process was stopped.
    deferred: HashMap<ProcKey, Vec<SimEvent>>,
}

impl fmt::Debug for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("now", &self.core.now())
            .field("hosts", &self.core.hosts.len())
            .field("programs", &self.programs.len())
            .field("connections", &self.core.conns.len())
            .field("pending_events", &self.core.engine.pending())
            .finish()
    }
}

impl World {
    /// Creates an empty world with default config and the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self::with_config(OsConfig::default(), LatencyModel::default(), seed)
    }

    /// Creates a world with explicit OS constants and latency model.
    pub fn with_config(config: OsConfig, latency: LatencyModel, seed: u64) -> Self {
        World {
            core: WorldCore {
                engine: TimerWheel::new(),
                topo: Topology::new(),
                latency,
                rng: SimRng::seed_from(seed),
                trace: TraceLog::new(),
                config,
                hosts: Vec::new(),
                conns: HashMap::new(),
                next_conn: 1,
                services: HashMap::new(),
                pending_programs: Vec::new(),
                pending_kernel: HashMap::new(),
                obs: ObsHub::new(),
                faults: None,
                net: None,
                net_obs: None,
                net_epoch: 0,
                seed,
            },
            programs: HashMap::new(),
            deferred: HashMap::new(),
        }
    }

    /// Shared state accessor.
    pub fn core(&self) -> &WorldCore {
        &self.core
    }

    /// Mutable shared state accessor (benchmark hooks, trace control).
    pub fn core_mut(&mut self) -> &mut WorldCore {
        &mut self.core
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.core.now()
    }

    /// Registers a service so inetd can start it on any host.
    ///
    /// # Panics
    ///
    /// Panics if the service name or port is already registered.
    pub fn register_service(
        &mut self,
        name: impl Into<String>,
        port: Port,
        factory: ServiceFactory,
    ) {
        let name = name.into();
        assert!(
            !self.core.services.contains_key(&name),
            "service {name:?} already registered"
        );
        assert!(
            !self.core.services.values().any(|e| e.port == port),
            "service port {port} already registered"
        );
        self.core
            .services
            .insert(name, ServiceEntry { port, factory });
    }

    /// Adds a host running the standard daemons (inetd) and returns its id.
    pub fn add_host(&mut self, spec: HostSpec) -> HostId {
        let id = self.core.topo.add_host(spec);
        self.core.hosts.push(HostState {
            kernel: Kernel::new(self.core.now()),
            listeners: HashMap::new(),
            services: HashMap::new(),
            stable: HashMap::new(),
            prev_services: Vec::new(),
        });
        self.boot_daemons(id);
        let tick = self.core.config.load_tick;
        self.core.engine.schedule(tick, SimEvent::LoadTick(id));
        id
    }

    fn boot_daemons(&mut self, host: HostId) {
        let boot = self.core.config.daemon_boot_cost;
        let spec = SpawnSpec::new("inetd", Box::new(crate::inetd::Inetd::new()));
        self.core
            .spawn(host, Pid::INIT, Uid::ROOT, spec, Some(boot))
            .expect("host is up during boot");
        self.drain_pending();
    }

    /// Adds an undirected link.
    pub fn add_link(&mut self, a: HostId, b: HostId) {
        self.core.topo.add_link(a, b);
    }

    /// Installs the bandwidth- and topology-aware network model. Call
    /// after every host has been added: the spec's links are resolved
    /// against the world's host names (in host-id order). From here on,
    /// remote deliveries are priced over the canonical route — per-link
    /// latency plus fair-share serialization — instead of the flat wire
    /// law, and the `net.*` metrics are registered.
    ///
    /// # Errors
    ///
    /// Returns the spec/graph error message (unknown endpoint, name
    /// collision); the world is unchanged in that case.
    pub fn install_netmodel(&mut self, spec: &NetSpec) -> Result<(), String> {
        let host_names: Vec<String> = self
            .core
            .topo
            .host_ids()
            .map(|h| self.core.topo.spec(h).name.clone())
            .collect();
        let net = NetModel::build(spec, &host_names, self.core.seed)?;
        let reg = &mut self.core.obs.registry;
        self.core.net_obs = Some(NetObs {
            bytes_on_link: reg.counter("net.bytes_on_link"),
            link_queue_us: reg.hist("net.link_queue_us"),
            congested_sends: reg.counter("net.congested_sends"),
            routed_sends: reg.counter("net.routed_sends"),
            drops: reg.counter("net.drops"),
            bisection_bytes: reg.counter("net.bisection_bytes"),
            prev_bisection: 0,
        });
        self.core.tracef(
            None,
            TraceCategory::Net,
            format!(
                "netmodel {} installed ({} hosts, {} switches, {} links)",
                net.name,
                host_names.len(),
                net.graph.node_names.len() - host_names.len(),
                net.graph.links.len(),
            ),
        );
        self.core.net = Some(net);
        Ok(())
    }

    /// Spawns a user process (as if from a login shell) with `Pid::INIT`
    /// as parent. Returns the pid.
    ///
    /// # Errors
    ///
    /// Returns [`SysError::HostDown`] if the host is down.
    pub fn spawn_user(&mut self, host: HostId, uid: Uid, spec: SpawnSpec) -> Result<Pid, SysError> {
        let pid = self.core.spawn(host, Pid::INIT, uid, spec, None)?;
        self.drain_pending();
        Ok(pid)
    }

    /// Schedules a host crash at `delay` from now.
    pub fn schedule_crash(&mut self, host: HostId, delay: SimDuration) {
        self.core.engine.schedule(delay, SimEvent::HostCrash(host));
    }

    /// Schedules a host restart at `delay` from now.
    pub fn schedule_restart(&mut self, host: HostId, delay: SimDuration) {
        self.core
            .engine
            .schedule(delay, SimEvent::HostRestart(host));
    }

    /// Schedules a link state change (partition / heal) at `delay` from now.
    pub fn schedule_link(&mut self, a: HostId, b: HostId, up: bool, delay: SimDuration) {
        self.core
            .engine
            .schedule(delay, SimEvent::LinkSet(a, b, up));
    }

    /// Installs a fault plan: schedules its timed faults on the event
    /// engine (plan times are absolute; past times fire immediately) and
    /// arms its probabilistic wire rules on a dedicated RNG stream. Every
    /// scheduled fault counts into the world's `faults.injected` counter
    /// up front; wire faults count as they fire.
    ///
    /// # Errors
    ///
    /// Returns a message naming any host the plan references but the
    /// world does not have; nothing is scheduled in that case.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), String> {
        let resolve = |core: &WorldCore, name: &str| {
            core.host_by_name(name)
                .ok_or_else(|| format!("fault plan references unknown host {name:?}"))
        };
        // Validate every host first so a bad plan is all-or-nothing.
        for ev in &plan.events {
            match &ev.kind {
                FaultKind::Crash { host }
                | FaultKind::Restart { host }
                | FaultKind::Kill { host, .. } => {
                    resolve(&self.core, host)?;
                }
                FaultKind::LinkDown { a, b } | FaultKind::LinkUp { a, b } => {
                    resolve(&self.core, a)?;
                    resolve(&self.core, b)?;
                }
                FaultKind::NetLinkDown { link } | FaultKind::NetLinkUp { link } => {
                    match &self.core.net {
                        Some(net) if net.graph.link_by_name(link).is_some() => {}
                        Some(_) => {
                            return Err(format!("fault plan references unknown net link {link:?}"));
                        }
                        None => {
                            return Err(format!(
                                "fault plan cuts net link {link:?} but no topology model is installed"
                            ));
                        }
                    }
                }
            }
        }
        let now = self.core.now();
        for ev in &plan.events {
            let delay = ev.at.saturating_since(now);
            match &ev.kind {
                FaultKind::Crash { host } => {
                    let h = resolve(&self.core, host).expect("validated");
                    self.schedule_crash(h, delay);
                }
                FaultKind::Restart { host } => {
                    let h = resolve(&self.core, host).expect("validated");
                    self.schedule_restart(h, delay);
                }
                FaultKind::LinkDown { a, b } => {
                    let ha = resolve(&self.core, a).expect("validated");
                    let hb = resolve(&self.core, b).expect("validated");
                    self.schedule_link(ha, hb, false, delay);
                }
                FaultKind::LinkUp { a, b } => {
                    let ha = resolve(&self.core, a).expect("validated");
                    let hb = resolve(&self.core, b).expect("validated");
                    self.schedule_link(ha, hb, true, delay);
                }
                FaultKind::NetLinkDown { link } | FaultKind::NetLinkUp { link } => {
                    let idx = self
                        .core
                        .net
                        .as_ref()
                        .and_then(|n| n.graph.link_by_name(link))
                        .expect("validated");
                    let up = matches!(&ev.kind, FaultKind::NetLinkUp { .. });
                    self.core
                        .engine
                        .schedule(delay, SimEvent::NetLinkSet(idx, up));
                }
                FaultKind::Kill { host, command } => {
                    let h = resolve(&self.core, host).expect("validated");
                    self.core
                        .engine
                        .schedule(delay, SimEvent::KillCmd(h, command.clone()));
                }
            }
        }
        if !plan.events.is_empty() {
            self.core.obs.note_faults(plan.events.len() as u64);
        }
        let wire = WireFaults::new(plan);
        if !wire.is_empty() {
            self.core.faults = Some(wire);
        }
        Ok(())
    }

    /// Sends a signal "from outside" (e.g. a test acting as the user at a
    /// terminal) with the given credentials.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's permission and liveness checks.
    pub fn post_signal(
        &mut self,
        from_uid: Uid,
        target: ProcKey,
        signal: Signal,
    ) -> Result<(), SysError> {
        self.core.post_signal(from_uid, target, signal)
    }

    /// Runs until the event queue is quiet at or before `horizon`, then
    /// advances the clock to `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) {
        while let Some((_, ev)) = self.core.engine.pop_until(horizon) {
            self.dispatch(ev);
        }
        self.core.engine.advance_to(horizon);
    }

    /// Runs for `d` of simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let horizon = self.core.now() + d;
        self.run_until(horizon);
    }

    /// Processes a single event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        match self.core.engine.pop() {
            Some((_, ev)) => {
                self.dispatch(ev);
                true
            }
            None => false,
        }
    }

    fn drain_pending(&mut self) {
        for (key, program) in self.core.take_pending_programs() {
            self.programs.insert(key, program);
        }
    }

    /// Invokes a program callback with syscall access, honouring busy and
    /// stopped states, and reaping the program if its process died.
    fn with_program(
        &mut self,
        key: ProcKey,
        reschedule: Option<SimEvent>,
        f: impl FnOnce(&mut dyn Program, &mut Sys<'_>),
    ) {
        if !self.core.is_alive(key) {
            return;
        }
        // Stopped processes accumulate events until continued.
        let state = self.core.hosts[key.0 .0 as usize]
            .kernel
            .get(key.1)
            .map(|p| (p.state, p.busy_until));
        if let Some((state, busy_until)) = state {
            if state == ProcState::Stopped {
                if let Some(ev) = reschedule {
                    self.deferred.entry(key).or_default().push(ev);
                }
                return;
            }
            if busy_until > self.core.now() {
                if let Some(ev) = reschedule {
                    self.core.engine.schedule_at(busy_until, ev);
                    return;
                }
            }
        }
        let Some(mut program) = self.programs.remove(&key) else {
            return;
        };
        {
            let mut sys = Sys::new(&mut self.core, key);
            f(program.as_mut(), &mut sys);
        }
        if self.core.is_alive(key) {
            self.programs.insert(key, program);
        }
        self.drain_pending();
        self.reap_dead_programs();
    }

    fn reap_dead_programs(&mut self) {
        // Cheap incremental reap: drop programs whose process is gone.
        // (Programs are only removed here and in crash handling, so scan
        // only when the map is small relative to the pending queue — in
        // practice key-by-key removal below suffices.)
        let dead: Vec<ProcKey> = self
            .programs
            .keys()
            .filter(|k| !self.core.is_alive(**k))
            .copied()
            .collect();
        let mut dead = dead;
        dead.sort_unstable();
        for k in dead {
            self.programs.remove(&k);
            self.deferred.remove(&k);
        }
    }

    fn dispatch(&mut self, ev: SimEvent) {
        match ev {
            SimEvent::Start(key) => {
                if !self.core.is_alive(key) {
                    return;
                }
                let (host, pid) = key;
                let command = {
                    let p = self.core.hosts[host.0 as usize]
                        .kernel
                        .get_mut(pid)
                        .expect("alive");
                    p.state = ProcState::Running;
                    p.command.clone()
                };
                self.core
                    .emit_kernel_event(host, KernelEvent::Exec { pid, command });
                self.with_program(key, None, |p, sys| p.on_start(sys));
            }
            SimEvent::Timer(key, token) => {
                let resched = SimEvent::Timer(key, token);
                self.with_program(key, Some(resched), |p, sys| p.on_timer(sys, token));
            }
            SimEvent::Deliver { conn, to, data } => {
                // Data already on the wire is delivered even if the
                // connection closed meanwhile (TCP delivers data queued
                // before a FIN); only never-established connections drop.
                let alive_conn = self
                    .core
                    .conns
                    .get(&conn)
                    .is_some_and(|c| c.state != ConnState::Connecting);
                if !alive_conn {
                    return;
                }
                if !self.core.is_alive(to) {
                    return;
                }
                // Accounting happens on actual handling (inside the
                // closure), so busy/stopped deferral cannot double-count.
                let resched = SimEvent::Deliver {
                    conn,
                    to,
                    data: data.clone(),
                };
                self.with_program(to, Some(resched), |p, sys| {
                    sys.account_msg_received(data.len());
                    p.on_message(sys, conn, data)
                });
            }
            SimEvent::ConnEstablish { conn } => self.handle_establish(conn),
            SimEvent::ConnFailed { conn, to, reason } => {
                self.with_program(to, None, |p, sys| {
                    p.on_conn_event(sys, conn, ConnEvent::Failed(reason))
                });
            }
            SimEvent::ConnClosedNotify { conn, to } => {
                self.core.mark_closed(conn);
                self.with_program(to, None, |p, sys| {
                    p.on_conn_event(sys, conn, ConnEvent::Closed)
                });
            }
            SimEvent::KernelFlush { to } => {
                let Some(msgs) = self.core.pending_kernel.remove(&to) else {
                    return;
                };
                if msgs.is_empty() {
                    return;
                }
                self.core.obs.note_kernel_batch(msgs.len());
                let data = encode_batch(&msgs);
                if msgs.len() > 1 {
                    self.core.tracef(
                        Some(to.0),
                        TraceCategory::Kernel,
                        format!("flush {} coalesced event(s) -> lpm {}", msgs.len(), to.1),
                    );
                }
                let resched = SimEvent::KernelBatch {
                    to,
                    data: data.clone(),
                };
                self.with_program(to, Some(resched), |p, sys| p.on_kernel_batch(sys, data));
            }
            SimEvent::KernelBatch { to, data } => {
                let resched = SimEvent::KernelBatch {
                    to,
                    data: data.clone(),
                };
                self.with_program(to, Some(resched), |p, sys| p.on_kernel_batch(sys, data));
            }
            SimEvent::SignalDeliver { to, signal } => self.handle_signal(to, signal),
            SimEvent::ChildExit {
                parent,
                child,
                status,
            } => {
                self.with_program(parent, None, |p, sys| p.on_child_exit(sys, child, status));
            }
            SimEvent::LoadTick(host) => {
                if !self.core.host_up(host) {
                    return;
                }
                let now = self.core.now();
                let alpha = self.core.config.load_alpha();
                let k = &mut self.core.hosts[host.0 as usize].kernel;
                let runnable = k.runnable_count(now);
                k.update_load(runnable, alpha);
                let tick = self.core.config.load_tick;
                self.core.engine.schedule(tick, SimEvent::LoadTick(host));
            }
            SimEvent::HostCrash(host) => self.handle_crash(host),
            SimEvent::HostRestart(host) => self.handle_restart(host),
            SimEvent::KillCmd(host, prefix) => {
                if !self.core.host_up(host) {
                    return;
                }
                let mut pids: Vec<Pid> = self.core.hosts[host.0 as usize]
                    .kernel
                    .processes()
                    .filter(|p| p.is_alive() && p.command.starts_with(&prefix))
                    .map(|p| p.pid)
                    .collect();
                pids.sort_unstable();
                self.core.tracef(
                    Some(host),
                    TraceCategory::Kernel,
                    format!("fault: kill {prefix}* ({} process(es))", pids.len()),
                );
                for pid in pids {
                    let _ = self.core.post_signal(Uid::ROOT, (host, pid), Signal::Kill);
                }
            }
            SimEvent::LinkSet(a, b, up) => {
                self.core.topo.set_link_up(a, b, up);
                self.core.net_epoch += 1;
                self.core.tracef(
                    None,
                    TraceCategory::Net,
                    format!(
                        "link {} <-> {} {}",
                        self.core.host_name(a),
                        self.core.host_name(b),
                        if up { "up" } else { "down" }
                    ),
                );
            }
            SimEvent::NetLinkSet(idx, up) => {
                let Some(net) = self.core.net.as_mut() else {
                    return;
                };
                net.set_link_up(idx, up);
                let name = net.graph.links[idx as usize].name.clone();
                self.core.net_epoch += 1;
                self.core.tracef(
                    None,
                    TraceCategory::Net,
                    format!("net link {name} {}", if up { "up" } else { "down" }),
                );
            }
        }
    }

    fn handle_establish(&mut self, conn: ConnId) {
        let (client, server, port, state) = match self.core.conns.get(&conn) {
            Some(c) => (c.client, c.server, c.port, c.state),
            None => return,
        };
        if state != ConnState::Connecting {
            return;
        }
        // Re-validate: server process must still be alive and listening,
        // and the route must still exist.
        let still_listening = self.core.host_up(server.0)
            && self.core.hosts[server.0 .0 as usize].listeners.get(&port) == Some(&server.1)
            && self.core.is_alive(server);
        let routed = self.core.topo.hops(client.0, server.0).is_some()
            && self
                .core
                .net
                .as_ref()
                .is_none_or(|n| n.reachable(client.0 .0, server.0 .0));
        if !still_listening || !routed {
            self.core.mark_closed(conn);
            let reason = if routed {
                SysError::ConnectionRefused
            } else {
                SysError::Unreachable
            };
            self.with_program(client, None, |p, sys| {
                p.on_conn_event(sys, conn, ConnEvent::Failed(reason))
            });
            return;
        }
        let now = self.core.now();
        if let Some(c) = self.core.conns.get_mut(&conn) {
            c.state = ConnState::Established;
            c.stats.established_at = Some(now);
        }
        if let Ok(p) = self.core.hosts[server.0 .0 as usize]
            .kernel
            .live_mut(server.1)
        {
            p.fds.alloc(FdKind::Socket { conn });
        }
        self.core.tracef(
            Some(server.0),
            TraceCategory::Net,
            format!(
                "{conn} established {}:{} -> {}{port}",
                self.core.host_name(client.0),
                client.1,
                self.core.host_name(server.0),
            ),
        );
        self.with_program(server, None, |p, sys| {
            p.on_conn_event(sys, conn, ConnEvent::Accepted { peer: client, port })
        });
        self.with_program(client, None, |p, sys| {
            p.on_conn_event(sys, conn, ConnEvent::Established)
        });
    }

    fn handle_signal(&mut self, to: ProcKey, signal: Signal) {
        if !self.core.is_alive(to) {
            return;
        }
        let (host, pid) = to;
        {
            let k = &mut self.core.hosts[host.0 as usize].kernel;
            if let Ok(p) = k.live_mut(pid) {
                p.rusage.signals_received += 1;
            }
        }
        self.core
            .emit_kernel_event(host, KernelEvent::SignalDelivered { pid, signal });
        self.core.tracef(
            Some(host),
            TraceCategory::Kernel,
            format!("{signal} delivered to pid {pid}"),
        );
        match signal {
            Signal::Stop => {
                let k = &mut self.core.hosts[host.0 as usize].kernel;
                if let Ok(p) = k.live_mut(pid) {
                    if p.state == ProcState::Running {
                        p.state = ProcState::Stopped;
                        self.core
                            .emit_kernel_event(host, KernelEvent::Stopped { pid });
                    }
                }
            }
            Signal::Cont => {
                let was_stopped = {
                    let k = &mut self.core.hosts[host.0 as usize].kernel;
                    match k.live_mut(pid) {
                        Ok(p) if p.state == ProcState::Stopped => {
                            p.state = ProcState::Running;
                            true
                        }
                        _ => false,
                    }
                };
                if was_stopped {
                    self.core
                        .emit_kernel_event(host, KernelEvent::Continued { pid });
                    if let Some(evs) = self.deferred.remove(&to) {
                        for ev in evs {
                            self.core.engine.schedule(SimDuration::ZERO, ev);
                        }
                    }
                }
            }
            Signal::Kill => {
                self.core.do_exit(to, ExitStatus::Signaled(Signal::Kill));
                self.reap_dead_programs();
            }
            other => {
                // Catchable: give the program a chance, else default.
                let mut action = SigAction::Default;
                if self.programs.contains_key(&to) {
                    let mut taken = self.programs.remove(&to).expect("checked");
                    {
                        let mut sys = Sys::new(&mut self.core, to);
                        action = taken.on_signal(&mut sys, other);
                    }
                    if self.core.is_alive(to) {
                        self.programs.insert(to, taken);
                    }
                    self.drain_pending();
                }
                if action == SigAction::Default
                    && other.is_fatal_by_default()
                    && self.core.is_alive(to)
                {
                    self.core.do_exit(to, ExitStatus::Signaled(other));
                }
                self.reap_dead_programs();
            }
        }
    }

    fn handle_crash(&mut self, host: HostId) {
        if !self.core.host_up(host) {
            return;
        }
        self.core.topo.set_host_up(host, false);
        if let Some(net) = self.core.net.as_mut() {
            net.set_host_up(host.0, false);
        }
        self.core.net_epoch += 1;
        self.core
            .tracef(Some(host), TraceCategory::Net, "host crashed".to_string());
        // Break all connections touching the host; survivors learn after
        // the detection interval.
        let mut ids: Vec<ConnId> = self
            .core
            .conns
            .values()
            .filter(|c| c.state != ConnState::Closed && c.touches_host(host))
            .map(|c| c.id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            let (client, server) = {
                let c = &self.core.conns[&id];
                (c.client, c.server)
            };
            self.core.mark_closed(id);
            let survivor = if client.0 == host { server } else { client };
            if survivor.0 != host && self.core.host_up(survivor.0) {
                let jf = self.core.config.cost_jitter;
                let base = self.core.config.break_detection;
                let delay = self.core.rng.jitter(base, jf);
                self.core.engine.schedule(
                    delay,
                    SimEvent::ConnClosedNotify {
                        conn: id,
                        to: survivor,
                    },
                );
            }
        }
        // All local process activity ceases; nothing is notified locally.
        // The crash instant and the running service set go to stable
        // storage (the simulated disk survives the power failure): a
        // restart re-runs the services, and a respawned daemon can read
        // how long the host was dark.
        let now = self.core.now();
        let hs = &mut self.core.hosts[host.0 as usize];
        hs.stable.insert(
            CRASHED_AT_KEY.to_string(),
            Bytes::copy_from_slice(&now.as_micros().to_be_bytes()),
        );
        let mut names: Vec<String> = hs.services.keys().cloned().collect();
        names.sort_unstable();
        hs.prev_services = names;
        hs.listeners.clear();
        hs.services.clear();
        self.reap_dead_programs_on(host);
    }

    fn reap_dead_programs_on(&mut self, host: HostId) {
        let mut keys: Vec<ProcKey> = self
            .programs
            .keys()
            .filter(|k| k.0 == host)
            .copied()
            .collect();
        keys.sort_unstable();
        for k in keys {
            self.programs.remove(&k);
            self.deferred.remove(&k);
        }
    }

    fn handle_restart(&mut self, host: HostId) {
        if self.core.host_up(host) {
            return;
        }
        self.core.topo.set_host_up(host, true);
        if let Some(net) = self.core.net.as_mut() {
            net.set_host_up(host.0, true);
        }
        self.core.net_epoch += 1;
        let now = self.core.now();
        self.core.hosts[host.0 as usize].kernel.reboot(now);
        self.core
            .tracef(Some(host), TraceCategory::Net, "host restarted".to_string());
        self.boot_daemons(host);
        // Re-run the services that were up at crash time (pmd comes back
        // without waiting for traffic), the way init replays /etc/rc.
        let names = std::mem::take(&mut self.core.hosts[host.0 as usize].prev_services);
        for name in names {
            let _ = self.core.spawn_service(host, &name);
        }
        self.drain_pending();
        let tick = self.core.config.load_tick;
        self.core.engine.schedule(tick, SimEvent::LoadTick(host));
    }
}

/// Stable-storage key under which a crash stamps the simulation time the
/// host went dark (big-endian microseconds). Programs respawned after the
/// restart read it to measure recovery time. (Canonically defined in the
/// runtime layer; both backends write it on their crash paths.)
pub use ppm_runtime::sys::CRASHED_AT_KEY;

#[cfg(test)]
mod tests {
    use super::*;
    use ppm_simnet::topology::CpuClass;

    fn two_hosts() -> (World, HostId, HostId) {
        let mut w = World::new(11);
        let a = w.add_host(HostSpec::new("a", CpuClass::Vax780));
        let b = w.add_host(HostSpec::new("b", CpuClass::Vax750));
        w.add_link(a, b);
        (w, a, b)
    }

    #[test]
    fn add_host_boots_inetd() {
        let (mut w, a, _) = two_hosts();
        w.run_for(SimDuration::from_millis(100));
        let inetd = w
            .core()
            .kernel(a)
            .processes()
            .find(|p| p.command == "inetd")
            .map(|p| p.pid);
        assert!(inetd.is_some());
        // inetd listens on its well-known port
        assert!(w.core().hosts[a.0 as usize]
            .listeners
            .contains_key(&Port::INETD));
    }

    #[test]
    fn spawn_user_creates_running_process_after_delay() {
        let (mut w, a, _) = two_hosts();
        let pid = w.spawn_user(a, Uid(100), SpawnSpec::inert("job")).unwrap();
        assert_eq!(
            w.core().kernel(a).get(pid).unwrap().state,
            ProcState::Embryo
        );
        w.run_for(SimDuration::from_millis(200));
        assert_eq!(
            w.core().kernel(a).get(pid).unwrap().state,
            ProcState::Running
        );
    }

    #[test]
    fn kill_terminates_and_stop_cont_toggle() {
        let (mut w, a, _) = two_hosts();
        let pid = w.spawn_user(a, Uid(100), SpawnSpec::inert("job")).unwrap();
        w.run_for(SimDuration::from_millis(200));
        w.post_signal(Uid(100), (a, pid), Signal::Stop).unwrap();
        w.run_for(SimDuration::from_millis(50));
        assert_eq!(
            w.core().kernel(a).get(pid).unwrap().state,
            ProcState::Stopped
        );
        w.post_signal(Uid(100), (a, pid), Signal::Cont).unwrap();
        w.run_for(SimDuration::from_millis(50));
        assert_eq!(
            w.core().kernel(a).get(pid).unwrap().state,
            ProcState::Running
        );
        w.post_signal(Uid(100), (a, pid), Signal::Kill).unwrap();
        w.run_for(SimDuration::from_millis(50));
        assert!(!w.core().is_alive((a, pid)));
    }

    #[test]
    fn signal_permission_checked() {
        let (mut w, a, _) = two_hosts();
        let pid = w.spawn_user(a, Uid(100), SpawnSpec::inert("job")).unwrap();
        w.run_for(SimDuration::from_millis(200));
        assert_eq!(
            w.post_signal(Uid(200), (a, pid), Signal::Kill),
            Err(SysError::PermissionDenied)
        );
        assert!(w.post_signal(Uid::ROOT, (a, pid), Signal::Kill).is_ok());
    }

    #[test]
    fn crash_kills_processes_and_restart_reboots() {
        let (mut w, a, _) = two_hosts();
        let pid = w.spawn_user(a, Uid(100), SpawnSpec::inert("job")).unwrap();
        w.run_for(SimDuration::from_millis(200));
        w.schedule_crash(a, SimDuration::from_millis(10));
        w.run_for(SimDuration::from_millis(50));
        assert!(!w.core().host_up(a));
        assert!(!w.core().is_alive((a, pid)));
        w.schedule_restart(a, SimDuration::from_millis(10));
        w.run_for(SimDuration::from_millis(200));
        assert!(w.core().host_up(a));
        assert_eq!(w.core().kernel(a).boot_count(), 2);
        // inetd is back
        assert!(w.core().hosts[a.0 as usize]
            .listeners
            .contains_key(&Port::INETD));
    }

    #[test]
    fn load_average_rises_with_cpu_bound_work() {
        let (mut w, a, _) = two_hosts();
        for _ in 0..2 {
            w.spawn_user(a, Uid(1), SpawnSpec::inert("spin").cpu_bound(true))
                .unwrap();
        }
        w.run_for(SimDuration::from_secs(300));
        let la = w.core().kernel(a).load_avg();
        assert!((1.8..2.2).contains(&la), "la={la}");
    }

    #[test]
    fn world_debug_is_nonempty() {
        let (w, _, _) = two_hosts();
        let s = format!("{w:?}");
        assert!(s.contains("World"));
        assert!(s.contains("hosts"));
    }
}
