//! The model-checked world: a third backend behind the `Sys` seam.
//!
//! The simulation backend (`ppm-simos`) orders events by virtual time;
//! the real backend by wall-clock arrival. This backend orders them by
//! *choice*: every pending delivery, kernel notification, due timer and
//! budgeted adversary action is an **enabled move**, and the explorer
//! (see [`crate::explore`]) picks which one fires next. Exhausting those
//! picks exhausts the interleavings of the PPM protocols on a small
//! world — exactly the schedules a discrete-event simulation samples
//! only one of per seed.
//!
//! Connections keep per-direction FIFO queues and only the head of each
//! queue is enabled, so streams stay ordered (TCP semantics) while
//! independent streams commute. A process death appends `Closed` behind
//! any in-flight data, preserving the FIN-after-data interleavings that
//! triggered the dedup-purge bug.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::hash::Hasher;
use std::sync::Arc;

use bytes::Bytes;

use ppm_core::{Lpm, Pmd, PmdOptions, UserDirectory, PMD_SERVICE};
use ppm_proto::codec::Wire;
use ppm_proto::Msg;
use ppm_runtime::events::{KernelEvent, TraceFlags};
use ppm_runtime::fd::{FdKind, OpenMode};
use ppm_runtime::hashx::HashX;
use ppm_runtime::inetd::Inetd;
use ppm_runtime::kernel::Kernel;
use ppm_runtime::obs::{SharedRegistry, SpanPhase};
use ppm_runtime::process::{ProcInfo, ProcState, Process, Rusage};
use ppm_runtime::signal::{ExitStatus, Signal};
use ppm_runtime::sys::{Clock, Spawner, Sys, TimerDriver, TimerHandle, Transport};
use ppm_runtime::time::{Micros, SimDuration, SimTime};
use ppm_runtime::trace::TraceCategory;
use ppm_runtime::{
    ConnEvent, ConnId, CpuClass, Fd, HostId, KernelMsg, Pid, Port, Program, SigAction, SpawnSpec,
    SysError, Uid,
};

/// Process key used internally: (host index, pid number). Plain integers
/// so every container is `BTreeMap`-ordered and the move enumeration is
/// deterministic.
pub type K = (u32, u32);

/// Virtual time consumed by each delivered event. Absolute time is
/// excluded from state digests; the tick only drives timers and the
/// timestamps protocol code derives epochs from.
const TICK: SimDuration = SimDuration::from_micros(200);

/// One item in a connection's per-direction FIFO.
#[derive(Debug, Clone, PartialEq)]
enum NetItem {
    /// Client side: connect succeeded.
    Established,
    /// Server side: a client connected.
    Accepted { peer: (HostId, Pid), port: Port },
    /// Client side: connect failed.
    Failed(SysError),
    /// A data frame.
    Msg(Bytes),
    /// Peer closed, died, or the link broke under a send.
    Closed,
}

/// A stream connection between two processes.
#[derive(Debug)]
struct Conn {
    /// Initiating endpoint.
    a: K,
    /// Accepting endpoint (the listener's process).
    b: K,
    /// Both directions usable. Cleared on close/death/blackhole; items
    /// already queued still deliver (data in flight stays in flight).
    open: bool,
    /// Items travelling toward `a`.
    to_a: VecDeque<NetItem>,
    /// Items travelling toward `b`.
    to_b: VecDeque<NetItem>,
}

#[derive(Debug, Clone)]
struct McTimer {
    owner: K,
    token: u64,
    due: SimTime,
}

/// A fault-injection move available to the explorer, with a budget so
/// the schedule space stays bounded.
#[derive(Debug, Clone, PartialEq)]
pub enum Adversary {
    /// Deliver `Signal::Kill` to the first live process on `host` whose
    /// command equals `command`.
    KillProc { host: u32, command: String },
    /// Cut the link between two hosts (silent: discovered on send).
    CutLink { a: u32, b: u32 },
    /// Restore a previously cut link.
    HealLink { a: u32, b: u32 },
}

/// One enabled transition of the world.
#[derive(Debug, Clone, PartialEq)]
pub enum Move {
    /// Run `on_start` for a spawned-but-not-yet-started process.
    Start(K),
    /// Deliver the head item of one connection direction.
    Net { conn: u64, to_b: bool },
    /// Deliver the head kernel event on a process's kernel socket.
    Kernel(K),
    /// Deliver the head pending child-exit notification to a parent.
    ChildExit(K),
    /// Fire the earliest due timer (id breaks ties).
    Timer(u64),
    /// Apply the indexed adversary action (budget permitting).
    Fault(usize),
}

/// The bounded-model-checking world: per-host kernels and stable
/// storage, programs, and the frontier of pending deliveries.
pub struct McWorld {
    clock: SimTime,
    /// Timers due after this instant never fire: the end of the modelled
    /// schedule. Keeps housekeeping from generating unbounded suffixes.
    horizon: SimTime,
    host_names: Vec<String>,
    host_up: Vec<bool>,
    kernels: Vec<Kernel>,
    stable: Vec<BTreeMap<String, Bytes>>,
    /// Currently cut host pairs (normalized low-high). Everything else
    /// in the static topology is routable; worlds are fully meshed.
    cut_links: BTreeSet<(u32, u32)>,
    listeners: BTreeMap<(u32, u16), u32>,
    services: BTreeMap<(u32, String), u32>,
    progs: BTreeMap<K, Box<dyn Program>>,
    /// Processes that registered a kernel socket.
    ksock: BTreeSet<K>,
    conns: BTreeMap<u64, Conn>,
    next_conn: u64,
    timers: BTreeMap<u64, McTimer>,
    next_timer: u64,
    kqueues: BTreeMap<K, VecDeque<KernelMsg>>,
    child_exits: BTreeMap<K, VecDeque<(Pid, ExitStatus)>>,
    starts: BTreeSet<K>,
    next_fd: u32,
    users: Arc<UserDirectory>,
    pmd_options: PmdOptions,
    /// Kill syscalls observed: (host, target pid, signal number) → count.
    /// The exactly-once predicate reads this.
    pub kill_log: BTreeMap<(u32, u32, u8), u32>,
    /// Sends swallowed by a cut link (the stale-route observable).
    pub blackhole_sends: u64,
    adversaries: Vec<(Adversary, u32)>,
    /// When the explorer last disrupted the world: a fault injection, or
    /// the delivery of a `Failed`/`Closed` event it had been sitting on
    /// (stale failure notices trigger repair chains just like faults
    /// do). Staged faults do not count — staging drains their recovery
    /// deterministically.
    last_disruption_at: Option<SimTime>,
    /// Schedule headroom a convergence predicate needs after the last
    /// disruption (see [`McWorld::converge_expected`]).
    convergence_margin: SimDuration,
    /// Per-LPM executed-operation counts at baseline (see
    /// [`McWorld::snapshot_exec_baseline`]).
    exec_baseline: BTreeMap<K, u64>,
}

impl McWorld {
    /// Creates a fully meshed world of `hosts`, boots inetd everywhere,
    /// and drains nothing: call [`McWorld::run_to_quiescence`] or start
    /// staging.
    pub fn new(
        hosts: &[&str],
        users: UserDirectory,
        pmd_options: PmdOptions,
        horizon: SimDuration,
    ) -> Self {
        let clock = SimTime::from_micros(1_000);
        let mut w = McWorld {
            clock,
            horizon: clock + horizon,
            host_names: hosts.iter().map(|h| (*h).to_string()).collect(),
            host_up: vec![true; hosts.len()],
            kernels: hosts.iter().map(|_| Kernel::new(clock)).collect(),
            stable: hosts.iter().map(|_| BTreeMap::new()).collect(),
            cut_links: BTreeSet::new(),
            listeners: BTreeMap::new(),
            services: BTreeMap::new(),
            progs: BTreeMap::new(),
            ksock: BTreeSet::new(),
            conns: BTreeMap::new(),
            next_conn: 1,
            timers: BTreeMap::new(),
            next_timer: 1,
            kqueues: BTreeMap::new(),
            child_exits: BTreeMap::new(),
            starts: BTreeSet::new(),
            next_fd: 10,
            users: users.into_shared(),
            pmd_options,
            kill_log: BTreeMap::new(),
            blackhole_sends: 0,
            adversaries: Vec::new(),
            last_disruption_at: None,
            convergence_margin: SimDuration::from_micros(0),
            exec_baseline: BTreeMap::new(),
        };
        for h in 0..w.host_names.len() {
            w.boot_host(h as u32);
        }
        w
    }

    fn boot_host(&mut self, host: u32) {
        let pid = self.kernels[host as usize].alloc_pid();
        let p = Process::new(pid, Pid::INIT, Uid::ROOT, "inetd", self.clock);
        self.kernels[host as usize].insert(p);
        let key = (host, pid.0);
        self.progs.insert(key, Box::new(Inetd::new()));
        self.starts.insert(key);
    }

    // ---- staging helpers (deterministic world construction) ------------

    /// Spawns a process with behaviour as a child of init; it starts via
    /// its `Start` move (first in drain priority).
    pub fn spawn_program(
        &mut self,
        host: u32,
        uid: Uid,
        command: &str,
        program: Box<dyn Program>,
    ) -> Pid {
        let pid = self.kernels[host as usize].alloc_pid();
        let p = Process::new(pid, Pid::INIT, uid, command, self.clock);
        self.kernels[host as usize].insert(p);
        self.progs.insert((host, pid.0), program);
        self.starts.insert((host, pid.0));
        pid
    }

    /// Places an inert running process in the table (a plain UNIX
    /// process from the PPM's perspective).
    pub fn spawn_inert(&mut self, host: u32, uid: Uid, command: &str) -> Pid {
        let pid = self.kernels[host as usize].alloc_pid();
        let mut p = Process::new(pid, Pid::INIT, uid, command, self.clock);
        p.state = ProcState::Running;
        self.kernels[host as usize].insert(p);
        pid
    }

    /// Registers an adversary action with a budget of uses.
    pub fn add_adversary(&mut self, adv: Adversary, budget: u32) {
        self.adversaries.push((adv, budget));
    }

    /// Re-anchors the timer horizon to `window` after now. Scenarios
    /// call this once staging is done: the interesting frontier is
    /// already set up, so a short remaining window keeps the periodic
    /// housekeeping suffix small enough for schedules to reach
    /// quiescence within the depth budget.
    pub fn set_horizon(&mut self, window: SimDuration) {
        self.horizon = self.clock + window;
    }

    /// Declares how much schedule must remain after a disruption for the
    /// convergence predicate to apply (the periodic machinery — probes,
    /// reconnects — needs a few cycles to repair what the fault broke).
    pub fn set_convergence_margin(&mut self, margin: SimDuration) {
        self.convergence_margin = margin;
    }

    /// `false` when the last disruption (injected fault, or a withheld
    /// failure notice finally delivered) landed closer to the horizon
    /// than the declared margin: the schedule ends before the protocols
    /// could have repaired it, so non-convergence there is a budget
    /// artifact, not a bug. Quiescence predicates gate on this.
    pub fn converge_expected(&self) -> bool {
        self.last_disruption_at
            .is_none_or(|t| t + self.convergence_margin <= self.horizon)
    }

    /// Duplicates the head frame of the first queue (in id order) whose
    /// head decodes to a message for which `pred` holds — the retransmit
    /// the protocols must deduplicate. `toward` restricts the match to
    /// queues delivering to that host. Returns `true` if a frame matched.
    pub fn stage_dup_head(&mut self, toward: Option<u32>, pred: impl Fn(&Msg) -> bool) -> bool {
        for conn in self.conns.values_mut() {
            let dirs = [(conn.b.0, &mut conn.to_b), (conn.a.0, &mut conn.to_a)];
            for (dst_host, q) in dirs {
                if toward.is_some_and(|h| h != dst_host) {
                    continue;
                }
                if let Some(NetItem::Msg(bytes)) = q.front() {
                    if let Ok(m) = Msg::from_bytes(bytes) {
                        if pred(&m) {
                            let dup = bytes.clone();
                            q.insert(1, NetItem::Msg(dup));
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Kills the first live process on `host` named `command` (staging
    /// variant of [`Adversary::KillProc`]). Returns `true` on a kill.
    pub fn stage_kill(&mut self, host: u32, command: &str) -> bool {
        match self.find_proc(host, command) {
            Some(pid) => {
                self.deliver_signal((host, pid), Signal::Kill);
                true
            }
            None => false,
        }
    }

    /// Cuts the link between two hosts (staging variant).
    pub fn stage_cut(&mut self, a: u32, b: u32) {
        self.cut_links.insert(norm(a, b));
    }

    /// Records the current per-LPM executed-operation counts; the
    /// broadcast-dedup predicate compares against this baseline.
    pub fn snapshot_exec_baseline(&mut self) {
        self.exec_baseline = self
            .lpms()
            .into_iter()
            .map(|(k, l)| (k, l.stats().executed))
            .collect();
    }

    // ---- inspection (predicates) ----------------------------------------

    /// All live LPM programs, keyed by (host, pid).
    pub fn lpms(&self) -> Vec<(K, &Lpm)> {
        self.progs
            .iter()
            .filter_map(|(k, p)| {
                p.as_any()
                    .and_then(|a| a.downcast_ref::<Lpm>())
                    .map(|l| (*k, l))
            })
            .collect()
    }

    /// Host name for a host index.
    pub fn host_name(&self, host: u32) -> &str {
        &self.host_names[host as usize]
    }

    /// How many times `signal` was delivered via the kill syscall to
    /// `pid` on `host`.
    pub fn signal_count(&self, host: u32, pid: Pid, signal: Signal) -> u32 {
        self.kill_log
            .get(&(host, pid.0, signal.number()))
            .copied()
            .unwrap_or(0)
    }

    /// Largest per-LPM growth of the executed-operation counter since
    /// the recorded baseline.
    pub fn max_exec_delta(&self) -> u64 {
        self.lpms()
            .into_iter()
            .map(|(k, l)| {
                let base = self.exec_baseline.get(&k).copied().unwrap_or(0);
                l.stats().executed.saturating_sub(base)
            })
            .max()
            .unwrap_or(0)
    }

    /// First live pid on `host` with the given command name.
    pub fn find_proc(&self, host: u32, command: &str) -> Option<u32> {
        self.kernels[host as usize]
            .processes()
            .find(|p| p.is_alive() && p.command == command)
            .map(|p| p.pid.0)
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    // ---- the frontier ---------------------------------------------------

    /// All enabled moves, in a deterministic order.
    pub fn enabled_moves(&self) -> Vec<Move> {
        let mut moves = Vec::new();
        for &k in &self.starts {
            moves.push(Move::Start(k));
        }
        for (&id, conn) in &self.conns {
            if !conn.to_a.is_empty() {
                moves.push(Move::Net {
                    conn: id,
                    to_b: false,
                });
            }
            if !conn.to_b.is_empty() {
                moves.push(Move::Net {
                    conn: id,
                    to_b: true,
                });
            }
        }
        for (&k, q) in &self.kqueues {
            if !q.is_empty() {
                moves.push(Move::Kernel(k));
            }
        }
        for (&k, q) in &self.child_exits {
            if !q.is_empty() {
                moves.push(Move::ChildExit(k));
            }
        }
        if let Some(id) = self.next_timer_id() {
            moves.push(Move::Timer(id));
        }
        for (i, (adv, budget)) in self.adversaries.iter().enumerate() {
            if *budget > 0 && self.fault_enabled(adv) {
                moves.push(Move::Fault(i));
            }
        }
        moves
    }

    /// Earliest due timer under the horizon (ties broken by id).
    fn next_timer_id(&self) -> Option<u64> {
        self.timers
            .iter()
            .filter(|(_, t)| t.due <= self.horizon)
            .min_by_key(|(id, t)| (t.due, **id))
            .map(|(id, _)| *id)
    }

    fn fault_enabled(&self, adv: &Adversary) -> bool {
        match adv {
            Adversary::KillProc { host, command } => {
                self.host_up[*host as usize] && self.find_proc(*host, command).is_some()
            }
            Adversary::CutLink { a, b } => !self.cut_links.contains(&norm(*a, *b)),
            Adversary::HealLink { a, b } => self.cut_links.contains(&norm(*a, *b)),
        }
    }

    /// Human-readable description of a move, used in counterexample
    /// traces and for directed replays in regression tests.
    pub fn describe(&self, mv: &Move) -> String {
        match mv {
            Move::Start(k) => format!("start {}", self.proc_label(*k)),
            Move::Net { conn, to_b } => {
                let c = &self.conns[conn];
                let (q, dst) = if *to_b {
                    (&c.to_b, c.b)
                } else {
                    (&c.to_a, c.a)
                };
                let what = match q.front() {
                    Some(NetItem::Established) => "established".to_string(),
                    Some(NetItem::Accepted { .. }) => "accepted".to_string(),
                    Some(NetItem::Failed(e)) => format!("failed({e})"),
                    Some(NetItem::Msg(b)) => format!("msg {}", frame_kind(b)),
                    Some(NetItem::Closed) => "closed".to_string(),
                    None => "empty".to_string(),
                };
                format!("deliver {what} -> {}", self.proc_label(dst))
            }
            Move::Kernel(k) => format!("kernel-event -> {}", self.proc_label(*k)),
            Move::ChildExit(k) => format!("child-exit -> {}", self.proc_label(*k)),
            Move::Timer(id) => match self.timers.get(id) {
                Some(t) => format!("timer {} @{}", self.proc_label(t.owner), t.token),
                None => format!("timer #{id}"),
            },
            Move::Fault(i) => match &self.adversaries[*i].0 {
                Adversary::KillProc { host, command } => {
                    format!("fault kill {command}@{}", self.host_names[*host as usize])
                }
                Adversary::CutLink { a, b } => format!(
                    "fault cut {}-{}",
                    self.host_names[*a as usize], self.host_names[*b as usize]
                ),
                Adversary::HealLink { a, b } => format!(
                    "fault heal {}-{}",
                    self.host_names[*a as usize], self.host_names[*b as usize]
                ),
            },
        }
    }

    fn proc_label(&self, k: K) -> String {
        let cmd = self.kernels[k.0 as usize]
            .get(Pid(k.1))
            .map(|p| p.command.clone())
            .unwrap_or_else(|| "?".to_string());
        format!("{cmd}@{}:{}", self.host_names[k.0 as usize], k.1)
    }

    /// Applies one move. The move must come from the current
    /// [`McWorld::enabled_moves`].
    pub fn apply(&mut self, mv: &Move) {
        match mv {
            Move::Start(k) => self.do_start(*k),
            Move::Net { conn, to_b } => self.do_deliver(*conn, *to_b),
            Move::Kernel(k) => {
                self.clock += TICK;
                let msg = self.kqueues.get_mut(k).and_then(VecDeque::pop_front);
                if let Some(msg) = msg {
                    self.dispatch(*k, |p, sys| p.on_kernel_event(sys, msg));
                }
            }
            Move::ChildExit(k) => {
                self.clock += TICK;
                let item = self.child_exits.get_mut(k).and_then(VecDeque::pop_front);
                if let Some((child, status)) = item {
                    self.dispatch(*k, |p, sys| p.on_child_exit(sys, child, status));
                }
            }
            Move::Timer(id) => {
                if let Some(t) = self.timers.remove(id) {
                    self.clock = self.clock.max(t.due);
                    self.dispatch(t.owner, |p, sys| p.on_timer(sys, t.token));
                }
            }
            Move::Fault(i) => self.do_fault(*i),
        }
    }

    fn do_start(&mut self, k: K) {
        self.starts.remove(&k);
        self.clock += TICK;
        let kernel = &mut self.kernels[k.0 as usize];
        let Ok(p) = kernel.live_mut(Pid(k.1)) else {
            return;
        };
        if p.state == ProcState::Embryo {
            p.state = ProcState::Running;
        }
        let command = p.command.clone();
        self.emit_kernel_event(
            k.0,
            Pid(k.1),
            KernelEvent::Exec {
                pid: Pid(k.1),
                command,
            },
        );
        self.dispatch(k, |p, sys| p.on_start(sys));
    }

    fn do_deliver(&mut self, conn_id: u64, to_b: bool) {
        self.clock += TICK;
        let Some(conn) = self.conns.get_mut(&conn_id) else {
            return;
        };
        let (item, dst) = if to_b {
            (conn.to_b.pop_front(), conn.b)
        } else {
            (conn.to_a.pop_front(), conn.a)
        };
        let Some(item) = item else { return };
        let cid = ConnId(conn_id);
        match item {
            NetItem::Established => {
                self.dispatch(dst, |p, sys| {
                    p.on_conn_event(sys, cid, ConnEvent::Established)
                });
            }
            NetItem::Accepted { peer, port } => {
                self.dispatch(dst, |p, sys| {
                    p.on_conn_event(sys, cid, ConnEvent::Accepted { peer, port });
                });
            }
            NetItem::Failed(e) => {
                self.last_disruption_at = Some(self.clock);
                self.dispatch(dst, |p, sys| {
                    p.on_conn_event(sys, cid, ConnEvent::Failed(e))
                });
            }
            NetItem::Msg(bytes) => {
                self.dispatch(dst, |p, sys| p.on_message(sys, cid, bytes));
            }
            NetItem::Closed => {
                self.last_disruption_at = Some(self.clock);
                self.dispatch(dst, |p, sys| p.on_conn_event(sys, cid, ConnEvent::Closed));
            }
        }
        // Drop fully drained dead connections so they stop contributing
        // moves and digest weight.
        if let Some(c) = self.conns.get(&conn_id) {
            if !c.open && c.to_a.is_empty() && c.to_b.is_empty() {
                self.conns.remove(&conn_id);
            }
        }
    }

    fn do_fault(&mut self, i: usize) {
        let (adv, budget) = &mut self.adversaries[i];
        if *budget == 0 {
            return;
        }
        *budget -= 1;
        self.last_disruption_at = Some(self.clock);
        match adv.clone() {
            Adversary::KillProc { host, command } => {
                if let Some(pid) = self.find_proc(host, &command) {
                    self.deliver_signal((host, pid), Signal::Kill);
                }
            }
            Adversary::CutLink { a, b } => {
                self.cut_links.insert(norm(a, b));
            }
            Adversary::HealLink { a, b } => {
                self.cut_links.remove(&norm(a, b));
            }
        }
    }

    // ---- deterministic drains (staging) ---------------------------------

    /// Applies natural moves (no faults) in priority order — starts,
    /// then deliveries, then kernel events, then child exits, then the
    /// earliest timer — until `until` holds or nothing is enabled.
    /// Returns `true` if the condition was reached. `skip` filters moves
    /// out of the drain (they stay enabled for later exploration).
    pub fn run_until(
        &mut self,
        max_steps: usize,
        skip: impl Fn(&McWorld, &Move) -> bool,
        until: impl Fn(&McWorld) -> bool,
    ) -> bool {
        for _ in 0..max_steps {
            if until(self) {
                return true;
            }
            let mv = self
                .enabled_moves()
                .into_iter()
                .filter(|m| !matches!(m, Move::Fault(_)))
                .find(|m| !skip(self, m));
            match mv {
                Some(m) => self.apply(&m),
                None => return until(self),
            }
        }
        until(self)
    }

    /// Drains all natural moves. Returns `true` on quiescence within the
    /// step bound.
    pub fn run_to_quiescence(&mut self, max_steps: usize) -> bool {
        self.run_until(
            max_steps,
            |_, _| false,
            |w| {
                w.enabled_moves()
                    .iter()
                    .all(|m| matches!(m, Move::Fault(_)))
            },
        )
    }

    // ---- state digest ---------------------------------------------------

    /// Deterministic fingerprint of the protocol-visible world state.
    /// Absolute time is excluded so schedules that differ only in when
    /// housekeeping fired merge; everything that steers future behaviour
    /// — process tables, queue contents, timers' owners, program state,
    /// the observables predicates read — is folded in.
    pub fn digest(&self) -> u64 {
        let mut h = HashX::default();
        for (i, up) in self.host_up.iter().enumerate() {
            h.write_u8(u8::from(*up));
            h.write_u32(self.kernels[i].boot_count());
            for p in self.kernels[i].processes() {
                h.write_u32(p.pid.0);
                h.write_u32(p.ppid.0);
                h.write_u32(p.uid.0);
                h.write(p.command.as_bytes());
                h.write(format!("{:?}", p.state).as_bytes());
                h.write_u32(p.tracer.map_or(0, |t| t.0));
                h.write_u8(p.trace_flags.bits());
            }
            for (k, v) in &self.stable[i] {
                h.write(k.as_bytes());
                h.write(v);
            }
        }
        for (a, b) in &self.cut_links {
            h.write_u32(*a);
            h.write_u32(*b);
        }
        for ((host, port), pid) in &self.listeners {
            h.write_u32(*host);
            h.write_u16(*port);
            h.write_u32(*pid);
        }
        for (id, c) in &self.conns {
            h.write_u64(*id);
            h.write_u32(c.a.0);
            h.write_u32(c.a.1);
            h.write_u32(c.b.0);
            h.write_u32(c.b.1);
            h.write_u8(u8::from(c.open));
            for q in [&c.to_a, &c.to_b] {
                h.write_u64(q.len() as u64);
                for item in q {
                    match item {
                        NetItem::Established => h.write_u8(1),
                        NetItem::Accepted { peer, port } => {
                            h.write_u8(2);
                            h.write_u32(peer.0 .0);
                            h.write_u32(peer.1 .0);
                            h.write_u16(port.0);
                        }
                        NetItem::Failed(e) => {
                            h.write_u8(3);
                            h.write(format!("{e:?}").as_bytes());
                        }
                        NetItem::Msg(b) => {
                            h.write_u8(4);
                            h.write(b);
                        }
                        NetItem::Closed => h.write_u8(5),
                    }
                }
            }
        }
        // Timers: owner and token identify the pending work; the due
        // instant is deliberately left out (see the module docs).
        for t in self.timers.values() {
            h.write_u32(t.owner.0);
            h.write_u32(t.owner.1);
            h.write_u64(t.token);
        }
        for (k, q) in &self.kqueues {
            h.write_u32(k.0);
            h.write_u32(k.1);
            h.write_u64(q.len() as u64);
            for m in q {
                h.write(format!("{:?}", m.event).as_bytes());
            }
        }
        for (k, q) in &self.child_exits {
            h.write_u32(k.0);
            h.write_u32(k.1);
            for (pid, st) in q {
                h.write_u32(pid.0);
                h.write(format!("{st:?}").as_bytes());
            }
        }
        for k in &self.starts {
            h.write_u32(k.0);
            h.write_u32(k.1);
        }
        for (k, p) in &self.progs {
            h.write_u32(k.0);
            h.write_u32(k.1);
            h.write_u64(p.state_digest());
        }
        // Observables the predicates read must split states, or pruning
        // could hide a violation behind an already-visited digest.
        for ((host, pid, sig), n) in &self.kill_log {
            h.write_u32(*host);
            h.write_u32(*pid);
            h.write_u8(*sig);
            h.write_u32(*n);
        }
        for (k, l) in self.lpms() {
            h.write_u32(k.0);
            h.write_u32(k.1);
            h.write_u64(l.stats().executed);
        }
        h.write_u64(self.blackhole_sends);
        for (_, budget) in &self.adversaries {
            h.write_u32(*budget);
        }
        // The one time-derived bit: whether a convergence predicate
        // still applies. Two states differing only here must not merge,
        // or pruning could skip the schedule that demands convergence.
        h.write_u8(u8::from(self.converge_expected()));
        h.finish()
    }

    // ---- internals ------------------------------------------------------

    fn proc_alive(&self, k: K) -> bool {
        self.host_up[k.0 as usize]
            && self.kernels[k.0 as usize]
                .get(Pid(k.1))
                .is_some_and(Process::is_alive)
    }

    fn route_alive(&self, a: u32, b: u32) -> bool {
        a == b || !self.cut_links.contains(&norm(a, b))
    }

    /// Runs a program callback with a scoped syscall view, then applies
    /// any deferred exit. The program is removed from the table for the
    /// duration so nested dispatches (a kill landing on another process)
    /// can run re-entrantly.
    fn dispatch<F>(&mut self, k: K, f: F)
    where
        F: FnOnce(&mut dyn Program, &mut dyn Sys),
    {
        let Some(mut prog) = self.progs.remove(&k) else {
            return;
        };
        let uid = self.kernels[k.0 as usize]
            .get(Pid(k.1))
            .map_or(Uid::ROOT, |p| p.uid);
        let mut sys = McSys {
            w: self,
            key: k,
            uid,
            exited: None,
        };
        f(prog.as_mut(), &mut sys);
        let exited = sys.exited;
        if exited.is_none() && self.proc_alive(k) {
            self.progs.insert(k, prog);
        }
        if let Some(status) = exited {
            self.reap(k, status);
        }
    }

    /// Tears a process down: kernel exit, connection FINs, parent and
    /// tracer notifications.
    fn reap(&mut self, k: K, status: ExitStatus) {
        let host = k.0 as usize;
        let pid = Pid(k.1);
        if !self.kernels[host].get(pid).is_some_and(Process::is_alive) {
            return;
        }
        let (ppid, rusage) = {
            let p = self.kernels[host].get(pid).expect("live proc");
            (p.ppid, p.rusage)
        };
        self.kernels[host].finish_exit(pid, status, self.clock);
        self.progs.remove(&k);
        self.starts.remove(&k);
        self.ksock.remove(&k);
        self.kqueues.remove(&k);
        self.child_exits.remove(&k);
        self.timers.retain(|_, t| t.owner != k);
        self.listeners
            .retain(|&(h, _), &mut p| !(h == k.0 && p == k.1));
        self.services.retain(|(h, _), p| !(*h == k.0 && *p == k.1));
        // FIN every open connection: clear items travelling toward the
        // dead process, append Closed behind in-flight data to the peer.
        for c in self.conns.values_mut() {
            if !c.open || (c.a != k && c.b != k) {
                continue;
            }
            c.open = false;
            if c.a == k {
                c.to_a.clear();
                c.to_b.push_back(NetItem::Closed);
            } else {
                c.to_b.clear();
                c.to_a.push_back(NetItem::Closed);
            }
        }
        // Parent notification (only parents with behaviour care).
        let parent = (k.0, ppid.0);
        if self.progs.contains_key(&parent) || self.starts.contains(&parent) {
            self.child_exits
                .entry(parent)
                .or_default()
                .push_back((pid, status));
        }
        self.emit_kernel_event(
            k.0,
            pid,
            KernelEvent::Exit {
                pid,
                status,
                rusage,
            },
        );
    }

    /// Queues a kernel event to the tracer of `about`, if that tracer
    /// holds the required flag and registered a kernel socket.
    fn emit_kernel_event(&mut self, host: u32, about: Pid, event: KernelEvent) {
        let Some(p) = self.kernels[host as usize].get(about) else {
            return;
        };
        let (tracer, flags) = (p.tracer, p.trace_flags);
        let Some(tracer) = tracer else { return };
        if !flags.contains(event.required_flag()) {
            return;
        }
        let tk = (host, tracer.0);
        if !self.ksock.contains(&tk) || !self.proc_alive(tk) {
            return;
        }
        self.kqueues.entry(tk).or_default().push_back(KernelMsg {
            event,
            queued_at: self.clock,
        });
    }

    /// Applies a signal to a live process: state changes, handler
    /// dispatch, death.
    fn deliver_signal(&mut self, k: K, signal: Signal) {
        if !self.proc_alive(k) {
            return;
        }
        let host = k.0 as usize;
        let pid = Pid(k.1);
        match signal {
            Signal::Stop => {
                if let Some(p) = self.kernels[host].get_mut(pid) {
                    if p.state == ProcState::Running {
                        p.state = ProcState::Stopped;
                        self.emit_kernel_event(k.0, pid, KernelEvent::Stopped { pid });
                    }
                }
            }
            Signal::Cont => {
                if let Some(p) = self.kernels[host].get_mut(pid) {
                    if p.state == ProcState::Stopped {
                        p.state = ProcState::Running;
                        self.emit_kernel_event(k.0, pid, KernelEvent::Continued { pid });
                    }
                }
            }
            Signal::Kill => self.reap(k, ExitStatus::Signaled(Signal::Kill)),
            s if s.is_catchable() => {
                if let Some(mut prog) = self.progs.remove(&k) {
                    let uid = self.kernels[host].get(pid).map_or(Uid::ROOT, |p| p.uid);
                    let mut sys = McSys {
                        w: self,
                        key: k,
                        uid,
                        exited: None,
                    };
                    let action = prog.on_signal(&mut sys, s);
                    let exited = sys.exited;
                    if self.proc_alive(k) {
                        self.progs.insert(k, prog);
                    }
                    if let Some(status) = exited {
                        self.reap(k, status);
                        return;
                    }
                    self.emit_kernel_event(
                        k.0,
                        pid,
                        KernelEvent::SignalDelivered { pid, signal: s },
                    );
                    if action == SigAction::Default && s.is_fatal_by_default() {
                        self.reap(k, ExitStatus::Signaled(s));
                    }
                } else if s.is_fatal_by_default() {
                    self.reap(k, ExitStatus::Signaled(s));
                } else {
                    self.emit_kernel_event(
                        k.0,
                        pid,
                        KernelEvent::SignalDelivered { pid, signal: s },
                    );
                }
            }
            s if s.is_fatal_by_default() => self.reap(k, ExitStatus::Signaled(s)),
            _ => {}
        }
    }
}

fn norm(a: u32, b: u32) -> (u32, u32) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Short wire-frame classification for trace lines.
fn frame_kind(bytes: &Bytes) -> String {
    match Msg::from_bytes(bytes) {
        Ok(m) => {
            let d = format!("{m:?}");
            d.split([' ', '{', '('])
                .next()
                .unwrap_or("msg")
                .to_lowercase()
        }
        Err(_) => "raw".to_string(),
    }
}

// ---- the syscall view ---------------------------------------------------

/// `Sys` implementation scoped to one calling process of the mc world.
struct McSys<'w> {
    w: &'w mut McWorld,
    key: K,
    uid: Uid,
    /// Set by `exit` (and self-kill); applied by the dispatcher after
    /// the callback returns.
    exited: Option<ExitStatus>,
}

impl McSys<'_> {
    fn host(&self) -> usize {
        self.key.0 as usize
    }

    fn do_spawn(&mut self, uid: Uid, spec: SpawnSpec) -> Result<Pid, SysError> {
        if !self.w.host_up[self.host()] {
            return Err(SysError::HostDown);
        }
        let host = self.key.0;
        let h = self.host();
        let pid = self.w.kernels[h].alloc_pid();
        let mut p = Process::new(
            pid,
            Pid(self.key.1),
            uid,
            spec.command.clone(),
            self.w.clock,
        );
        p.cpu_bound = spec.cpu_bound;
        // Children inherit the parent's tracer ("the target and all its
        // future descendants").
        let inherited = self.w.kernels[h]
            .get(Pid(self.key.1))
            .and_then(|pp| pp.tracer.map(|t| (t, pp.trace_flags)));
        if let Some((tracer, flags)) = inherited {
            p.tracer = Some(tracer);
            p.trace_flags = flags;
        }
        self.w.kernels[h].insert(p);
        if let Some(program) = spec.program {
            self.w.progs.insert((host, pid.0), program);
        }
        self.w.starts.insert((host, pid.0));
        self.w.emit_kernel_event(
            host,
            pid,
            KernelEvent::Fork {
                parent: Pid(self.key.1),
                child: pid,
            },
        );
        Ok(pid)
    }
}

impl Clock for McSys<'_> {
    fn now(&self) -> Micros {
        self.w.clock
    }
}

impl TimerDriver for McSys<'_> {
    fn set_timer(&mut self, delay: SimDuration, token: u64) -> TimerHandle {
        let id = self.w.next_timer;
        self.w.next_timer += 1;
        self.w.timers.insert(
            id,
            McTimer {
                owner: self.key,
                token,
                due: self.w.clock + delay,
            },
        );
        TimerHandle(id)
    }

    fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        self.w.timers.remove(&handle.0).is_some()
    }
}

impl Transport for McSys<'_> {
    fn listen(&mut self, port: Port) -> Result<(), SysError> {
        let slot = (self.key.0, port.0);
        if let Some(&holder) = self.w.listeners.get(&slot) {
            if holder != self.key.1 && self.w.proc_alive((self.key.0, holder)) {
                return Err(SysError::PortInUse);
            }
        }
        self.w.listeners.insert(slot, self.key.1);
        Ok(())
    }

    fn connect(&mut self, host: HostId, port: Port) -> Result<ConnId, SysError> {
        if host.0 as usize >= self.w.host_names.len() {
            return Err(SysError::NoSuchHost);
        }
        let id = self.w.next_conn;
        self.w.next_conn += 1;
        let dst = host.0;
        let listener = self
            .w
            .listeners
            .get(&(dst, port.0))
            .copied()
            .filter(|&pid| self.w.proc_alive((dst, pid)));
        let reachable = self.w.host_up[dst as usize] && self.w.route_alive(self.key.0, dst);
        let mut conn = Conn {
            a: self.key,
            b: (dst, listener.unwrap_or(0)),
            open: false,
            to_a: VecDeque::new(),
            to_b: VecDeque::new(),
        };
        if !reachable {
            conn.to_a.push_back(NetItem::Failed(SysError::Unreachable));
        } else if let Some(pid) = listener {
            conn.open = true;
            conn.b = (dst, pid);
            conn.to_a.push_back(NetItem::Established);
            conn.to_b.push_back(NetItem::Accepted {
                peer: (HostId(self.key.0), Pid(self.key.1)),
                port,
            });
        } else {
            conn.to_a
                .push_back(NetItem::Failed(SysError::ConnectionRefused));
        }
        self.w.conns.insert(id, conn);
        Ok(ConnId(id))
    }

    fn send_bytes(&mut self, conn: ConnId, data: Bytes) -> Result<(), SysError> {
        let me = self.key;
        let (peer, a_is_me) = match self.w.conns.get(&conn.0) {
            Some(c) if c.a == me || c.b == me => {
                if !c.open {
                    return Err(SysError::ConnectionClosed);
                }
                (if c.a == me { c.b } else { c.a }, c.a == me)
            }
            _ => return Err(SysError::NotConnected),
        };
        let deliverable = self.w.host_up[peer.0 as usize] && self.w.route_alive(me.0, peer.0);
        let c = self.w.conns.get_mut(&conn.0).expect("checked above");
        if deliverable {
            if a_is_me {
                c.to_b.push_back(NetItem::Msg(data));
            } else {
                c.to_a.push_back(NetItem::Msg(data));
            }
            return Ok(());
        }
        // Link is cut under an established connection: the send is
        // silently swallowed (TCP would buffer it); both endpoints later
        // learn Closed. This is the window the stale-route-cache bug
        // lived in.
        c.open = false;
        c.to_a.push_back(NetItem::Closed);
        c.to_b.push_back(NetItem::Closed);
        self.w.blackhole_sends += 1;
        Ok(())
    }

    fn conn_alive(&self, conn: ConnId) -> bool {
        self.w.conns.get(&conn.0).is_some_and(|c| {
            c.open
                && self.w.proc_alive(c.a)
                && self.w.proc_alive(c.b)
                && self.w.route_alive(c.a.0, c.b.0)
        })
    }

    fn close(&mut self, conn: ConnId) -> Result<(), SysError> {
        let me = self.key;
        let Some(c) = self.w.conns.get_mut(&conn.0) else {
            return Err(SysError::NotConnected);
        };
        if c.a != me && c.b != me {
            return Err(SysError::NotConnected);
        }
        if c.open {
            c.open = false;
            if c.a == me {
                c.to_a.clear();
                c.to_b.push_back(NetItem::Closed);
            } else {
                c.to_b.clear();
                c.to_a.push_back(NetItem::Closed);
            }
        }
        Ok(())
    }
}

impl Spawner for McSys<'_> {
    fn spawn(&mut self, spec: SpawnSpec) -> Result<Pid, SysError> {
        self.do_spawn(self.uid, spec)
    }

    fn spawn_as(&mut self, uid: Uid, spec: SpawnSpec) -> Result<Pid, SysError> {
        if !self.uid.is_root() {
            return Err(SysError::PermissionDenied);
        }
        self.do_spawn(uid, spec)
    }

    fn exit(&mut self, code: i32) {
        self.exited = Some(ExitStatus::Code(code));
    }

    fn kill(&mut self, target: Pid, signal: Signal) -> Result<(), SysError> {
        let host = self.key.0;
        let target_uid = self.w.kernels[self.host()].live(target).map(|p| p.uid)?;
        if !self.uid.is_root() && self.uid != target_uid {
            return Err(SysError::PermissionDenied);
        }
        *self
            .w
            .kill_log
            .entry((host, target.0, signal.number()))
            .or_insert(0) += 1;
        if target.0 == self.key.1 {
            // Suicide by signal: defer like exit so the dispatcher
            // unwinds cleanly.
            if signal.is_fatal_by_default() || signal == Signal::Kill {
                self.exited = Some(ExitStatus::Signaled(signal));
            }
            return Ok(());
        }
        self.w.deliver_signal((host, target.0), signal);
        Ok(())
    }

    fn spawn_service(&mut self, name: &str) -> Result<(Pid, Port), SysError> {
        if !self.uid.is_root() {
            return Err(SysError::PermissionDenied);
        }
        if name != PMD_SERVICE {
            return Err(SysError::UnknownService);
        }
        let host = self.key.0;
        if let Some(&pid) = self.w.services.get(&(host, name.to_string())) {
            if self.w.proc_alive((host, pid)) {
                return Ok((Pid(pid), ppm_core::PMD_PORT));
            }
        }
        let pmd = Pmd::new(
            Arc::clone(&self.w.users),
            ppm_core::PMD_PORT,
            self.w.pmd_options,
        );
        let pid = self.do_spawn(Uid::ROOT, SpawnSpec::new(PMD_SERVICE, Box::new(pmd)))?;
        self.w.services.insert((host, name.to_string()), pid.0);
        Ok((pid, ppm_core::PMD_PORT))
    }
}

impl Sys for McSys<'_> {
    fn host(&self) -> HostId {
        HostId(self.key.0)
    }

    fn host_name(&self) -> &str {
        &self.w.host_names[self.key.0 as usize]
    }

    fn cpu_class(&self) -> CpuClass {
        CpuClass::Vax780
    }

    fn pid(&self) -> Pid {
        Pid(self.key.1)
    }

    fn uid(&self) -> Uid {
        self.uid
    }

    fn load_avg(&self) -> f64 {
        self.w.kernels[self.key.0 as usize].load_avg()
    }

    fn resolve_host(&self, name: &str) -> Result<HostId, SysError> {
        self.w
            .host_names
            .iter()
            .position(|h| h == name)
            .map(|i| HostId(i as u32))
            .ok_or(SysError::NoSuchHost)
    }

    fn known_hosts(&self) -> Vec<String> {
        self.w.host_names.clone()
    }

    fn trace_str(&mut self, _category: TraceCategory, _text: String) {}

    fn spans_enabled(&self) -> bool {
        false
    }

    fn span_str(&mut self, _name: &'static str, _corr: String, _phase: SpanPhase) {}

    fn register_metrics_str(&mut self, _label: String, _registry: SharedRegistry) {}

    fn random_unit(&mut self) -> f64 {
        // Deterministic midpoint: jittered backoffs collapse to their
        // nominal value, which keeps the schedule space canonical.
        0.5
    }

    fn adopt(&mut self, target: Pid, flags: TraceFlags) -> Result<(), SysError> {
        self.w.kernels[self.key.0 as usize].adopt(target, Pid(self.key.1), self.uid, flags)
    }

    fn register_kernel_socket(&mut self) -> Fd {
        self.w.ksock.insert(self.key);
        Fd(3)
    }

    fn proc_info(&self, pid: Pid) -> Option<ProcInfo> {
        self.w.kernels[self.key.0 as usize]
            .get(pid)
            .map(ProcInfo::from)
    }

    fn user_processes(&self, uid: Uid) -> Vec<ProcInfo> {
        self.w.kernels[self.key.0 as usize]
            .user_processes(uid)
            .into_iter()
            .map(ProcInfo::from)
            .collect()
    }

    fn rusage_of(&self, pid: Pid) -> Option<Rusage> {
        self.w.kernels[self.key.0 as usize]
            .get(pid)
            .map(|p| p.rusage)
    }

    fn set_cpu_bound(&mut self, yes: bool) {
        if let Some(p) = self.w.kernels[self.key.0 as usize].get_mut(Pid(self.key.1)) {
            p.cpu_bound = yes;
        }
    }

    fn scale_cost(&mut self, nominal: SimDuration) -> SimDuration {
        nominal
    }

    fn consume_cpu(&mut self, nominal: SimDuration) -> SimDuration {
        if let Some(p) = self.w.kernels[self.key.0 as usize].get_mut(Pid(self.key.1)) {
            p.rusage.cpu += nominal;
        }
        nominal
    }

    fn stable_put_kv(&mut self, key: String, value: Bytes) {
        self.w.stable[self.key.0 as usize].insert(key, value);
    }

    fn stable_get(&self, key: &str) -> Option<Bytes> {
        self.w.stable[self.key.0 as usize].get(key).cloned()
    }

    fn stable_del(&mut self, key: &str) {
        self.w.stable[self.key.0 as usize].remove(key);
    }

    fn open_path(&mut self, _path: String, _mode: OpenMode) -> Fd {
        let fd = Fd(self.w.next_fd);
        self.w.next_fd += 1;
        fd
    }

    fn close_fd(&mut self, _fd: Fd) -> Result<(), SysError> {
        Ok(())
    }

    fn open_fds(&self, pid: Pid) -> Result<Vec<(Fd, FdKind)>, SysError> {
        self.w.kernels[self.key.0 as usize].live(pid)?;
        Ok(Vec::new())
    }
}
