//! The four checked protocol scenarios.
//!
//! Each scenario stages a small world **deterministically** up to the
//! interesting frontier (requests in flight, a retransmit duplicated, a
//! manager killed), then hands the explorer a compact set of enabled
//! moves to interleave exhaustively. Staging uses the same move
//! machinery as exploration, so a scenario build is itself a replayable
//! schedule prefix.
//!
//! * `exactly-once` — a control operation retransmitted across its
//!   origin LPM's crash must not execute twice (the dedup-purge /
//!   incarnation-fence bug).
//! * `bcast-dedup` — a broadcast wave duplicated on the wire and
//!   re-relayed through the sibling graph runs each host's slice once.
//! * `election` — after a partition cuts the CCS away and the links
//!   heal, all live LPMs converge on one (CCS, epoch).
//! * `no-orphans` — killing an LPM that tracks a remotely-requested
//!   process leaves no orphan forest roots once its successor rebuilds.
//! * `stale-route` — a cached next-hop whose link was cut after the
//!   route was learned must never be used for a directed request (the
//!   `conn_alive`-at-send-time bug).

use ppm_core::{PmdOptions, PpmConfig, Tool, ToolStep, UserCred, UserDirectory, UserEntry};
use ppm_proto::types::Gpid;
use ppm_proto::{ControlAction, Msg, Op};
use ppm_runtime::signal::Signal;
use ppm_runtime::time::SimDuration;
use ppm_runtime::{Pid, Uid};

use crate::explore::{apply_matching, Budget, Scenario};
use crate::world::{Adversary, McWorld};

const UID: Uid = Uid(100);
const SECRET: u64 = 0x5eed;
/// Steps allowed for a staging drain; generous because drains are cheap
/// forced chains.
const DRAIN: usize = 20_000;

fn users(recovery: &[&str]) -> UserDirectory {
    let mut dir = UserDirectory::new();
    dir.insert(UserEntry {
        cred: UserCred::new(UID, SECRET),
        recovery: recovery.iter().map(|h| (*h).to_string()).collect(),
        config: PpmConfig::fast_recovery(),
    });
    dir
}

fn cred() -> UserCred {
    UserCred::new(UID, SECRET)
}

fn world(hosts: &[&str], recovery: &[&str], respawn: bool) -> McWorld {
    McWorld::new(
        hosts,
        users(recovery),
        PmdOptions {
            stable_storage: true,
            respawn_lpms: respawn,
        },
        SimDuration::from_secs(20),
    )
}

/// All scenarios by CLI/CI suite name.
pub fn by_name(name: &str) -> Option<Scenario> {
    match name {
        "exactly-once" => Some(exactly_once()),
        "bcast-dedup" => Some(bcast_dedup()),
        "election" => Some(election()),
        "no-orphans" => Some(no_orphans()),
        "stale-route" => Some(stale_route()),
        _ => None,
    }
}

/// The suite names, in documentation order.
pub const SUITES: [&str; 5] = [
    "exactly-once",
    "bcast-dedup",
    "election",
    "no-orphans",
    "stale-route",
];

/// A control operation must execute at most once even when its frame is
/// duplicated (retry) and the origin LPM crashes and is respawned while
/// the duplicate is still in flight.
///
/// Staged frontier: the job's `Stop` already executed once at `b`, the
/// wire duplicate still queues on the dead origin's connection, and the
/// respawned origin's `ForestPull` — whose handling purges the dedup
/// window — races it.
pub fn exactly_once() -> Scenario {
    let build = || {
        let mut w = world(&["a", "b"], &["b", "a"], true);
        // A surviving user process on `a` so the respawned LPM has
        // something to readopt — that is what makes it rebuild and pull.
        w.spawn_inert(0, UID, "coord");
        let job = w.spawn_inert(1, UID, "job");
        let (tool, _outcome) = Tool::new(
            cred(),
            PpmConfig::fast_recovery(),
            vec![ToolStep::new(
                "b",
                Op::Control {
                    pid: job.0,
                    action: ControlAction::Stop,
                },
            )],
        );
        w.spawn_program(0, UID, "tool", Box::new(tool));
        // Bring the stack up until the relayed control request is in
        // flight toward `b` (the tool's own request to its local LPM
        // flows freely), holding that frame on the wire.
        let relay = "msg req -> lpm-100@b";
        let reached = w.run_until(
            DRAIN,
            |w, m| w.describe(m).contains(relay),
            |w| {
                w.enabled_moves()
                    .iter()
                    .any(|m| w.describe(m).contains(relay))
            },
        );
        assert!(reached, "staging: control request never queued");
        // The retransmit: duplicate the queued request frame.
        assert!(w.stage_dup_head(Some(1), |m| matches!(m, Msg::Req { .. })));
        // First copy delivers and executes.
        assert!(apply_matching(&mut w, relay));
        let job_stopped = |w: &McWorld| {
            w.signal_count(1, Pid(w.find_proc(1, "job").unwrap_or(0)), Signal::Stop) >= 1
        };
        let reached = w.run_until(DRAIN, |w, m| w.describe(m).contains(relay), job_stopped);
        assert!(reached, "staging: first control never executed");
        // Crash the origin LPM; pmd respawns it; run the recovery
        // forward until the successor's forest pull is on the wire.
        assert!(w.stage_kill(0, "lpm-100"));
        let reached = w.run_until(
            DRAIN,
            |w, m| {
                let d = w.describe(m);
                d.contains(relay) || d.contains("msg forestpull")
            },
            |w| {
                w.enabled_moves()
                    .iter()
                    .any(|m| w.describe(m).contains("msg forestpull"))
            },
        );
        assert!(reached, "staging: respawned LPM never pulled the forest");
        // The race under test is all in flight; a short remaining window
        // keeps periodic housekeeping from inflating the suffix.
        w.set_horizon(SimDuration::from_secs(5));
        w
    };
    let stopped_twice = |w: &McWorld| {
        let job = w.find_proc(1, "job").unwrap_or(0);
        let n = w.signal_count(1, Pid(job), Signal::Stop);
        (n > 1).then(|| format!("control executed {n} times on job@b (exactly-once broken)"))
    };
    Scenario {
        name: "exactly-once",
        default_budget: Budget {
            max_depth: 30,
            max_states: 20_000,
        },
        build: Box::new(build),
        check_step: Box::new(stopped_twice),
        check_quiescent: Box::new(stopped_twice),
    }
}

/// A broadcast wave duplicated on the wire — on top of the sibling
/// graph's natural relay duplication — must run each host's local slice
/// at most once.
pub fn bcast_dedup() -> Scenario {
    let build = || {
        let mut w = world(&["a", "b", "c"], &["a", "b", "c"], true);
        // Pings to raise the full sibling triangle (a-b, a-c, b-c), so
        // the wave reaches `c` via both `a` and `b`.
        let (t1, t1_out) = Tool::new(
            cred(),
            PpmConfig::fast_recovery(),
            vec![ToolStep::new("b", Op::Ping), ToolStep::new("c", Op::Ping)],
        );
        w.spawn_program(0, UID, "tool", Box::new(t1));
        let (t2, t2_out) = Tool::new(
            cred(),
            PpmConfig::fast_recovery(),
            vec![ToolStep::new("c", Op::Ping)],
        );
        w.spawn_program(1, UID, "tool", Box::new(t2));
        let reached = w.run_until(
            DRAIN,
            |_, _| false,
            |_| t1_out.lock().unwrap().done && t2_out.lock().unwrap().done,
        );
        assert!(reached, "staging: setup pings never completed");
        w.snapshot_exec_baseline();
        // The broadcast under test.
        let (t3, _out) = Tool::new(
            cred(),
            PpmConfig::fast_recovery(),
            vec![ToolStep::new("*", Op::Ping)],
        );
        w.spawn_program(0, UID, "tool", Box::new(t3));
        let reached = w.run_until(
            DRAIN,
            |w, m| w.describe(m).contains("msg bcast"),
            |w| {
                w.enabled_moves()
                    .iter()
                    .any(|m| w.describe(m).contains("msg bcast"))
            },
        );
        assert!(reached, "staging: wave never queued");
        // Wire-duplicate the first wave frame.
        assert!(w.stage_dup_head(None, |m| matches!(m, Msg::Bcast { .. })));
        w.set_horizon(SimDuration::from_secs(5));
        w
    };
    let over_executed = |w: &McWorld| {
        let d = w.max_exec_delta();
        (d > 1).then(|| format!("some LPM ran {d} local slices for one wave (dedup broken)"))
    };
    Scenario {
        name: "bcast-dedup",
        default_budget: Budget {
            max_depth: 30,
            max_states: 60_000,
        },
        build: Box::new(build),
        check_step: Box::new(over_executed),
        check_quiescent: Box::new(over_executed),
    }
}

/// Cut the CCS host away, let the survivors elect, then heal: every
/// schedule must end with all live LPMs agreeing on one (CCS, epoch).
pub fn election() -> Scenario {
    let build = || {
        let mut w = world(&["a", "b", "c"], &["a", "b", "c"], true);
        let (t1, t1_out) = Tool::new(
            cred(),
            PpmConfig::fast_recovery(),
            vec![ToolStep::new("b", Op::Ping), ToolStep::new("c", Op::Ping)],
        );
        w.spawn_program(0, UID, "tool", Box::new(t1));
        let (t2, t2_out) = Tool::new(
            cred(),
            PpmConfig::fast_recovery(),
            vec![ToolStep::new("c", Op::Ping)],
        );
        w.spawn_program(1, UID, "tool", Box::new(t2));
        let reached = w.run_until(
            DRAIN,
            |_, _| false,
            |_| t1_out.lock().unwrap().done && t2_out.lock().unwrap().done,
        );
        assert!(reached, "staging: setup pings never completed");
        // Partition the CCS (`a`, highest priority) away and let the
        // survivors elect deterministically.
        w.stage_cut(0, 1);
        w.stage_cut(0, 2);
        let elected = |w: &McWorld| {
            let lpms = w.lpms();
            let survivors: Vec<_> = lpms.iter().filter(|(k, _)| k.0 != 0).collect();
            survivors.len() == 2 && survivors.iter().all(|(_, l)| l.ccs_view().0 == "b")
        };
        let reached = w.run_until(DRAIN, |_, _| false, elected);
        assert!(reached, "staging: survivors never elected b");
        // The explorer chooses when each link heals. Convergence is
        // only demanded of schedules that leave at least two probe
        // cycles after the last heal — later heals end the schedule
        // with the repair legitimately still in progress.
        w.add_adversary(Adversary::HealLink { a: 0, b: 1 }, 1);
        w.add_adversary(Adversary::HealLink { a: 0, b: 2 }, 1);
        w.set_horizon(SimDuration::from_secs(6));
        w.set_convergence_margin(SimDuration::from_secs(3));
        w
    };
    let diverged = |w: &McWorld| {
        if !w.converge_expected() {
            return None;
        }
        let views: Vec<(String, u64)> = w
            .lpms()
            .iter()
            .map(|(_, l)| {
                let (ccs, epoch) = l.ccs_view();
                (ccs.to_string(), epoch)
            })
            .collect();
        if views.len() < 2 {
            return Some(format!("only {} LPM(s) alive at quiescence", views.len()));
        }
        views
            .windows(2)
            .any(|p| p[0] != p[1])
            .then(|| format!("CCS views diverged at quiescence: {views:?}"))
    };
    Scenario {
        name: "election",
        default_budget: Budget {
            max_depth: 45,
            max_states: 200_000,
        },
        build: Box::new(build),
        check_step: Box::new(|_| None),
        check_quiescent: Box::new(diverged),
    }
}

/// Kill an LPM that tracks a process spawned on another user's behalf
/// from a remote coordinator: after its successor rebuilds, no forest
/// entry may remain an orphan root and rebuilding must have finished.
pub fn no_orphans() -> Scenario {
    let build = || {
        let mut w = world(&["a", "b"], &["a", "b"], true);
        let coord = w.spawn_inert(0, UID, "coord");
        let (tool, out) = Tool::new(
            cred(),
            PpmConfig::fast_recovery(),
            vec![ToolStep::new(
                "b",
                Op::Spawn {
                    command: "worker".to_string(),
                    logical_parent: Some(Gpid::new("a", coord.0)),
                    lifetime_us: None,
                    work_us: 0,
                    cpu_bound: false,
                },
            )],
        );
        w.spawn_program(0, UID, "tool", Box::new(tool));
        let reached = w.run_until(DRAIN, |_, _| false, |_| out.lock().unwrap().done);
        assert!(reached, "staging: remote spawn never completed");
        // The explorer chooses when the tracking LPM dies relative to
        // everything else in flight.
        w.add_adversary(
            Adversary::KillProc {
                host: 1,
                command: "lpm-100".to_string(),
            },
            1,
        );
        w.set_horizon(SimDuration::from_secs(10));
        w.set_convergence_margin(SimDuration::from_secs(5));
        w
    };
    let orphaned = |w: &McWorld| {
        if !w.converge_expected() {
            return None;
        }
        for (k, l) in w.lpms() {
            let roots = l.orphan_root_count();
            if roots > 0 {
                return Some(format!(
                    "LPM on {} holds {roots} orphan forest root(s) at quiescence",
                    w.host_name(k.0)
                ));
            }
            if l.is_rebuilding() {
                return Some(format!(
                    "LPM on {} still rebuilding at quiescence",
                    w.host_name(k.0)
                ));
            }
        }
        // The worker must still be alive and adopted by the successor.
        match w.find_proc(1, "worker") {
            None => Some("worker vanished".to_string()),
            Some(_) => None,
        }
    };
    Scenario {
        name: "no-orphans",
        default_budget: Budget {
            max_depth: 30,
            max_states: 60_000,
        },
        build: Box::new(build),
        check_step: Box::new(|_| None),
        check_quiescent: Box::new(orphaned),
    }
}

/// A route learned through an intermediary whose link is later cut must
/// not be used: `evict_via` only fires when the closed notification
/// arrives, which lags the cut, so the send path has to validate the
/// cached hop against link liveness (`Sys::conn_alive`) itself.
///
/// Staged frontier: `a` knows `c` only via `b` (a broadcast over the
/// chain a–b–c taught the route), the a–b link is cut with the closed
/// notice still undelivered, and a directed control op for `c` starts at
/// `a`. Using the cached hop blackholes a retry cycle; the fixed path
/// evicts and dials `c` directly.
pub fn stale_route() -> Scenario {
    let build = || {
        let mut w = world(&["a", "b", "c"], &["a", "b", "c"], true);
        let job = w.spawn_inert(2, UID, "job");
        // Sibling edges a-b and b-c only: the broadcast wave relays
        // through b, and its gathered parts teach `a` that `c` is
        // reachable via `b`.
        let (t1, t1_out) = Tool::new(
            cred(),
            PpmConfig::fast_recovery(),
            vec![ToolStep::new("b", Op::Ping)],
        );
        w.spawn_program(0, UID, "tool", Box::new(t1));
        let (t2, t2_out) = Tool::new(
            cred(),
            PpmConfig::fast_recovery(),
            vec![ToolStep::new("c", Op::Ping)],
        );
        w.spawn_program(1, UID, "tool", Box::new(t2));
        let reached = w.run_until(
            DRAIN,
            |_, _| false,
            |_| t1_out.lock().unwrap().done && t2_out.lock().unwrap().done,
        );
        assert!(reached, "staging: chain setup pings never completed");
        let (t3, t3_out) = Tool::new(
            cred(),
            PpmConfig::fast_recovery(),
            vec![ToolStep::new("*", Op::Ping)],
        );
        w.spawn_program(0, UID, "tool", Box::new(t3));
        let reached = w.run_until(DRAIN, |_, _| false, |_| t3_out.lock().unwrap().done);
        assert!(reached, "staging: route-teaching broadcast never completed");
        // Cut the learned hop. The sibling conn a-b stays up from the
        // LPMs' point of view until a send fails or the closed notice
        // lands — exactly the stale window under test.
        w.stage_cut(0, 1);
        let (t4, _out) = Tool::new(
            cred(),
            PpmConfig::fast_recovery(),
            vec![ToolStep::new(
                "c",
                Op::Control {
                    pid: job.0,
                    action: ControlAction::Stop,
                },
            )],
        );
        w.spawn_program(0, UID, "tool", Box::new(t4));
        w.set_horizon(SimDuration::from_secs(8));
        w.set_convergence_margin(SimDuration::from_secs(4));
        w
    };
    // Any route-cache hit at `a` after staging means the dead cached hop
    // was chosen; the double-Stop check rides along for free.
    let used_stale = |w: &McWorld| {
        for (k, l) in w.lpms() {
            if k.0 == 0 && l.stats().route_cache_hits > 0 {
                return Some(
                    "directed request forwarded into the cut a-b hop (stale route used)"
                        .to_string(),
                );
            }
        }
        let job = w.find_proc(2, "job").unwrap_or(0);
        let n = w.signal_count(2, Pid(job), Signal::Stop);
        (n > 1).then(|| format!("control executed {n} times on job@c"))
    };
    let undelivered = move |w: &McWorld| {
        if let Some(why) = used_stale(w) {
            return Some(why);
        }
        if !w.converge_expected() {
            return None;
        }
        let job = w.find_proc(2, "job").unwrap_or(0);
        if w.signal_count(2, Pid(job), Signal::Stop) == 0 {
            return Some("control op never reached job@c despite a live a-c path".to_string());
        }
        None
    };
    Scenario {
        name: "stale-route",
        default_budget: Budget {
            max_depth: 20,
            max_states: 20_000,
        },
        build: Box::new(build),
        check_step: Box::new(used_stale),
        check_quiescent: Box::new(undelivered),
    }
}
