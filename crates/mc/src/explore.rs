//! The bounded explorer: replay-based DFS over the world's enabled
//! moves, with digest pruning and counterexample minimization.
//!
//! A state is identified by the **pick vector** that reaches it — the
//! index chosen into [`crate::world::McWorld::enabled_moves`] at each
//! step from the scenario's staged initial world. Replaying the vector
//! reconstructs the state exactly (everything in the world is
//! deterministic), so the explorer needs no snapshotting and a found
//! violation is a replayable schedule by construction.
//!
//! Depth is counted in **branch points** — steps with two or more
//! enabled moves. Forced chains (RPC pipelines draining one reply at a
//! time) are free, so a depth budget of 10 reaches deep into the
//! protocols while the fan-out stays bounded. States whose digest was
//! already visited are pruned; the digest folds in every observable the
//! predicates read (see `McWorld::digest`), so pruning cannot hide a
//! violation.

use std::collections::HashSet;

use crate::world::McWorld;

/// Exploration limits.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Maximum branch points along any schedule.
    pub max_depth: usize,
    /// Maximum states visited in total.
    pub max_states: u64,
}

impl Budget {
    /// A budget suitable for CI smoke runs.
    pub fn smoke() -> Self {
        Budget {
            max_depth: 10,
            max_states: 20_000,
        }
    }
}

/// A predicate over the world: `Some(description)` on violation.
pub type Predicate = Box<dyn Fn(&McWorld) -> Option<String>>;

/// What one scenario checks: a staged initial world plus its safety and
/// quiescence predicates. Predicates return `Some(description)` on
/// violation.
pub struct Scenario {
    /// Suite name (stable; the CLI and CI reference it).
    pub name: &'static str,
    /// The budget at which this suite is meaningfully checked — deep
    /// enough to reach non-vacuous quiescent states where the
    /// convergence predicate applies. The CLI uses it unless overridden.
    pub default_budget: Budget,
    /// Builds and stages the initial world deterministically.
    pub build: Box<dyn Fn() -> McWorld>,
    /// Safety: checked after every move of every schedule.
    pub check_step: Predicate,
    /// Convergence: checked in states with no enabled moves (all
    /// deliveries drained, all timers past the horizon, all fault
    /// budgets spent or unusable).
    pub check_quiescent: Predicate,
}

/// Aggregate exploration results.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    /// States visited (schedules replayed to their last move).
    pub states: u64,
    /// States with two or more enabled moves.
    pub branch_points: u64,
    /// States pruned because their digest was already seen.
    pub dedup_hits: u64,
    /// Quiescent states reached (each ran the convergence predicate).
    pub quiescent: u64,
    /// True if a budget stopped the search before exhaustion.
    pub truncated: bool,
    /// Order-sensitive fold of every visited state digest: two runs of
    /// the same scenario and budget must agree (determinism check).
    pub digest: u64,
}

/// A found counterexample: the minimized schedule and its trace.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which predicate failed, with detail.
    pub predicate: String,
    /// Minimized pick vector (replay with `pick % enabled.len()`).
    pub picks: Vec<usize>,
    /// Human-readable move list of the minimized schedule.
    pub trace: Vec<String>,
}

/// Exhaustively explores a scenario within the budget. Returns the
/// stats and the first violation found (minimized), if any.
pub fn explore(s: &Scenario, budget: Budget) -> (Stats, Option<Violation>) {
    let mut stats = Stats::default();
    let mut seen: HashSet<u64> = HashSet::new();
    // Stack entries: (pick vector, branch depth consumed).
    let mut stack: Vec<(Vec<usize>, usize)> = vec![(Vec::new(), 0)];
    while let Some((picks, depth)) = stack.pop() {
        if stats.states >= budget.max_states {
            stats.truncated = true;
            break;
        }
        let w = replay(s, &picks);
        stats.states += 1;
        if let Some(why) = (s.check_step)(&w) {
            return (stats, Some(minimize(s, &picks, &why)));
        }
        let d = w.digest();
        stats.digest = stats
            .digest
            .rotate_left(7)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ d;
        if !seen.insert(d) {
            stats.dedup_hits += 1;
            continue;
        }
        let moves = w.enabled_moves();
        if moves.is_empty() {
            stats.quiescent += 1;
            if let Some(why) = (s.check_quiescent)(&w) {
                return (stats, Some(minimize(s, &picks, &why)));
            }
            continue;
        }
        let next_depth = depth + usize::from(moves.len() > 1);
        if moves.len() > 1 {
            stats.branch_points += 1;
            if next_depth > budget.max_depth {
                stats.truncated = true;
                continue;
            }
        }
        for i in (0..moves.len()).rev() {
            let mut np = picks.clone();
            np.push(i);
            stack.push((np, next_depth));
        }
    }
    (stats, None)
}

/// Replays a pick vector from the staged initial world. Out-of-range
/// picks wrap (`pick % enabled.len()`), so vectors stay valid while the
/// minimizer deletes entries.
pub fn replay(s: &Scenario, picks: &[usize]) -> McWorld {
    let mut w = (s.build)();
    for &p in picks {
        let moves = w.enabled_moves();
        if moves.is_empty() {
            break;
        }
        w.apply(&moves[p % moves.len()]);
    }
    w
}

/// Replays and renders each move's description (the repro trace).
pub fn replay_trace(s: &Scenario, picks: &[usize]) -> Vec<String> {
    let mut w = (s.build)();
    let mut out = Vec::new();
    for &p in picks {
        let moves = w.enabled_moves();
        if moves.is_empty() {
            break;
        }
        let mv = moves[p % moves.len()].clone();
        out.push(w.describe(&mv));
        w.apply(&mv);
    }
    out
}

/// True if the schedule (with wrapping) still violates either predicate.
fn violates(s: &Scenario, picks: &[usize]) -> bool {
    let mut w = (s.build)();
    for &p in picks {
        let moves = w.enabled_moves();
        if moves.is_empty() {
            break;
        }
        w.apply(&moves[p % moves.len()]);
        if (s.check_step)(&w).is_some() {
            return true;
        }
    }
    w.enabled_moves().is_empty() && (s.check_quiescent)(&w).is_some()
}

/// Greedy delta-debugging: repeatedly drops single picks while the
/// violation persists. Wrapping keeps shortened vectors replayable.
fn minimize(s: &Scenario, picks: &[usize], why: &str) -> Violation {
    let mut cur = picks.to_vec();
    loop {
        let mut improved = false;
        let mut i = cur.len();
        while i > 0 {
            i -= 1;
            let mut cand = cur.clone();
            cand.remove(i);
            if violates(s, &cand) {
                cur = cand;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    Violation {
        predicate: why.to_string(),
        trace: replay_trace(s, &cur),
        picks: cur,
    }
}

/// Applies the first enabled move whose description contains `pattern`.
/// Regression tests use this to drive a known bad schedule without
/// depending on brittle pick indices. Returns `true` if a move matched.
pub fn apply_matching(w: &mut McWorld, pattern: &str) -> bool {
    let mv = w
        .enabled_moves()
        .into_iter()
        .find(|m| w.describe(m).contains(pattern));
    match mv {
        Some(m) => {
            w.apply(&m);
            true
        }
        None => false,
    }
}

/// Convenience for tests: asserts a whole exploration stays clean and
/// returns the stats.
pub fn assert_no_violation(s: &Scenario, budget: Budget) -> Stats {
    let (stats, v) = explore(s, budget);
    if let Some(v) = v {
        panic!(
            "unexpected violation in {}: {}\nschedule:\n  {}",
            s.name,
            v.predicate,
            v.trace.join("\n  ")
        );
    }
    stats
}
