//! Bounded model checking for the PPM protocols.
//!
//! The paper's protocols — request dedup under retry, broadcast waves
//! over the sibling graph, CCS election, forest rebuilding after an LPM
//! crash — are exactly the kind of code whose bugs live in message
//! interleavings no single simulation seed samples. This crate drives
//! the production protocol stack (`ppm-core`, unmodified, through the
//! same `Sys` seam the simulation and real backends implement) through
//! **every** schedule of a small staged world, within explicit depth
//! and state budgets.
//!
//! * [`world`] — the mc backend: per-host kernels, per-direction
//!   connection FIFOs, an explorable timer set, budgeted fault moves.
//! * [`explore`] — replay-based DFS with digest pruning and greedy
//!   counterexample minimization.
//! * [`scenarios`] — the four checked properties, staged
//!   deterministically to their interesting frontiers.

pub mod explore;
pub mod scenarios;
pub mod world;

pub use explore::{
    apply_matching, assert_no_violation, explore, replay, replay_trace, Budget, Scenario, Stats,
    Violation,
};
pub use world::{Adversary, McWorld, Move};
